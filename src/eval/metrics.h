// Evaluation metrics used across all five AliCoCo modules.
//
// Ranking metrics (MAP / MRR / P@1 / P@K) follow the conventions of the
// hypernym-discovery evaluation in Section 7.3; classification metrics
// (AUC / precision / recall / F1) follow Sections 7.4-7.6; span-level F1
// with IOB decoding follows the NER evaluations of Sections 7.2 and 7.5.

#ifndef ALICOCO_EVAL_METRICS_H_
#define ALICOCO_EVAL_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace alicoco::eval {

/// One ranked query: candidate scores plus binary relevance labels.
struct RankedQuery {
  std::vector<double> scores;  ///< model score per candidate
  std::vector<int> labels;     ///< 1 = relevant, 0 = not
};

/// Average precision of one query (0 if it has no relevant candidate).
double AveragePrecision(const RankedQuery& q);

/// Reciprocal rank of the first relevant candidate (0 if none).
double ReciprocalRank(const RankedQuery& q);

/// Fraction of the top-k candidates that are relevant.
double PrecisionAtK(const RankedQuery& q, size_t k);

/// Means over a query set.
double MeanAveragePrecision(const std::vector<RankedQuery>& qs);
double MeanReciprocalRank(const std::vector<RankedQuery>& qs);
double MeanPrecisionAtK(const std::vector<RankedQuery>& qs, size_t k);

/// ROC AUC via rank statistic; ties share rank. Returns 0.5 when one class
/// is absent.
double Auc(const std::vector<double>& scores, const std::vector<int>& labels);

/// Point metrics at a decision threshold.
struct BinaryMetrics {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  double accuracy = 0;
  size_t tp = 0, fp = 0, tn = 0, fn = 0;
};

BinaryMetrics ComputeBinaryMetrics(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   double threshold = 0.5);

/// A labeled span decoded from an IOB sequence: [begin, end) with a type.
struct Span {
  size_t begin = 0;
  size_t end = 0;
  std::string type;
  bool operator==(const Span& o) const {
    return begin == o.begin && end == o.end && type == o.type;
  }
};

/// Decodes IOB tags ("B-Category", "I-Category", "O") into typed spans.
/// A stray "I-x" after "O" or a different type starts a new span (conll
/// convention).
std::vector<Span> DecodeIob(const std::vector<std::string>& tags);

/// Micro-averaged span precision/recall/F1 over a corpus of sentences.
BinaryMetrics SpanF1(const std::vector<std::vector<std::string>>& gold,
                     const std::vector<std::vector<std::string>>& pred);

/// A bootstrap confidence interval over per-query metric values.
struct ConfidenceInterval {
  double mean = 0;
  double lo = 0;   ///< lower percentile bound
  double hi = 0;   ///< upper percentile bound
};

/// Percentile-bootstrap CI of the mean: resamples `values` with replacement
/// `iterations` times. `confidence` in (0, 1), e.g. 0.95.
ConfidenceInterval BootstrapCi(const std::vector<double>& values,
                               int iterations, double confidence,
                               uint64_t seed);

/// Mean of a vector (0 for empty).
double Mean(const std::vector<double>& v);

/// Sample standard deviation (0 for n < 2).
double StdDev(const std::vector<double>& v);

}  // namespace alicoco::eval

#endif  // ALICOCO_EVAL_METRICS_H_
