#include "mining/distant_supervision.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace alicoco::mining {

DistantSupervisor::DistantSupervisor(
    const std::vector<std::pair<std::string, std::string>>& dictionary,
    const std::vector<std::string>& stopwords)
    : stopwords_(stopwords.begin(), stopwords.end()) {
  for (const auto& [surface, label] : dictionary) AddEntry(surface, label);
}

void DistantSupervisor::AddEntry(const std::string& surface,
                                 const std::string& label) {
  segmenter_.AddPhrase(text::Tokenize(surface), label);
  entry_keys_.insert(surface + "\t" + label);
}

bool DistantSupervisor::Knows(const std::string& surface,
                              const std::string& label) const {
  return entry_keys_.count(surface + "\t" + label) > 0;
}

std::vector<LabeledSentence> DistantSupervisor::Label(
    const std::vector<std::vector<std::string>>& sentences,
    Stats* stats) const {
  Stats local;
  std::vector<LabeledSentence> out;
  for (const auto& tokens : sentences) {
    ++local.total;
    if (tokens.empty()) {
      ++local.unmatched;
      continue;
    }
    text::Segmentation seg = segmenter_.Match(tokens);
    if (seg.covered_tokens == 0) {
      ++local.unmatched;
      continue;
    }
    if (seg.ambiguous) {
      ++local.ambiguous;
      continue;
    }
    // Perfect-match filter: every uncovered token must be a stopword.
    if (!stopwords_.empty()) {
      bool imperfect = false;
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (seg.iob[i] == "O" && !stopwords_.count(tokens[i])) {
          imperfect = true;
          break;
        }
      }
      if (imperfect) {
        ++local.imperfect;
        continue;
      }
    }
    ++local.kept;
    out.push_back(LabeledSentence{tokens, std::move(seg.iob)});
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace alicoco::mining
