#include "mining/concept_miner.h"

#include <map>

#include "common/logging.h"
#include "common/string_util.h"
#include "eval/metrics.h"

namespace alicoco::mining {

ConceptMiner::ConceptMiner(DistantSupervisor* supervisor,
                           const SequenceLabeler* labeler,
                           AnnotationOracle oracle)
    : supervisor_(supervisor), labeler_(labeler), oracle_(std::move(oracle)) {
  ALICOCO_CHECK(supervisor_ != nullptr && labeler_ != nullptr);
}

MiningEpochStats ConceptMiner::RunEpoch(
    const std::vector<std::vector<std::string>>& sentences,
    size_t min_support) {
  MiningEpochStats stats;
  stats.sentences = sentences.size();

  // Collect predicted spans with support counts.
  std::map<std::pair<std::string, std::string>, size_t> counts;
  for (const auto& tokens : sentences) {
    if (tokens.empty()) continue;
    auto tags = labeler_->Predict(tokens);
    ALICOCO_DCHECK_EQ(tags.size(), tokens.size());
    for (const auto& span : eval::DecodeIob(tags)) {
      ALICOCO_DCHECK_LT(span.begin, span.end);
      ALICOCO_DCHECK_LE(span.end, tokens.size());
      std::vector<std::string> piece(tokens.begin() + span.begin,
                                     tokens.begin() + span.end);
      std::string surface = JoinStrings(piece, " ");
      ++counts[{surface, span.type}];
    }
  }

  for (const auto& [key, support] : counts) {
    const auto& [surface, domain] = key;
    if (support < min_support) continue;
    if (supervisor_->Knows(surface, domain)) continue;
    ++stats.candidates;
    if (oracle_(surface, domain)) {
      supervisor_->AddEntry(surface, domain);
      accepted_.push_back(MinedCandidate{surface, domain, support});
      ++stats.accepted;
    }
  }
  stats.precision = stats.candidates > 0
                        ? static_cast<double>(stats.accepted) /
                              static_cast<double>(stats.candidates)
                        : 0.0;
  return stats;
}

}  // namespace alicoco::mining
