// Distant supervision for primitive-concept mining (Section 7.2).
//
// A dictionary of known (surface, domain) pairs is max-matched against raw
// corpus sentences; sentences whose matching is ambiguous (several optimal
// labelings, or a matched phrase carrying several labels) are dropped, and
// the rest become IOB training data for the sequence labeler — exactly the
// paper's bootstrap.

#ifndef ALICOCO_MINING_DISTANT_SUPERVISION_H_
#define ALICOCO_MINING_DISTANT_SUPERVISION_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "text/segmenter.h"

namespace alicoco::mining {

/// One auto-labeled training sentence.
struct LabeledSentence {
  std::vector<std::string> tokens;
  std::vector<std::string> iob;
};

/// Labels sentences with a concept dictionary via max-matching.
class DistantSupervisor {
 public:
  /// `dictionary` holds (surface, domain-label) pairs; surfaces may be
  /// multi-token (space-joined). `stopwords` are carrier tokens that are
  /// inherently O-taggable; any OTHER uncovered token makes a sentence
  /// imperfect and drops it (the paper keeps only sentences where "all
  /// words can be tagged by only one unique label").
  DistantSupervisor(
      const std::vector<std::pair<std::string, std::string>>& dictionary,
      const std::vector<std::string>& stopwords = {});

  /// Adds one more dictionary entry (mining loop grows the dictionary).
  void AddEntry(const std::string& surface, const std::string& label);

  struct Stats {
    size_t total = 0;      ///< sentences seen
    size_t ambiguous = 0;  ///< dropped: ambiguous matching
    size_t unmatched = 0;  ///< dropped: no dictionary hit at all
    size_t imperfect = 0;  ///< dropped: uncovered non-stopword token
    size_t kept = 0;       ///< labeled sentences produced
  };

  /// Labels a corpus; drops ambiguous and hit-less sentences.
  std::vector<LabeledSentence> Label(
      const std::vector<std::vector<std::string>>& sentences,
      Stats* stats = nullptr) const;

  /// True if (surface, label) is already in the dictionary.
  bool Knows(const std::string& surface, const std::string& label) const;

  const text::MaxMatchSegmenter& segmenter() const { return segmenter_; }
  size_t dictionary_size() const { return segmenter_.num_entries(); }

 private:
  text::MaxMatchSegmenter segmenter_;
  std::unordered_set<std::string> entry_keys_;  // "surface\tlabel"
  std::unordered_set<std::string> stopwords_;
};

}  // namespace alicoco::mining

#endif  // ALICOCO_MINING_DISTANT_SUPERVISION_H_
