// The continuous mining loop of Section 7.2.
//
// Each epoch: run the trained sequence labeler over raw corpus text, collect
// predicted spans absent from the current dictionary, send a batch to the
// (simulated) human annotators, and add the accepted ones to the dictionary
// — the paper's "~64K candidates, ~10K accepted per epoch" machinery.

#ifndef ALICOCO_MINING_CONCEPT_MINER_H_
#define ALICOCO_MINING_CONCEPT_MINER_H_

#include <functional>
#include <string>
#include <vector>

#include "mining/distant_supervision.h"
#include "mining/sequence_labeler.h"

namespace alicoco::mining {

/// Simulated crowdsourcing oracle: decides if (surface, domain) is a real
/// concept. Backed by the world's gold vocabulary in tests and benches.
using AnnotationOracle =
    std::function<bool(const std::string& surface, const std::string& domain)>;

/// A mined candidate concept.
struct MinedCandidate {
  std::string surface;
  std::string domain;
  size_t support = 0;  ///< occurrences across the epoch's corpus
};

/// Per-epoch accounting (the paper's Section 7.2 numbers).
struct MiningEpochStats {
  size_t sentences = 0;
  size_t candidates = 0;      ///< distinct new (surface, domain) proposed
  size_t accepted = 0;        ///< passed the oracle, added to dictionary
  double precision = 0;       ///< accepted / candidates
};

/// Discovery loop driver. Owns neither the labeler nor the supervisor.
class ConceptMiner {
 public:
  /// `supervisor` provides (and grows) the dictionary; `labeler` must be
  /// trained; `oracle` simulates manual checking.
  ConceptMiner(DistantSupervisor* supervisor, const SequenceLabeler* labeler,
               AnnotationOracle oracle);

  /// Runs one epoch over `sentences`: predicts spans, filters known ones,
  /// oracle-checks the rest, grows the dictionary with accepted concepts.
  /// `min_support` drops hapax candidates.
  MiningEpochStats RunEpoch(
      const std::vector<std::vector<std::string>>& sentences,
      size_t min_support = 2);

  /// All concepts accepted so far, in acceptance order.
  const std::vector<MinedCandidate>& accepted() const { return accepted_; }

 private:
  DistantSupervisor* supervisor_;
  const SequenceLabeler* labeler_;
  AnnotationOracle oracle_;
  std::vector<MinedCandidate> accepted_;
};

}  // namespace alicoco::mining

#endif  // ALICOCO_MINING_CONCEPT_MINER_H_
