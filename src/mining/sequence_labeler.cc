#include "mining/sequence_labeler.h"

#include <algorithm>
#include <fstream>

#include "common/logging.h"
#include "nn/parallel_train.h"
#include "nn/serialize.h"

namespace alicoco::mining {

SequenceLabeler::SequenceLabeler(const SequenceLabelerConfig& config)
    : config_(config), init_rng_(config.seed) {}

int SequenceLabeler::LabelId(const std::string& label) const {
  auto it = label_ids_.find(label);
  return it == label_ids_.end() ? 0 : it->second;  // unknown -> O
}

void SequenceLabeler::Train(const std::vector<LabeledSentence>& data) {
  ALICOCO_CHECK(!trained_) << "Train may be called once";
  ALICOCO_CHECK(!data.empty());

  // Build vocabulary and label inventory.
  label_names_ = {"O"};
  label_ids_["O"] = 0;
  for (const auto& s : data) {
    ALICOCO_CHECK_EQ(s.tokens.size(), s.iob.size())
        << "every token needs exactly one IOB tag";
    for (const auto& t : s.tokens) vocab_.Add(t);
    for (const auto& l : s.iob) {
      if (!label_ids_.count(l)) {
        label_ids_[l] = static_cast<int>(label_names_.size());
        label_names_.push_back(l);
      }
    }
  }

  BuildModel();

  nn::Adam adam(config_.lr);
  Rng shuffle_rng(config_.seed ^ 0xFEED);
  nn::ParallelTrainer trainer(config_.pool);
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const size_t batch = static_cast<size_t>(std::max(1, config_.batch_size));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    shuffle_rng.Shuffle(&order);
    store_.ZeroGrad();
    for (size_t start = 0; start < order.size(); start += batch) {
      const size_t count = std::min(batch, order.size() - start);
      trainer.AccumulateBatch(count, [&](nn::Graph* g, size_t bi) -> float {
        const size_t idx = order[start + bi];
        const LabeledSentence& s = data[idx];
        if (s.tokens.empty()) return 0.0f;
        // Per-example stream: masking/dropout draws are identical no matter
        // how the batch is sharded across workers.
        Rng ex_rng(nn::ExampleSeed(config_.seed ^ 0xFEED,
                                   static_cast<uint64_t>(epoch), idx));
        std::vector<int> ids = vocab_.Encode(s.tokens);
        for (int& id : ids) {
          if (ex_rng.Bernoulli(config_.word_unk_prob)) {
            id = text::Vocabulary::kUnkId;
          }
        }
        std::vector<int> gold;
        gold.reserve(s.iob.size());
        for (const auto& l : s.iob) gold.push_back(LabelId(l));
        nn::Graph::Var emissions = Emissions(g, ids, /*train=*/true, &ex_rng);
        nn::Graph::Var loss = crf_->NegLogLikelihood(g, emissions, gold);
        g->Backward(loss);
        return g->Value(loss).At(0, 0);
      });
      adam.Step(&store_);
      store_.ZeroGrad();
    }
  }
  trained_ = true;
}

void SequenceLabeler::BuildModel() {
  int num_labels = static_cast<int>(label_names_.size());
  embedding_ = std::make_unique<nn::Embedding>(
      &store_, "emb", vocab_.size(), config_.word_dim, &init_rng_);
  bilstm_ = std::make_unique<nn::BiLstm>(&store_, "bilstm", config_.word_dim,
                                         config_.hidden_dim, &init_rng_);
  proj_ = std::make_unique<nn::Linear>(&store_, "proj",
                                       2 * config_.hidden_dim, num_labels,
                                       &init_rng_);
  crf_ = std::make_unique<nn::LinearChainCrf>(&store_, "crf", num_labels,
                                              &init_rng_);
}

Status SequenceLabeler::Save(const std::string& path) const {
  if (!trained_) return Status::FailedPrecondition("Save before Train");
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "ALICOCO_LABELER v1\n";
  out << config_.word_dim << ' ' << config_.hidden_dim << "\n";
  out << vocab_.size() << "\n";
  // Ids 0/1 are the implicit specials.
  for (int id = 2; id < vocab_.size(); ++id) out << vocab_.Token(id) << "\n";
  out << label_names_.size() << "\n";
  for (const auto& label : label_names_) out << label << "\n";
  if (!out) return Status::IOError("write failed: " + path);
  return nn::SaveParameters(store_, path + ".weights");
}

Result<SequenceLabeler> SequenceLabeler::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || line != "ALICOCO_LABELER v1") {
    return Status::Corruption("bad labeler header in " + path);
  }
  SequenceLabelerConfig config;
  size_t vocab_size = 0, num_labels = 0;
  if (!(in >> config.word_dim >> config.hidden_dim >> vocab_size)) {
    return Status::Corruption("truncated labeler header");
  }
  if (config.word_dim <= 0 || config.hidden_dim <= 0) {
    return Status::Corruption("labeler header has non-positive dims in " +
                              path);
  }
  if (vocab_size < 2) {
    return Status::Corruption("labeler vocab smaller than the specials in " +
                              path);
  }
  std::getline(in, line);  // consume rest of line
  SequenceLabeler labeler(config);
  for (size_t i = 2; i < vocab_size; ++i) {
    if (!std::getline(in, line) || line.empty()) {
      return Status::Corruption("truncated vocabulary");
    }
    labeler.vocab_.Add(line);
  }
  if (!(in >> num_labels)) return Status::Corruption("missing label count");
  if (num_labels == 0) {
    return Status::Corruption("labeler has an empty label inventory in " +
                              path);
  }
  std::getline(in, line);
  for (size_t i = 0; i < num_labels; ++i) {
    if (!std::getline(in, line) || line.empty()) {
      return Status::Corruption("truncated labels");
    }
    labeler.label_ids_[line] = static_cast<int>(labeler.label_names_.size());
    labeler.label_names_.push_back(line);
  }
  labeler.BuildModel();
  ALICOCO_RETURN_NOT_OK(
      nn::LoadParameters(&labeler.store_, path + ".weights"));
  labeler.trained_ = true;
  return labeler;
}

nn::Graph::Var SequenceLabeler::Emissions(nn::Graph* g,
                                          const std::vector<int>& ids,
                                          bool train, Rng* rng) const {
  nn::Graph::Var x = embedding_->Lookup(g, ids);
  x = g->Dropout(x, config_.dropout, train, rng);
  nn::Graph::Var h = bilstm_->Run(g, x);
  return proj_->Apply(g, h);
}

std::vector<std::string> SequenceLabeler::Predict(
    const std::vector<std::string>& tokens) const {
  ALICOCO_CHECK(trained_) << "Predict before Train";
  if (tokens.empty()) return {};
  std::vector<int> ids = vocab_.Encode(tokens);
  nn::Graph g;
  nn::Graph::Var emissions =
      Emissions(&g, ids, /*train=*/false, nullptr);
  std::vector<int> path = crf_->Viterbi(g.Value(emissions));
  ALICOCO_DCHECK_EQ(path.size(), tokens.size());
  std::vector<std::string> out;
  out.reserve(path.size());
  for (int id : path) {
    ALICOCO_CHECK_GE(id, 0);
    ALICOCO_CHECK_LT(static_cast<size_t>(id), label_names_.size());
    out.push_back(label_names_[static_cast<size_t>(id)]);
  }
  return out;
}

eval::BinaryMetrics SequenceLabeler::Evaluate(
    const std::vector<LabeledSentence>& gold) const {
  std::vector<std::vector<std::string>> gold_tags, pred_tags;
  gold_tags.reserve(gold.size());
  pred_tags.reserve(gold.size());
  for (const auto& s : gold) {
    gold_tags.push_back(s.iob);
    pred_tags.push_back(Predict(s.tokens));
  }
  return eval::SpanF1(gold_tags, pred_tags);
}

}  // namespace alicoco::mining
