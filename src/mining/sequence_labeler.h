// BiLSTM-CRF sequence labeler (Figure 4) for primitive-concept mining.
//
// Words are embedded (trainable table built over the training corpus),
// passed through a BiLSTM, projected to per-label emissions, and decoded
// with a linear-chain CRF. Labels follow the IOB scheme over the 20
// first-level domains; the label inventory is derived from the training
// data.

#ifndef ALICOCO_MINING_SEQUENCE_LABELER_H_
#define ALICOCO_MINING_SEQUENCE_LABELER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/metrics.h"
#include "mining/distant_supervision.h"
#include "nn/crf.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"
#include "text/vocabulary.h"

namespace alicoco {
class ThreadPool;
}  // namespace alicoco

namespace alicoco::mining {

/// Training hyperparameters.
struct SequenceLabelerConfig {
  int word_dim = 24;
  int hidden_dim = 24;
  int epochs = 3;
  float lr = 0.01f;
  int batch_size = 8;
  float dropout = 0.1f;
  /// Probability of replacing a training token with <unk>: teaches the
  /// model to extend spans over out-of-vocabulary modifiers — essential for
  /// discovering genuinely new concepts.
  float word_unk_prob = 0.15f;
  uint64_t seed = 11;
  /// Optional worker pool for data-parallel minibatches (not owned; null
  /// trains on the calling thread). The trained model depends on the pool's
  /// thread count only through the summation order of batch gradients.
  ThreadPool* pool = nullptr;
};

/// Trainable BiLSTM-CRF tagger.
class SequenceLabeler {
 public:
  explicit SequenceLabeler(const SequenceLabelerConfig& config);

  /// Builds vocab and label set from `data` and trains. May be called once.
  void Train(const std::vector<LabeledSentence>& data);

  /// Viterbi-decoded IOB tags for a sentence. Unknown words map to <unk>.
  std::vector<std::string> Predict(
      const std::vector<std::string>& tokens) const;

  /// Span-level micro precision/recall/F1 against gold.
  eval::BinaryMetrics Evaluate(const std::vector<LabeledSentence>& gold) const;

  /// Checkpoints the trained model: `path` holds the vocabulary, labels and
  /// dimensions; `path`.weights holds the parameters.
  Status Save(const std::string& path) const;

  /// Restores a trained labeler from a checkpoint.
  static Result<SequenceLabeler> Load(const std::string& path);

  const std::vector<std::string>& labels() const { return label_names_; }
  size_t vocab_size() const { return vocab_.size(); }

 private:
  int LabelId(const std::string& label) const;
  nn::Graph::Var Emissions(nn::Graph* g, const std::vector<int>& ids,
                           bool train, Rng* rng) const;
  /// Creates the layers for the current vocab/label inventory.
  void BuildModel();

  SequenceLabelerConfig config_;
  Rng init_rng_;
  text::Vocabulary vocab_;
  std::vector<std::string> label_names_;  // index = label id; [0] == "O"
  std::unordered_map<std::string, int> label_ids_;

  nn::ParameterStore store_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::BiLstm> bilstm_;
  std::unique_ptr<nn::Linear> proj_;
  std::unique_ptr<nn::LinearChainCrf> crf_;
  bool trained_ = false;
};

}  // namespace alicoco::mining

#endif  // ALICOCO_MINING_SEQUENCE_LABELER_H_
