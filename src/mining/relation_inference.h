// Commonsense relation inference — the paper's future work, items 1 and 2
// (Section 10): "mining more unseen relations containing commonsense
// knowledge, for example 'boy's T-shirts' implies the 'Time' should be
// 'Summer', even though the term does not appear", and "bring probabilities
// to relations".
//
// The inference is statistical: if items of a category co-occur with a
// season (or an event, via the items' gold associations) far more often
// than chance, propose a typed relation suitable_when(category, season) /
// used_when(category, event) with a lift-derived confidence. Proposals are
// validated against the schema before entering the net.

#ifndef ALICOCO_MINING_RELATION_INFERENCE_H_
#define ALICOCO_MINING_RELATION_INFERENCE_H_

#include <string>
#include <vector>

#include "datagen/world.h"
#include "kg/concept_net.h"

namespace alicoco::mining {

/// One inferred relation with its evidence.
struct InferredRelation {
  std::string relation;     ///< schema relation name
  kg::ConceptId subject;    ///< e.g. a category head
  kg::ConceptId object;     ///< e.g. a season
  double confidence = 0;    ///< lift-derived probability in (0, 1]
  size_t support = 0;       ///< co-occurring items
};

struct RelationInferenceConfig {
  double min_lift = 1.5;    ///< co-occurrence lift over independence
  size_t min_support = 5;   ///< minimum co-occurring items
  double max_confidence = 0.99;
};

/// Infers schema-typed relations from item statistics in a net.
class RelationInference {
 public:
  /// `net` must outlive the engine and carry the "suitable_when" /
  /// "used_when" schema relations.
  explicit RelationInference(const kg::ConceptNet* net);

  /// suitable_when(category, season): a category concept and a Time-domain
  /// concept co-tagged on the same items beyond chance.
  std::vector<InferredRelation> InferSuitableWhen(
      const RelationInferenceConfig& config) const;

  /// used_when(category, event): a category concept whose items associate
  /// with an event-interpreted e-commerce concept beyond chance.
  std::vector<InferredRelation> InferUsedWhen(
      const RelationInferenceConfig& config) const;

  /// Writes proposals into `target` as typed relations (schema-validated;
  /// invalid or duplicate proposals are skipped). Returns how many landed.
  static size_t Commit(const std::vector<InferredRelation>& proposals,
                       kg::ConceptNet* target);

 private:
  const kg::ConceptNet* net_;
};

/// Gold-relative quality of inferred relations over a generated world:
/// a suitable_when proposal is correct iff the world's compatibility model
/// marks the pair compatible; used_when iff the event's needs contain the
/// category head.
struct RelationInferenceQuality {
  size_t proposed = 0;
  size_t correct = 0;
  double precision = 0;
  double recall = 0;  ///< of gold-compatible pairs with enough catalog
                      ///< evidence to be discoverable
};

/// Proposals must reference the world's GOLD net (ids are compared
/// directly). `min_support` defines which gold pairs count as discoverable
/// for the recall denominator.
RelationInferenceQuality EvaluateSuitableWhen(
    const std::vector<InferredRelation>& proposals,
    const datagen::World& world, size_t min_support);

}  // namespace alicoco::mining

#endif  // ALICOCO_MINING_RELATION_INFERENCE_H_
