#include "mining/relation_inference.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/logging.h"

namespace alicoco::mining {
namespace {

// Per-domain item tag counts and joint counts between two domains.
struct CoStats {
  std::unordered_map<uint32_t, size_t> subject_counts;
  std::unordered_map<uint32_t, size_t> object_counts;
  std::map<std::pair<uint32_t, uint32_t>, size_t> joint;
  size_t num_items = 0;
};

std::vector<InferredRelation> ProposalsFromStats(
    const CoStats& stats, const std::string& relation,
    const RelationInferenceConfig& config) {
  std::vector<InferredRelation> out;
  if (stats.num_items == 0) return out;
  double n = static_cast<double>(stats.num_items);
  for (const auto& [pair, joint] : stats.joint) {
    if (joint < config.min_support) continue;
    double expected = static_cast<double>(stats.subject_counts.at(pair.first)) *
                      static_cast<double>(stats.object_counts.at(pair.second)) /
                      n;
    if (expected <= 0) continue;
    double lift = static_cast<double>(joint) / expected;
    if (lift < config.min_lift) continue;
    InferredRelation rel;
    rel.relation = relation;
    rel.subject = kg::ConceptId(pair.first);
    rel.object = kg::ConceptId(pair.second);
    rel.support = joint;
    rel.confidence = std::min(config.max_confidence, 1.0 - 1.0 / lift);
    out.push_back(rel);
  }
  std::sort(out.begin(), out.end(),
            [](const InferredRelation& a, const InferredRelation& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.support > b.support;
            });
  return out;
}

}  // namespace

RelationInference::RelationInference(const kg::ConceptNet* net) : net_(net) {
  ALICOCO_CHECK(net != nullptr);
}

std::vector<InferredRelation> RelationInference::InferSuitableWhen(
    const RelationInferenceConfig& config) const {
  const auto& tax = net_->taxonomy();
  auto category = tax.Find("Category");
  auto time = tax.Find("Time");
  if (!category.ok() || !time.ok()) return {};

  CoStats stats;
  stats.num_items = net_->num_items();
  for (const auto& item : net_->items()) {
    std::vector<uint32_t> cats, seasons;
    for (kg::ConceptId prim : net_->PrimitivesForItem(item.id)) {
      kg::ClassId domain = tax.Domain(net_->Get(prim).cls);
      if (domain == *category) cats.push_back(prim.value);
      if (domain == *time) seasons.push_back(prim.value);
    }
    for (uint32_t c : cats) ++stats.subject_counts[c];
    for (uint32_t s : seasons) ++stats.object_counts[s];
    for (uint32_t c : cats) {
      for (uint32_t s : seasons) ++stats.joint[{c, s}];
    }
  }
  return ProposalsFromStats(stats, "suitable_when", config);
}

std::vector<InferredRelation> RelationInference::InferUsedWhen(
    const RelationInferenceConfig& config) const {
  const auto& tax = net_->taxonomy();
  auto category = tax.Find("Category");
  auto event = tax.Find("Event");
  if (!category.ok() || !event.ok()) return {};

  CoStats stats;
  stats.num_items = net_->num_items();
  for (const auto& item : net_->items()) {
    std::vector<uint32_t> cats, events;
    for (kg::ConceptId prim : net_->PrimitivesForItem(item.id)) {
      if (tax.Domain(net_->Get(prim).cls) == *category) {
        cats.push_back(prim.value);
      }
    }
    // Events arrive indirectly: via the e-commerce concepts the item is
    // associated with and their event-domain interpretations.
    for (kg::EcConceptId ec : net_->EcConceptsForItem(item.id)) {
      for (kg::ConceptId prim : net_->PrimitivesForEc(ec)) {
        if (tax.Domain(net_->Get(prim).cls) == *event) {
          events.push_back(prim.value);
        }
      }
    }
    std::sort(events.begin(), events.end());
    events.erase(std::unique(events.begin(), events.end()), events.end());
    for (uint32_t c : cats) ++stats.subject_counts[c];
    for (uint32_t e : events) ++stats.object_counts[e];
    for (uint32_t c : cats) {
      for (uint32_t e : events) ++stats.joint[{c, e}];
    }
  }
  return ProposalsFromStats(stats, "used_when", config);
}

size_t RelationInference::Commit(
    const std::vector<InferredRelation>& proposals, kg::ConceptNet* target) {
  ALICOCO_CHECK(target != nullptr);
  size_t committed = 0;
  for (const auto& rel : proposals) {
    if (target->AddTypedRelation(rel.relation, rel.subject, rel.object)
            .ok()) {
      ++committed;
    }
  }
  return committed;
}

RelationInferenceQuality EvaluateSuitableWhen(
    const std::vector<InferredRelation>& proposals,
    const datagen::World& world, size_t min_support) {
  RelationInferenceQuality q;
  q.proposed = proposals.size();
  for (const auto& rel : proposals) {
    if (world.GoldCompatible(rel.subject, rel.object)) ++q.correct;
  }
  q.precision = q.proposed > 0
                    ? static_cast<double>(q.correct) / q.proposed
                    : 0.0;

  // Recall denominator: gold-compatible (category, season) pairs with
  // enough catalog evidence to be discoverable.
  const auto& net = world.net();
  const auto& tax = net.taxonomy();
  auto category = *tax.Find("Category");
  auto time = *tax.Find("Time");
  std::map<std::pair<uint32_t, uint32_t>, size_t> joint;
  for (const auto& item : net.items()) {
    std::vector<uint32_t> cats, seasons;
    for (kg::ConceptId prim : net.PrimitivesForItem(item.id)) {
      kg::ClassId domain = tax.Domain(net.Get(prim).cls);
      if (domain == category) cats.push_back(prim.value);
      if (domain == time) seasons.push_back(prim.value);
    }
    for (uint32_t c : cats) {
      for (uint32_t s : seasons) ++joint[{c, s}];
    }
  }
  size_t discoverable = 0, recalled = 0;
  std::set<std::pair<uint32_t, uint32_t>> proposed_pairs;
  for (const auto& rel : proposals) {
    proposed_pairs.insert({rel.subject.value, rel.object.value});
  }
  for (const auto& [pair, support] : joint) {
    if (support < min_support) continue;
    if (!world.GoldCompatible(kg::ConceptId(pair.first),
                              kg::ConceptId(pair.second))) {
      continue;
    }
    ++discoverable;
    if (proposed_pairs.count(pair)) ++recalled;
  }
  q.recall = discoverable > 0
                 ? static_cast<double>(recalled) / discoverable
                 : 0.0;
  return q;
}

}  // namespace alicoco::mining
