#include "datagen/resources.h"

namespace alicoco::datagen {

WorldResources::WorldResources(const World& world,
                               const ResourcesConfig& config)
    : world_(&world) {
  for (const auto& s : world.sentences()) {
    std::vector<int> ids;
    ids.reserve(s.tokens.size());
    for (const auto& t : s.tokens) ids.push_back(vocab_.Add(t));
    corpus_ids_.push_back(std::move(ids));
    lm_.AddSentence(s.tokens);
  }
  lm_.Finalize();

  text::SkipgramConfig sg;
  sg.dim = config.embedding_dim;
  sg.epochs = config.embedding_epochs;
  sg.subsample = 0;  // synthetic corpora are small; keep every occurrence
  sg.seed = config.seed;
  embeddings_ =
      std::make_unique<text::SkipgramModel>(vocab_.size(), sg);
  embeddings_->Train(corpus_ids_, vocab_);

  gloss_encoder_ =
      std::make_unique<text::GlossEncoder>(embeddings_.get(), &vocab_);
  for (const auto& p : world.net().primitives()) {
    if (!p.gloss.empty()) gloss_encoder_->ObserveDocument(p.gloss);
  }
  gloss_encoder_->FinalizeIdf();

  context_ = std::make_unique<text::ContextMatrix>(corpus_ids_, *embeddings_,
                                                   config.context_window);
}

std::vector<std::string> WorldResources::GlossOf(
    const std::string& word) const {
  auto senses = world_->net().FindPrimitive(word);
  for (kg::ConceptId id : senses) {
    const auto& gloss = world_->net().Get(id).gloss;
    if (!gloss.empty()) return gloss;
  }
  return {};
}

}  // namespace alicoco::datagen
