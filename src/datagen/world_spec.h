// Taxonomy specification of the synthetic e-commerce world.
//
// Mirrors Section 3 / Figure 3 / Table 2: exactly the 20 first-level domains
// of AliCoCo, with Category carrying the deepest subtree (it is the backbone
// of the platform) and Time/Location/Audience carrying the subclasses the
// concept-generation patterns of Table 1 reference.

#ifndef ALICOCO_DATAGEN_WORLD_SPEC_H_
#define ALICOCO_DATAGEN_WORLD_SPEC_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "kg/taxonomy.h"

namespace alicoco::datagen {

/// Names of the 20 domains, matching Table 2.
const std::vector<std::string>& DomainNames();

/// Handles to the classes the generators address directly.
struct TaxonomyHandles {
  kg::ClassId category;           // domain
  kg::ClassId brand;
  kg::ClassId color;
  kg::ClassId design;
  kg::ClassId function;
  kg::ClassId material;
  kg::ClassId pattern;
  kg::ClassId shape;
  kg::ClassId smell;
  kg::ClassId taste;
  kg::ClassId style;
  kg::ClassId audience;
  kg::ClassId audience_human;     // Audience->Human
  kg::ClassId event;
  kg::ClassId event_action;      // Event->Action
  kg::ClassId ip;
  kg::ClassId location;
  kg::ClassId modifier;
  kg::ClassId nature;
  kg::ClassId organization;
  kg::ClassId quantity;
  kg::ClassId time;
  kg::ClassId time_season;       // Time->Season
  kg::ClassId time_holiday;      // Time->Holiday
  std::vector<kg::ClassId> category_leaves;  // leaf classes under Category
};

/// Populates `taxonomy` (fresh, root-only) with the 20 domains and their
/// subtrees. Returns handles to the addressed classes.
TaxonomyHandles BuildTaxonomy(kg::Taxonomy* taxonomy);

}  // namespace alicoco::datagen

#endif  // ALICOCO_DATAGEN_WORLD_SPEC_H_
