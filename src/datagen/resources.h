// Shared derived resources over a generated world: the corpus vocabulary,
// pretrained skip-gram embeddings, the n-gram language model, the gloss
// encoder and the context matrix. Every downstream model consumes some
// subset of these; building them once per world keeps tests and benches
// fast and consistent.

#ifndef ALICOCO_DATAGEN_RESOURCES_H_
#define ALICOCO_DATAGEN_RESOURCES_H_

#include <memory>
#include <string>
#include <vector>

#include "datagen/world.h"
#include "text/gloss_encoder.h"
#include "text/ngram_lm.h"
#include "text/skipgram.h"
#include "text/vocabulary.h"

namespace alicoco::datagen {

/// Knobs for the derived resources.
struct ResourcesConfig {
  int embedding_dim = 20;
  int embedding_epochs = 8;
  int context_window = 3;
  uint64_t seed = 97;
};

/// Bundle of corpus-derived models. Construct once per world.
class WorldResources {
 public:
  WorldResources(const World& world, const ResourcesConfig& config);

  const text::Vocabulary& vocab() const { return vocab_; }
  const text::SkipgramModel& embeddings() const { return *embeddings_; }
  const text::NgramLm& lm() const { return lm_; }
  const text::GlossEncoder& gloss_encoder() const { return *gloss_encoder_; }
  const text::ContextMatrix& context_matrix() const { return *context_; }
  const std::vector<std::vector<int>>& corpus_ids() const {
    return corpus_ids_;
  }

  /// Gloss tokens of a word's first primitive-concept sense ({} if none) —
  /// the "link each word to its encyclopedia article" step of Section 5.2.2.
  std::vector<std::string> GlossOf(const std::string& word) const;

 private:
  const World* world_;
  text::Vocabulary vocab_;
  std::vector<std::vector<int>> corpus_ids_;
  std::unique_ptr<text::SkipgramModel> embeddings_;
  text::NgramLm lm_;
  std::unique_ptr<text::GlossEncoder> gloss_encoder_;
  std::unique_ptr<text::ContextMatrix> context_;
};

}  // namespace alicoco::datagen

#endif  // ALICOCO_DATAGEN_RESOURCES_H_
