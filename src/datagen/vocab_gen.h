// Synthetic word minting.
//
// Produces unique, pronounceable tokens with domain-appropriate morphology:
// nouns for categories/brands/locations, adjective-shaped words ("-y",
// "-ish", "-al") for functions/styles/colors, "-ing" forms for events — so
// the lexicon-free fallbacks of the POS tagger behave as they would on real
// e-commerce text.

#ifndef ALICOCO_DATAGEN_VOCAB_GEN_H_
#define ALICOCO_DATAGEN_VOCAB_GEN_H_

#include <string>
#include <unordered_set>

#include "common/rng.h"

namespace alicoco::datagen {

/// Mints unique synthetic tokens. Deterministic given the seed.
class WordMinter {
 public:
  explicit WordMinter(uint64_t seed) : rng_(seed) {}

  /// Bare noun, 2-3 syllables ("velkon").
  std::string MintNoun();

  /// Adjective-shaped token ("velkony", "tarmish", "plonal").
  std::string MintAdjective();

  /// Gerund-shaped token for events/actions ("velking").
  std::string MintGerund();

  /// Brand-shaped token ("velkonix", "tarmex").
  std::string MintBrand();

  /// Registers an externally-created token so it is never re-minted.
  void Reserve(const std::string& token) { used_.insert(token); }

  size_t minted() const { return used_.size(); }

 private:
  std::string Syllable();
  std::string Stem(int syllables);
  std::string Unique(const std::string& base, const char* const* suffixes,
                     size_t num_suffixes);

  Rng rng_;
  std::unordered_set<std::string> used_;
};

}  // namespace alicoco::datagen

#endif  // ALICOCO_DATAGEN_VOCAB_GEN_H_
