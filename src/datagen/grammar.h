// Carrier-text grammar: the "glue" words of the synthetic corpus and
// helpers for assembling sentences with gold IOB labels.

#ifndef ALICOCO_DATAGEN_GRAMMAR_H_
#define ALICOCO_DATAGEN_GRAMMAR_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace alicoco::datagen {

/// One corpus sentence with per-token gold domain labels.
struct Sentence {
  enum class Source { kTitle, kQuery, kReview, kGuide };
  Source source = Source::kTitle;
  std::vector<std::string> tokens;
  std::vector<std::string> gold_iob;  ///< "B-Category" / "I-Category" / "O"
};

/// Sentence assembly with label bookkeeping.
class SentenceBuilder {
 public:
  explicit SentenceBuilder(Sentence::Source source) { s_.source = source; }

  /// Appends a labeled concept span (IOB over the domain label).
  SentenceBuilder& Concept(const std::vector<std::string>& tokens,
                           const std::string& domain);

  /// Appends one O-labeled carrier token.
  SentenceBuilder& O(const std::string& token);

  /// Appends several O-labeled carrier tokens.
  SentenceBuilder& O(const std::vector<std::string>& tokens);

  Sentence Build() { return std::move(s_); }

 private:
  Sentence s_;
};

/// Every closed-class carrier token the emitters may produce. Distant
/// supervision treats these as inherently O-taggable when deciding whether
/// a sentence is "perfectly matched" (Section 7.2).
const std::vector<std::string>& CarrierVocabulary();

/// Pools of closed-class carrier words (always O-labeled; the POS tagger
/// knows them as PREP/OTHER).
class Grammar {
 public:
  explicit Grammar(Rng* rng) : rng_(rng) {}

  /// "the", "a", "this", ...
  std::string Determiner();
  /// "is", "are", "comes", ...
  std::string Copula();
  /// "very", "really", "quite", ...
  std::string Intensifier();
  /// "and", "or", "with".
  std::string Conjunction();
  /// Generic filler noun used in noisy titles ("edition", "set", "pack").
  std::string FillerNoun();

 private:
  Rng* rng_;
};

}  // namespace alicoco::datagen

#endif  // ALICOCO_DATAGEN_GRAMMAR_H_
