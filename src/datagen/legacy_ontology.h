// The "former ontology" baseline of Sections 1 and 7.1: a CPV
// (Category-Property-Value) ontology that only knows categories and item
// properties — no events, locations, functions, audiences or any other
// user-needs vocabulary. Coverage of rewritten user-needs queries against
// this baseline is what the paper reports as ~30% vs AliCoCo's ~75%.

#ifndef ALICOCO_DATAGEN_LEGACY_ONTOLOGY_H_
#define ALICOCO_DATAGEN_LEGACY_ONTOLOGY_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "datagen/world.h"

namespace alicoco::datagen {

/// CPV-style vocabulary extracted from a world: category surfaces plus the
/// property-like domains (Brand, Color, Material only).
class LegacyOntology {
 public:
  explicit LegacyOntology(const World& world);

  /// True if the token belongs to the CPV vocabulary.
  bool Knows(const std::string& token) const;

  size_t vocabulary_size() const { return vocabulary_.size(); }

 private:
  std::unordered_set<std::string> vocabulary_;
};

}  // namespace alicoco::datagen

#endif  // ALICOCO_DATAGEN_LEGACY_ONTOLOGY_H_
