#include "datagen/grammar.h"

namespace alicoco::datagen {
namespace {
const std::vector<std::string> kDeterminers = {"the", "a", "this", "my",
                                               "your"};
const std::vector<std::string> kCopulas = {"is", "are", "comes", "feels"};
const std::vector<std::string> kIntensifiers = {"very", "really", "quite",
                                                "so"};
const std::vector<std::string> kConjunctions = {"and", "or", "with"};
const std::vector<std::string> kFillerNouns = {"edition", "set", "pack",
                                               "series", "bundle"};
}  // namespace

const std::vector<std::string>& CarrierVocabulary() {
  static const std::vector<std::string> kAll = [] {
    std::vector<std::string> v;
    for (const auto& pool : {kDeterminers, kCopulas, kIntensifiers,
                             kConjunctions, kFillerNouns}) {
      v.insert(v.end(), pool.begin(), pool.end());
    }
    for (const char* w : {"for", "in", "such", "as", "you", "need", "needs",
                          "every", "gifts"}) {
      v.emplace_back(w);
    }
    return v;
  }();
  return kAll;
}

SentenceBuilder& SentenceBuilder::Concept(
    const std::vector<std::string>& tokens, const std::string& domain) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    s_.tokens.push_back(tokens[i]);
    s_.gold_iob.push_back((i == 0 ? "B-" : "I-") + domain);
  }
  return *this;
}

SentenceBuilder& SentenceBuilder::O(const std::string& token) {
  s_.tokens.push_back(token);
  s_.gold_iob.push_back("O");
  return *this;
}

SentenceBuilder& SentenceBuilder::O(const std::vector<std::string>& tokens) {
  for (const auto& t : tokens) O(t);
  return *this;
}

std::string Grammar::Determiner() {
  return kDeterminers[rng_->Uniform(kDeterminers.size())];
}
std::string Grammar::Copula() {
  return kCopulas[rng_->Uniform(kCopulas.size())];
}
std::string Grammar::Intensifier() {
  return kIntensifiers[rng_->Uniform(kIntensifiers.size())];
}
std::string Grammar::Conjunction() {
  return kConjunctions[rng_->Uniform(kConjunctions.size())];
}
std::string Grammar::FillerNoun() {
  return kFillerNouns[rng_->Uniform(kFillerNouns.size())];
}

}  // namespace alicoco::datagen
