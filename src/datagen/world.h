// The synthetic e-commerce world.
//
// Substitutes Alibaba's proprietary assets (Section 1 of DESIGN.md): a
// generative model of a product universe whose gold structure is known, so
// every construction task of the paper has both training text and
// evaluation labels:
//
//   * a gold ConceptNet (taxonomy, primitive concepts with glosses,
//     hypernym edges, e-commerce concepts with interpretations, items with
//     gold associations including semantic-drift ones);
//   * corpora (product titles, queries, reviews, shopping guides) with gold
//     IOB span labels for distant supervision and NER evaluation;
//   * a compatibility model (which functions suit which events, which
//     styles suit which categories, ...) that defines concept plausibility
//     and item relevance — the commonsense the knowledge-enhanced models
//     must recover from glosses.

#ifndef ALICOCO_DATAGEN_WORLD_H_
#define ALICOCO_DATAGEN_WORLD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "datagen/grammar.h"
#include "datagen/vocab_gen.h"
#include "datagen/world_spec.h"
#include "kg/concept_net.h"
#include "text/pos_tagger.h"

namespace alicoco::datagen {

/// Size and randomness knobs. Defaults produce a bench-scale world (a few
/// thousand items) in well under a second.
struct WorldConfig {
  uint64_t seed = 42;
  int heads_per_leaf = 3;      ///< head nouns per leaf category class
  int derived_per_head = 5;    ///< 2-token hyponyms per head
  int per_domain_vocab = 30;   ///< concepts per attribute domain
  int num_events = 28;
  int num_items = 4000;
  int num_good_ec_concepts = 320;
  int num_bad_ec_concepts = 320;
  int titles = 5000;           ///< corpus sizes by source
  int reviews = 2500;
  int guides = 1200;
  int queries = 2000;
  int num_users = 200;
  int num_needs_queries = 600; ///< rewritten queries for the coverage eval
  double ambiguous_fraction = 0.08;        ///< surfaces minted in 2 domains
  double holdout_category_fraction = 0.3;  ///< derived concepts hidden from
                                           ///< the seed dictionary (mining
                                           ///< discovery targets)
};

/// Gold hypernym pair (surfaces, both Category concepts).
struct HypernymGold {
  std::string hypo;
  std::string hyper;
};

/// A labeled candidate e-commerce concept (Section 5.2).
struct ConceptCandidate {
  enum class Flaw {
    kNone,            ///< good concept
    kImplausible,     ///< violates the compatibility model
    kIncoherent,      ///< scrambled word order
    kDuplicateClass,  ///< two mutually exclusive modifiers
    kNonEcommerce,    ///< no shopping meaning ("blue sky")
    kFragment,        ///< two concepts jammed together (Clarity violation,
                      ///< the shape phrase mining produces by accident)
  };
  std::vector<std::string> tokens;
  bool good = false;
  Flaw flaw = Flaw::kNone;
};

/// A gold-tagged e-commerce concept for the tagging task (Section 5.3):
/// per-token primary domain label plus the full set of defensible labels
/// (the fuzzy-CRF supervision).
struct TaggedConcept {
  std::vector<std::string> tokens;
  std::vector<std::string> gold_iob;
  std::vector<std::vector<std::string>> allowed_iob;  ///< >=1 label per token
};

/// Gold structure of one good e-commerce concept.
struct EcGold {
  kg::EcConceptId id;
  std::vector<kg::ConceptId> interpretation;  ///< primitive concepts
  std::vector<kg::ItemId> items;              ///< gold associated items
  bool event_driven = false;  ///< associations exist only through the event
                              ///< profile (semantic drift, Section 6)
};

/// Gold attributes of one item.
struct ItemProfile {
  kg::ItemId id;
  kg::ConceptId category;   ///< its category concept (head or derived)
  kg::ConceptId head;       ///< head concept (== category for heads)
  kg::ClassId leaf_class;
  std::vector<kg::ConceptId> attributes;  ///< brand/color/function/style/...
  std::optional<kg::ConceptId> season;    ///< seasonal constraint if any
};

/// One synthetic user for the recommendation application.
struct UserHistory {
  std::vector<kg::ItemId> clicked;
  std::vector<kg::EcConceptId> needs;  ///< latent gold needs
};

/// The generated world. Immutable after Generate().
class World {
 public:
  static World Generate(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const kg::ConceptNet& net() const { return net_; }
  kg::ConceptNet* mutable_net() { return &net_; }
  const TaxonomyHandles& handles() const { return handles_; }
  const text::PosTagger& pos_tagger() const { return pos_tagger_; }

  const std::vector<Sentence>& sentences() const { return sentences_; }

  /// Token sequences of all sentences from one source.
  std::vector<std::vector<std::string>> SentencesBySource(
      Sentence::Source source) const;

  /// Gold hyponym->hypernym pairs inside Category (Section 7.3 dataset).
  const std::vector<HypernymGold>& hypernym_gold() const {
    return hypernym_gold_;
  }

  /// All Category concept surfaces (the hypernym search space).
  const std::vector<std::string>& category_vocabulary() const {
    return category_vocabulary_;
  }

  /// Labeled good/bad concept candidates (Section 7.4 dataset).
  const std::vector<ConceptCandidate>& concept_candidates() const {
    return concept_candidates_;
  }

  /// Gold-tagged concepts (Section 7.5 dataset).
  const std::vector<TaggedConcept>& tagged_concepts() const {
    return tagged_concepts_;
  }

  /// Gold e-commerce concept structure (Section 7.6 positives).
  const std::vector<EcGold>& ec_gold() const { return ec_gold_; }

  const std::vector<ItemProfile>& item_profiles() const {
    return item_profiles_;
  }

  const std::vector<UserHistory>& user_histories() const {
    return user_histories_;
  }

  /// Derived Category surfaces excluded from the seed dictionary — the
  /// targets the mining loop of Section 7.2 must discover from text.
  const std::vector<std::string>& holdout_surfaces() const {
    return holdout_surfaces_;
  }

  /// Bootstrap dictionary: (surface, domain label) pairs known before any
  /// mining (everything except the holdout).
  const std::vector<std::pair<std::string, std::string>>& seed_dictionary()
      const {
    return seed_dictionary_;
  }

  /// Rewritten user-needs queries for the coverage evaluation (Section 7.1).
  const std::vector<std::vector<std::string>>& needs_queries() const {
    return needs_queries_;
  }

  /// Domain label (first-level class name) of a primitive concept.
  std::string DomainLabel(kg::ConceptId id) const;

  /// Mid-level "group" concepts — hypernyms of heads with token-disjoint
  /// surfaces (exercised by search relevance, Section 8.1.1).
  const std::vector<kg::ConceptId>& group_concepts() const { return groups_; }

  /// Gold compatibility between two primitive concepts of the gold net
  /// (category concepts are normalized to their head first). This is the
  /// ground truth for inferred commonsense relations.
  bool GoldCompatible(kg::ConceptId a, kg::ConceptId b) const;

  /// Ground-truth goodness of an arbitrary candidate concept: true iff the
  /// tokens parse as one of the generation patterns AND satisfy the world's
  /// compatibility model (the commonsense the classifier must learn). This
  /// is the annotation oracle for audits — membership in the sampled gold
  /// list is NOT required.
  bool IsGoodConcept(const std::vector<std::string>& tokens) const;

 private:
  World() = default;

  // Generation phases (called by Generate in order).
  void MintPrimitiveConcepts(WordMinter* minter, Rng* rng);
  void BuildCompatibility(Rng* rng);
  void WriteGlosses(Rng* rng);
  void GenerateItems(Rng* rng);
  void GenerateEcConcepts(Rng* rng);
  void GenerateCandidates(Rng* rng);
  void GenerateCorpus(Rng* rng);
  void GenerateUsers(Rng* rng);
  void GenerateNeedsQueries(Rng* rng);
  void BuildSeedDictionary(Rng* rng);

  // Helpers.
  const std::vector<std::string>& Tokens(kg::ConceptId id) const;
  bool Compatible(kg::ConceptId a, kg::ConceptId b) const;
  void MarkCompatible(kg::ConceptId a, kg::ConceptId b);
  kg::ConceptId Sample(const std::vector<kg::ConceptId>& pool, Rng* rng) const;

  WorldConfig config_;
  TaxonomyHandles handles_;
  kg::ConceptNet net_;
  text::PosTagger pos_tagger_;

  // Per-domain concept pools.
  std::vector<kg::ConceptId> heads_;      // Category heads
  std::vector<kg::ConceptId> groups_;     // mid-level hypernyms of heads whose
                                          // surfaces share no token with them
                                          // (the "jacket isA top" case)
  std::vector<kg::ConceptId> derived_;    // Category hyponyms
  std::unordered_map<kg::ConceptId, kg::ConceptId> head_of_;  // derived->head
  std::unordered_map<kg::ConceptId, std::vector<kg::ConceptId>>
      derived_of_;                        // head->derived
  std::vector<kg::ConceptId> brands_, colors_, functions_, styles_,
      materials_, audiences_, locations_, events_, seasons_, holidays_,
      ips_, organizations_, patterns_, shapes_, smells_, tastes_, designs_,
      natures_, quantities_, modifiers_;

  // Token cache: concept id -> tokens of its surface.
  std::unordered_map<kg::ConceptId, std::vector<std::string>> tokens_;

  // Compatibility relation (symmetric) between primitive concepts.
  std::unordered_set<uint64_t> compatible_;

  // Event profiles: event -> categories (heads) it needs.
  std::unordered_map<kg::ConceptId, std::vector<kg::ConceptId>>
      event_needs_;

  std::vector<Sentence> sentences_;
  std::vector<HypernymGold> hypernym_gold_;
  std::vector<std::string> category_vocabulary_;
  std::vector<ConceptCandidate> concept_candidates_;
  std::vector<TaggedConcept> tagged_concepts_;
  std::vector<EcGold> ec_gold_;
  std::vector<ItemProfile> item_profiles_;
  std::vector<UserHistory> user_histories_;
  std::vector<std::string> holdout_surfaces_;
  std::unordered_set<std::string> holdout_set_;
  std::vector<std::pair<std::string, std::string>> seed_dictionary_;
  std::vector<std::vector<std::string>> needs_queries_;
};

}  // namespace alicoco::datagen

#endif  // ALICOCO_DATAGEN_WORLD_H_
