#include "datagen/vocab_gen.h"

#include "common/logging.h"

namespace alicoco::datagen {
namespace {
constexpr const char* kOnsets[] = {"b", "d", "f", "g", "k", "l", "m", "n",
                                   "p", "r", "s", "t", "v", "z", "br", "dr",
                                   "gr", "kl", "pl", "st", "tr", "sk"};
constexpr const char* kVowels[] = {"a", "e", "i", "o", "u"};
constexpr const char* kCodas[] = {"", "", "n", "r", "l", "m", "s", "k", "t"};
}  // namespace

std::string WordMinter::Syllable() {
  std::string s = kOnsets[rng_.Uniform(std::size(kOnsets))];
  s += kVowels[rng_.Uniform(std::size(kVowels))];
  s += kCodas[rng_.Uniform(std::size(kCodas))];
  return s;
}

std::string WordMinter::Stem(int syllables) {
  std::string s;
  for (int i = 0; i < syllables; ++i) s += Syllable();
  return s;
}

std::string WordMinter::Unique(const std::string& base,
                               const char* const* suffixes,
                               size_t num_suffixes) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string candidate = base;
    if (num_suffixes > 0) candidate += suffixes[rng_.Uniform(num_suffixes)];
    if (used_.insert(candidate).second) return candidate;
    // Collision: extend the stem and retry.
    return Unique(base + Syllable(), suffixes, num_suffixes);
  }
  ALICOCO_CHECK(false) << "word minting exhausted";
  return "";
}

std::string WordMinter::MintNoun() {
  return Unique(Stem(2 + static_cast<int>(rng_.Uniform(2))), nullptr, 0);
}

std::string WordMinter::MintAdjective() {
  static constexpr const char* kSuffixes[] = {"y", "ish", "al"};
  return Unique(Stem(2), kSuffixes, std::size(kSuffixes));
}

std::string WordMinter::MintGerund() {
  static constexpr const char* kSuffixes[] = {"ing"};
  return Unique(Stem(2), kSuffixes, std::size(kSuffixes));
}

std::string WordMinter::MintBrand() {
  static constexpr const char* kSuffixes[] = {"ix", "ex", "on", "ora"};
  return Unique(Stem(2), kSuffixes, std::size(kSuffixes));
}

}  // namespace alicoco::datagen
