#include "datagen/world_spec.h"

#include "common/logging.h"

namespace alicoco::datagen {

const std::vector<std::string>& DomainNames() {
  static const std::vector<std::string> kDomains = {
      "Audience", "Brand",    "Color",    "Design",       "Event",
      "Function", "Category", "IP",       "Material",     "Modifier",
      "Nature",   "Organization", "Pattern", "Location",  "Quantity",
      "Shape",    "Smell",    "Style",    "Taste",        "Time"};
  return kDomains;
}

TaxonomyHandles BuildTaxonomy(kg::Taxonomy* taxonomy) {
  ALICOCO_CHECK(taxonomy->size() == 1) << "taxonomy must be fresh";
  TaxonomyHandles h;
  for (const auto& name : DomainNames()) {
    kg::ClassId id = *taxonomy->AddDomain(name);
    if (name == "Audience") h.audience = id;
    else if (name == "Brand") h.brand = id;
    else if (name == "Color") h.color = id;
    else if (name == "Design") h.design = id;
    else if (name == "Event") h.event = id;
    else if (name == "Function") h.function = id;
    else if (name == "Category") h.category = id;
    else if (name == "IP") h.ip = id;
    else if (name == "Material") h.material = id;
    else if (name == "Modifier") h.modifier = id;
    else if (name == "Nature") h.nature = id;
    else if (name == "Organization") h.organization = id;
    else if (name == "Pattern") h.pattern = id;
    else if (name == "Location") h.location = id;
    else if (name == "Quantity") h.quantity = id;
    else if (name == "Shape") h.shape = id;
    else if (name == "Smell") h.smell = id;
    else if (name == "Style") h.style = id;
    else if (name == "Taste") h.taste = id;
    else if (name == "Time") h.time = id;
  }

  // Audience subtree (Table 1 addresses Audience->Human).
  h.audience_human = *taxonomy->AddClass("Human", h.audience);
  ALICOCO_CHECK(taxonomy->AddClass("Pet", h.audience).ok());

  // Event subtree (Table 1 addresses Event->Action).
  h.event_action = *taxonomy->AddClass("Action", h.event);
  ALICOCO_CHECK(taxonomy->AddClass("Holiday-Event", h.event).ok());

  // Time subtree.
  h.time_season = *taxonomy->AddClass("Season", h.time);
  h.time_holiday = *taxonomy->AddClass("Holiday", h.time);

  // Category subtree: mid-level groups, each with leaf classes (Figure 3's
  // "Category -> ClothingAndAccessory -> Clothing -> Dress" pattern).
  struct Group {
    const char* name;
    std::vector<const char*> leaves;
  };
  const std::vector<Group> kGroups = {
      {"Clothing", {"Dress", "Coat", "Trousers", "Hat", "Sock"}},
      {"Footwear", {"Boot", "Sneaker", "Sandal"}},
      {"Kitchen", {"Cookware", "Tableware", "Bakeware"}},
      {"Outdoor", {"CampGear", "GrillGear", "SportGear"}},
      {"Electronics", {"Phone", "Speaker", "Lamp"}},
      {"HomeDecor", {"Curtain", "Rug", "Pillow"}},
      {"Food", {"Snack", "Drink", "Pastry"}},
      {"PersonalCare", {"Skincare", "Haircare"}},
  };
  for (const auto& group : kGroups) {
    kg::ClassId mid = *taxonomy->AddClass(group.name, h.category);
    for (const char* leaf : group.leaves) {
      h.category_leaves.push_back(*taxonomy->AddClass(leaf, mid));
    }
  }
  return h;
}

}  // namespace alicoco::datagen
