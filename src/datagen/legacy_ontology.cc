#include "datagen/legacy_ontology.h"

#include "text/tokenizer.h"

namespace alicoco::datagen {

LegacyOntology::LegacyOntology(const World& world) {
  const auto& net = world.net();
  const auto& tax = net.taxonomy();
  for (const auto& p : net.primitives()) {
    std::string domain = tax.Get(tax.Domain(p.cls)).name;
    if (domain == "Category" || domain == "Brand" || domain == "Color" ||
        domain == "Material") {
      for (const auto& tok : text::Tokenize(p.surface)) {
        vocabulary_.insert(tok);
      }
    }
  }
}

bool LegacyOntology::Knows(const std::string& token) const {
  return vocabulary_.count(token) > 0;
}

}  // namespace alicoco::datagen
