#include "datagen/world.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/vocab_gen.h"
#include "text/tokenizer.h"

namespace alicoco::datagen {
namespace {

uint64_t PackPair(kg::ConceptId a, kg::ConceptId b) {
  uint32_t lo = std::min(a.value, b.value);
  uint32_t hi = std::max(a.value, b.value);
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

std::string Lower(const std::string& s) { return ToLower(s); }

}  // namespace

World World::Generate(const WorldConfig& config) {
  World world;
  world.config_ = config;
  world.handles_ = BuildTaxonomy(&world.net_.taxonomy());

  // Schema: the relations the paper names (Section 2) plus gift_for.
  const auto& h = world.handles_;
  ALICOCO_CHECK(
      world.net_.AddRelation("suitable_when", h.category, h.time_season).ok());
  ALICOCO_CHECK(world.net_.AddRelation("used_when", h.category, h.event).ok());
  ALICOCO_CHECK(
      world.net_.AddRelation("suitable_for", h.category, h.audience).ok());

  Rng rng(config.seed);
  WordMinter minter(rng.NextUint64());
  // Reserve carrier vocabulary so concepts never collide with it.
  for (const char* w :
       {"for", "in", "on", "with", "of", "the", "a", "an", "and", "or", "is",
        "are", "this", "my", "your", "very", "really", "quite", "so", "such",
        "as", "gifts", "need", "needs", "every", "you", "people", "where",
        "kind", "used", "made", "describes", "suitable", "place", "like",
        "who", "event", "style", "word", "edition", "set", "pack", "series",
        "bundle", "comes", "feels"}) {
    minter.Reserve(w);
  }

  world.MintPrimitiveConcepts(&minter, &rng);
  world.BuildCompatibility(&rng);
  world.WriteGlosses(&rng);
  world.GenerateItems(&rng);
  world.GenerateEcConcepts(&rng);
  world.GenerateCandidates(&rng);
  world.GenerateCorpus(&rng);
  world.GenerateUsers(&rng);
  world.GenerateNeedsQueries(&rng);
  world.BuildSeedDictionary(&rng);
  return world;
}

const std::vector<std::string>& World::Tokens(kg::ConceptId id) const {
  auto it = tokens_.find(id);
  ALICOCO_CHECK(it != tokens_.end());
  return it->second;
}

bool World::Compatible(kg::ConceptId a, kg::ConceptId b) const {
  return compatible_.count(PackPair(a, b)) > 0;
}

void World::MarkCompatible(kg::ConceptId a, kg::ConceptId b) {
  compatible_.insert(PackPair(a, b));
}

kg::ConceptId World::Sample(const std::vector<kg::ConceptId>& pool,
                            Rng* rng) const {
  ALICOCO_CHECK(!pool.empty());
  return pool[rng->Uniform(pool.size())];
}

std::string World::DomainLabel(kg::ConceptId id) const {
  const auto& tax = net_.taxonomy();
  return tax.Get(tax.Domain(net_.Get(id).cls)).name;
}

void World::MintPrimitiveConcepts(WordMinter* minter, Rng* rng) {
  auto add = [&](const std::string& surface, kg::ClassId cls,
                 text::PosTag pos,
                 std::vector<kg::ConceptId>* pool) -> kg::ConceptId {
    auto res = net_.GetOrAddPrimitiveConcept(surface, cls);
    ALICOCO_CHECK(res.ok()) << res.status().ToString();
    kg::ConceptId id = *res;
    tokens_[id] = text::Tokenize(surface);
    for (const auto& tok : tokens_[id]) pos_tagger_.AddLexeme(tok, pos);
    if (pool != nullptr) pool->push_back(id);
    return id;
  };

  // ---- Category: heads plus derived hyponyms per leaf class ----
  for (kg::ClassId leaf : handles_.category_leaves) {
    for (int hidx = 0; hidx < config_.heads_per_leaf; ++hidx) {
      std::string head_word = minter->MintNoun();
      kg::ConceptId head = add(head_word, leaf, text::PosTag::kNoun, &heads_);
      category_vocabulary_.push_back(head_word);
      for (int d = 0; d < config_.derived_per_head; ++d) {
        std::string mod = rng->Bernoulli(0.5) ? minter->MintAdjective()
                                              : minter->MintNoun();
        std::string surface = mod + " " + head_word;
        kg::ConceptId child =
            add(surface, leaf, text::PosTag::kNoun, &derived_);
        // The modifier token keeps its own POS.
        pos_tagger_.AddLexeme(mod, EndsWith(mod, "y") || EndsWith(mod, "ish") ||
                                           EndsWith(mod, "al")
                                       ? text::PosTag::kAdj
                                       : text::PosTag::kNoun);
        ALICOCO_CHECK(net_.AddIsA(child, head).ok());
        head_of_[child] = head;
        derived_of_[head].push_back(child);
        hypernym_gold_.push_back(HypernymGold{surface, head_word});
        category_vocabulary_.push_back(surface);
      }
    }
  }

  // ---- Group concepts: one per mid-level category class ----
  // A hypernym of every head under that class whose surface shares no token
  // with the heads ("jacket isA top"): undetectable by the suffix rule,
  // discoverable only by projection learning or Hearst patterns.
  for (kg::ClassId mid : net_.taxonomy().Get(handles_.category).children) {
    std::string group_word = minter->MintNoun();
    kg::ConceptId group = add(group_word, mid, text::PosTag::kNoun, &groups_);
    category_vocabulary_.push_back(group_word);
    for (kg::ConceptId head : heads_) {
      kg::ClassId leaf = net_.Get(head).cls;
      if (net_.taxonomy().Get(leaf).parent == mid) {
        ALICOCO_CHECK(net_.AddIsA(head, group).ok());
        hypernym_gold_.push_back(
            HypernymGold{net_.Get(head).surface, group_word});
      }
    }
  }

  // ---- Attribute domains ----
  int n = config_.per_domain_vocab;
  for (int i = 0; i < n; ++i) {
    add(minter->MintBrand(), handles_.brand, text::PosTag::kNoun, &brands_);
    add(minter->MintAdjective(), handles_.color, text::PosTag::kAdj, &colors_);
    add(minter->MintAdjective(), handles_.function, text::PosTag::kAdj,
        &functions_);
    add(minter->MintAdjective(), handles_.style, text::PosTag::kAdj, &styles_);
    add(minter->MintNoun(), handles_.material, text::PosTag::kNoun,
        &materials_);
    add(minter->MintNoun(), handles_.location, text::PosTag::kNoun,
        &locations_);
  }
  for (int i = 0; i < std::max(4, n / 3); ++i) {
    add(minter->MintNoun(), handles_.audience_human, text::PosTag::kNoun,
        &audiences_);
  }
  for (int i = 0; i < config_.num_events; ++i) {
    kg::ClassId cls = rng->Bernoulli(0.5) ? handles_.event_action
                                          : handles_.event;
    add(minter->MintGerund(), cls, text::PosTag::kVerb, &events_);
  }
  for (int i = 0; i < 4; ++i) {
    add(minter->MintNoun(), handles_.time_season, text::PosTag::kNoun,
        &seasons_);
  }
  for (int i = 0; i < 6; ++i) {
    add(minter->MintNoun(), handles_.time_holiday, text::PosTag::kNoun,
        &holidays_);
  }
  // Minor domains: small vocabularies so Table 2 has non-zero rows.
  int minor = std::max(4, n / 4);
  for (int i = 0; i < minor; ++i) {
    add(minter->MintNoun() + " " + minter->MintNoun(), handles_.ip,
        text::PosTag::kNoun, &ips_);
    add(minter->MintBrand(), handles_.organization, text::PosTag::kNoun,
        &organizations_);
    add(minter->MintAdjective(), handles_.pattern, text::PosTag::kAdj,
        &patterns_);
    add(minter->MintNoun(), handles_.shape, text::PosTag::kNoun, &shapes_);
    add(minter->MintAdjective(), handles_.smell, text::PosTag::kAdj, &smells_);
    add(minter->MintAdjective(), handles_.taste, text::PosTag::kAdj, &tastes_);
    add(minter->MintAdjective(), handles_.design, text::PosTag::kAdj,
        &designs_);
    add(minter->MintNoun(), handles_.nature, text::PosTag::kNoun, &natures_);
    add(minter->MintNoun(), handles_.quantity, text::PosTag::kNoun,
        &quantities_);
    add(minter->MintAdjective(), handles_.modifier, text::PosTag::kAdj,
        &modifiers_);
  }

  // ---- Sense ambiguity ----
  // Some Location surfaces are also Styles (the "village" case of Figure 7);
  // some Event surfaces are also IP (the "barbecue" movie case).
  size_t n_amb_loc = std::max<size_t>(
      config_.ambiguous_fraction > 0 && !locations_.empty() ? 1 : 0,
      static_cast<size_t>(config_.ambiguous_fraction *
                          static_cast<double>(locations_.size())));
  for (size_t i = 0; i < n_amb_loc && i < locations_.size(); ++i) {
    const std::string& surface = net_.Get(locations_[i]).surface;
    auto res = net_.GetOrAddPrimitiveConcept(surface, handles_.style);
    ALICOCO_CHECK(res.ok());
    tokens_[*res] = text::Tokenize(surface);
    styles_.push_back(*res);
  }
  size_t n_amb_ev = std::max<size_t>(
      config_.ambiguous_fraction > 0 && !events_.empty() ? 1 : 0,
      static_cast<size_t>(config_.ambiguous_fraction *
                          static_cast<double>(events_.size())));
  for (size_t i = 0; i < n_amb_ev && i < events_.size(); ++i) {
    const std::string& surface = net_.Get(events_[i]).surface;
    auto res = net_.GetOrAddPrimitiveConcept(surface, handles_.ip);
    ALICOCO_CHECK(res.ok());
    tokens_[*res] = text::Tokenize(surface);
    ips_.push_back(*res);
  }
}

void World::BuildCompatibility(Rng* rng) {
  auto mark_subset = [&](kg::ConceptId subject,
                         const std::vector<kg::ConceptId>& pool, double p) {
    for (kg::ConceptId other : pool) {
      if (rng->Bernoulli(p)) MarkCompatible(subject, other);
    }
  };

  // Events (and holidays) need categories and tolerate some locations /
  // functions. Every event needs at least 3 category heads.
  std::vector<kg::ConceptId> all_events = events_;
  all_events.insert(all_events.end(), holidays_.begin(), holidays_.end());
  for (kg::ConceptId ev : all_events) {
    std::vector<kg::ConceptId> pool = heads_;
    rng->Shuffle(&pool);
    size_t need = 3 + rng->Uniform(4);
    std::vector<kg::ConceptId>& needs = event_needs_[ev];
    for (size_t i = 0; i < need && i < pool.size(); ++i) {
      needs.push_back(pool[i]);
      MarkCompatible(ev, pool[i]);
      // Typed edge: category used_when event (a real schema relation).
      if (net_.taxonomy().IsAncestor(handles_.event,
                                     net_.Get(ev).cls)) {
        (void)net_.AddTypedRelation("used_when", pool[i], ev);
      }
    }
    mark_subset(ev, locations_, 0.4);
    mark_subset(ev, functions_, 0.4);
  }

  for (kg::ConceptId aud : audiences_) {
    mark_subset(aud, functions_, 0.5);
    mark_subset(aud, styles_, 0.5);
  }
  for (kg::ConceptId style : styles_) mark_subset(style, heads_, 0.5);
  for (kg::ConceptId fn : functions_) mark_subset(fn, heads_, 0.5);
  for (kg::ConceptId season : seasons_) {
    mark_subset(season, heads_, 0.6);
    mark_subset(season, styles_, 0.6);
    for (kg::ConceptId head : heads_) {
      if (Compatible(season, head) && rng->Bernoulli(0.3)) {
        (void)net_.AddTypedRelation("suitable_when", head, season);
      }
    }
  }
  // Colors and materials suit everything.
  for (kg::ConceptId c : colors_) {
    for (kg::ConceptId head : heads_) MarkCompatible(c, head);
  }
  for (kg::ConceptId m : materials_) {
    for (kg::ConceptId head : heads_) MarkCompatible(m, head);
  }
  // Derived concepts inherit their head's compatibilities implicitly via
  // head_of_ (checked at use sites).
}

void World::WriteGlosses(Rng* rng) {
  auto set_gloss = [&](kg::ConceptId id, std::vector<std::string> gloss) {
    ALICOCO_CHECK(net_.SetGloss(id, std::move(gloss)).ok());
  };
  std::vector<kg::ConceptId> all_events = events_;
  all_events.insert(all_events.end(), holidays_.begin(), holidays_.end());

  for (kg::ConceptId head : heads_) {
    const auto& tax = net_.taxonomy();
    std::vector<std::string> gloss = {"a",
                                      Lower(tax.Get(net_.Get(head).cls).name)};
    gloss.push_back("used");
    gloss.push_back("for");
    int added = 0;
    for (kg::ConceptId ev : all_events) {
      const auto& needs = event_needs_[ev];
      if (std::find(needs.begin(), needs.end(), head) != needs.end()) {
        for (const auto& t : Tokens(ev)) gloss.push_back(t);
        if (++added >= 3) break;
      }
    }
    set_gloss(head, std::move(gloss));
  }
  for (kg::ConceptId d : derived_) {
    std::vector<std::string> gloss = {"a", "kind", "of"};
    for (const auto& t : Tokens(head_of_[d])) gloss.push_back(t);
    set_gloss(d, std::move(gloss));
  }
  for (kg::ConceptId ev : all_events) {
    std::vector<std::string> gloss = {"an", "event", "where", "people",
                                      "need"};
    for (kg::ConceptId head : event_needs_[ev]) {
      for (const auto& t : Tokens(head)) gloss.push_back(t);
    }
    set_gloss(ev, std::move(gloss));
  }
  // Attribute glosses enumerate their compatibility lists (capped) — the
  // encyclopedia knowledge that lets models reason about plausibility.
  constexpr int kGlossCap = 40;
  auto append_compatible = [&](std::vector<std::string>* gloss,
                               kg::ConceptId subject,
                               const std::vector<kg::ConceptId>& pool) {
    int added = 0;
    for (kg::ConceptId other : pool) {
      if (Compatible(subject, other)) {
        for (const auto& t : Tokens(other)) gloss->push_back(t);
        if (++added >= kGlossCap) break;
      }
    }
  };
  for (kg::ConceptId fn : functions_) {
    std::vector<std::string> gloss = {"describes", "things", "suitable",
                                      "for"};
    append_compatible(&gloss, fn, all_events);
    gloss.push_back("like");
    append_compatible(&gloss, fn, heads_);
    set_gloss(fn, std::move(gloss));
  }
  for (kg::ConceptId style : styles_) {
    std::vector<std::string> gloss = {"a", "style", "of"};
    append_compatible(&gloss, style, heads_);
    set_gloss(style, std::move(gloss));
  }
  for (kg::ConceptId season : seasons_) {
    std::vector<std::string> gloss = {"the", "season", "for"};
    append_compatible(&gloss, season, heads_);
    set_gloss(season, std::move(gloss));
  }
  for (kg::ConceptId aud : audiences_) {
    std::vector<std::string> gloss = {"people", "who", "like"};
    append_compatible(&gloss, aud, functions_);
    append_compatible(&gloss, aud, styles_);
    set_gloss(aud, std::move(gloss));
  }
  for (kg::ConceptId loc : locations_) {
    std::vector<std::string> gloss = {"a", "place", "for"};
    append_compatible(&gloss, loc, events_);
    set_gloss(loc, std::move(gloss));
  }
  (void)rng;
}

void World::GenerateItems(Rng* rng) {
  Grammar grammar(rng);
  item_profiles_.reserve(static_cast<size_t>(config_.num_items));
  for (int i = 0; i < config_.num_items; ++i) {
    ItemProfile profile;
    kg::ConceptId head = heads_[rng->Zipf(heads_.size(), 1.05)];
    profile.head = head;
    profile.category = head;
    const auto& kids = derived_of_[head];
    if (!kids.empty() && rng->Bernoulli(0.55)) {
      profile.category = kids[rng->Uniform(kids.size())];
    }
    profile.leaf_class = net_.Get(head).cls;

    auto maybe_attr = [&](const std::vector<kg::ConceptId>& pool, double p,
                          bool require_compat) -> std::optional<kg::ConceptId> {
      if (pool.empty() || !rng->Bernoulli(p)) return std::nullopt;
      for (int attempt = 0; attempt < 8; ++attempt) {
        kg::ConceptId c = Sample(pool, rng);
        if (!require_compat || Compatible(c, head)) return c;
      }
      return std::nullopt;
    };

    std::optional<kg::ConceptId> brand = maybe_attr(brands_, 0.7, false);
    std::optional<kg::ConceptId> color = maybe_attr(colors_, 0.6, true);
    std::optional<kg::ConceptId> fn = maybe_attr(functions_, 0.6, true);
    std::optional<kg::ConceptId> style = maybe_attr(styles_, 0.5, true);
    std::optional<kg::ConceptId> material = maybe_attr(materials_, 0.4, true);
    std::optional<kg::ConceptId> audience = maybe_attr(audiences_, 0.3, false);
    profile.season = maybe_attr(seasons_, 0.3, true);

    SentenceBuilder sb(Sentence::Source::kTitle);
    if (brand) sb.Concept(Tokens(*brand), "Brand");
    if (fn) sb.Concept(Tokens(*fn), "Function");
    if (color) sb.Concept(Tokens(*color), "Color");
    if (style) sb.Concept(Tokens(*style), "Style");
    if (material) sb.Concept(Tokens(*material), "Material");
    sb.Concept(Tokens(profile.category), "Category");
    if (audience) {
      sb.O("for");
      sb.Concept(Tokens(*audience), "Audience");
    }
    if (profile.season) {
      sb.O("for");
      sb.Concept(Tokens(*profile.season), "Time");
    }
    if (rng->Bernoulli(0.3)) sb.O(grammar.FillerNoun());
    Sentence title = sb.Build();

    auto res = net_.AddItem(title.tokens, profile.leaf_class);
    ALICOCO_CHECK(res.ok());
    profile.id = *res;
    ALICOCO_CHECK(net_.LinkItemToPrimitive(profile.id, profile.category).ok());
    for (auto attr : {brand, color, fn, style, material, audience,
                      profile.season}) {
      if (attr) {
        profile.attributes.push_back(*attr);
        (void)net_.LinkItemToPrimitive(profile.id, *attr);
      }
    }
    item_profiles_.push_back(profile);
    sentences_.push_back(std::move(title));
  }
}

void World::GenerateEcConcepts(Rng* rng) {
  std::vector<kg::ConceptId> all_events = events_;
  all_events.insert(all_events.end(), holidays_.begin(), holidays_.end());

  auto has_attr = [&](const ItemProfile& item, kg::ConceptId attr) {
    return std::find(item.attributes.begin(), item.attributes.end(), attr) !=
           item.attributes.end();
  };
  auto head_in = [&](const ItemProfile& item,
                     const std::vector<kg::ConceptId>& needs) {
    return std::find(needs.begin(), needs.end(), item.head) != needs.end();
  };

  // Single-primitive e-commerce concepts for events (so compound concepts
  // have isA parents, Table 2's "isA in e-commerce concepts").
  std::unordered_map<kg::ConceptId, kg::EcConceptId> event_ec;
  for (kg::ConceptId ev : all_events) {
    auto res = net_.GetOrAddEcConcept(Tokens(ev));
    ALICOCO_CHECK(res.ok());
    event_ec[ev] = *res;
    ALICOCO_CHECK(net_.LinkEcToPrimitive(*res, ev).ok());
    EcGold gold;
    gold.id = *res;
    gold.interpretation = {ev};
    gold.event_driven = true;
    const auto& needs = event_needs_[ev];
    for (const auto& item : item_profiles_) {
      if (head_in(item, needs)) {
        gold.items.push_back(item.id);
        (void)net_.LinkItemToEc(item.id, *res);
      }
    }
    ec_gold_.push_back(std::move(gold));
  }

  int made = 0;
  int guard = 0;
  while (made < config_.num_good_ec_concepts && ++guard < 50000) {
    int pattern = static_cast<int>(rng->Uniform(5));
    std::vector<std::string> tokens;
    std::vector<kg::ConceptId> interp;
    std::vector<std::pair<kg::ConceptId, std::string>> parts;  // concept, label
    bool event_driven = false;
    std::optional<kg::ConceptId> ev, constraint_a, constraint_b, category;

    switch (pattern) {
      case 0: {  // [Function] [Category] for [Event]
        kg::ConceptId e = Sample(all_events, rng);
        const auto& needs = event_needs_[e];
        if (needs.empty()) continue;
        kg::ConceptId head = needs[rng->Uniform(needs.size())];
        kg::ConceptId fn = Sample(functions_, rng);
        if (!Compatible(fn, e) || !Compatible(fn, head)) continue;
        parts = {{fn, "Function"}, {head, "Category"}};
        ev = e;
        constraint_a = fn;
        category = head;
        break;
      }
      case 1: {  // [Style] [Season] [Category]
        kg::ConceptId head = Sample(heads_, rng);
        kg::ConceptId style = Sample(styles_, rng);
        kg::ConceptId season = Sample(seasons_, rng);
        if (!Compatible(style, head) || !Compatible(season, head)) continue;
        parts = {{style, "Style"}, {season, "Time"}, {head, "Category"}};
        constraint_a = style;
        constraint_b = season;
        category = head;
        break;
      }
      case 2: {  // [Location] [Event]
        kg::ConceptId e = Sample(events_, rng);
        kg::ConceptId loc = Sample(locations_, rng);
        if (!Compatible(loc, e)) continue;
        parts = {{loc, "Location"}, {e, "Event"}};
        ev = e;
        event_driven = true;
        break;
      }
      case 3: {  // [Function] for [Audience]
        kg::ConceptId aud = Sample(audiences_, rng);
        kg::ConceptId fn = Sample(functions_, rng);
        if (!Compatible(fn, aud)) continue;
        parts = {{fn, "Function"}, {aud, "Audience"}};
        constraint_a = fn;
        constraint_b = aud;
        break;
      }
      case 4: {  // [Holiday] gifts for [Audience]
        if (holidays_.empty()) continue;
        kg::ConceptId hol = Sample(holidays_, rng);
        kg::ConceptId aud = Sample(audiences_, rng);
        parts = {{hol, "Time"}, {aud, "Audience"}};
        ev = hol;
        event_driven = true;
        break;
      }
    }

    // Assemble tokens with the pattern's function words.
    TaggedConcept tagged;
    auto push_part = [&](const std::pair<kg::ConceptId, std::string>& part) {
      const auto& toks = Tokens(part.first);
      for (size_t i = 0; i < toks.size(); ++i) {
        tokens.push_back(toks[i]);
        tagged.gold_iob.push_back((i == 0 ? "B-" : "I-") + part.second);
      }
      interp.push_back(part.first);
    };
    auto push_word = [&](const std::string& w) {
      tokens.push_back(w);
      tagged.gold_iob.push_back("O");
    };
    switch (pattern) {
      case 0:
        push_part(parts[0]);
        push_part(parts[1]);
        push_word("for");
        push_part({*ev, DomainLabel(*ev)});
        break;
      case 1:
        push_part(parts[0]);
        push_part(parts[1]);
        push_part(parts[2]);
        break;
      case 2:
        push_part(parts[0]);
        push_part(parts[1]);
        break;
      case 3:
        push_part(parts[0]);
        push_word("for");
        push_part(parts[1]);
        break;
      case 4:
        push_part(parts[0]);
        push_word("gifts");
        push_word("for");
        push_part(parts[1]);
        break;
    }

    if (net_.FindEcConcept(JoinStrings(tokens, " ")).has_value()) continue;
    auto res = net_.GetOrAddEcConcept(tokens);
    ALICOCO_CHECK(res.ok());
    kg::EcConceptId ec = *res;
    for (kg::ConceptId c : interp) {
      ALICOCO_CHECK(net_.LinkEcToPrimitive(ec, c).ok());
    }
    if (ev && event_ec.count(*ev)) {
      (void)net_.AddEcIsA(ec, event_ec[*ev]);
    }

    // Gold item associations.
    EcGold gold;
    gold.id = ec;
    gold.interpretation = interp;
    gold.event_driven = event_driven;
    const std::vector<kg::ConceptId>* needs =
        ev ? &event_needs_[*ev] : nullptr;
    for (const auto& item : item_profiles_) {
      bool ok;
      if (category) {
        // Category-anchored: item of that head satisfying attribute
        // constraints.
        ok = item.head == *category;
        if (ok && constraint_a) ok = has_attr(item, *constraint_a);
        if (ok && constraint_b) ok = has_attr(item, *constraint_b);
      } else if (event_driven && needs != nullptr) {
        // Event-anchored: semantic drift — relevance is via the event's
        // needed categories, not the concept's surface tokens.
        ok = head_in(item, *needs);
      } else {
        // Attribute-only concepts ([Function] for [Audience]).
        ok = constraint_a && has_attr(item, *constraint_a);
        if (ok && constraint_b) ok = ok && has_attr(item, *constraint_b);
      }
      if (ok) {
        gold.items.push_back(item.id);
        (void)net_.LinkItemToEc(item.id, ec);
      }
    }

    // Tagging supervision: allowed labels include every domain the surface
    // token exists in (fuzzy sets of Figure 7).
    tagged.tokens = tokens;
    tagged.allowed_iob.resize(tokens.size());
    for (size_t t = 0; t < tokens.size(); ++t) {
      tagged.allowed_iob[t].push_back(tagged.gold_iob[t]);
      if (tagged.gold_iob[t][0] == 'B') {
        for (kg::ConceptId sense : net_.FindPrimitive(tokens[t])) {
          std::string label = "B-" + DomainLabel(sense);
          if (std::find(tagged.allowed_iob[t].begin(),
                        tagged.allowed_iob[t].end(),
                        label) == tagged.allowed_iob[t].end()) {
            tagged.allowed_iob[t].push_back(label);
          }
        }
      }
    }
    tagged_concepts_.push_back(std::move(tagged));
    ec_gold_.push_back(std::move(gold));
    ++made;
  }
  ALICOCO_CHECK(made == config_.num_good_ec_concepts)
      << "could not generate enough good e-commerce concepts";
}

void World::GenerateCandidates(Rng* rng) {
  std::vector<kg::ConceptId> all_events = events_;
  all_events.insert(all_events.end(), holidays_.begin(), holidays_.end());

  // Good candidates: the surfaces of gold compound e-commerce concepts.
  std::vector<const TaggedConcept*> goods;
  for (const auto& t : tagged_concepts_) goods.push_back(&t);
  size_t num_good = std::min(goods.size(),
                             static_cast<size_t>(config_.num_good_ec_concepts));
  for (size_t i = 0; i < num_good; ++i) {
    ConceptCandidate c;
    c.tokens = goods[i]->tokens;
    c.good = true;
    concept_candidates_.push_back(std::move(c));
  }

  int made = 0;
  int guard = 0;
  // Plausibility is the hard criterion (Section 5.2.2), so implausible
  // candidates dominate the negative mix; fragments are what phrase mining
  // produces by crossing concept boundaries.
  const std::vector<double> kind_weights = {0.35, 0.20, 0.10, 0.10, 0.25};
  while (made < config_.num_bad_ec_concepts && ++guard < 100000) {
    ConceptCandidate c;
    c.good = false;
    int kind = static_cast<int>(rng->Categorical(kind_weights));
    switch (kind) {
      case 0: {  // Implausible: an incompatible pair in a valid pattern.
        int sub = static_cast<int>(rng->Uniform(3));
        if (sub == 0) {
          kg::ConceptId e = Sample(all_events, rng);
          kg::ConceptId fn = Sample(functions_, rng);
          const auto& needs = event_needs_[e];
          if (needs.empty()) continue;
          kg::ConceptId head = needs[rng->Uniform(needs.size())];
          if (Compatible(fn, e)) continue;  // must violate
          c.tokens = Tokens(fn);
          for (const auto& t : Tokens(head)) c.tokens.push_back(t);
          c.tokens.push_back("for");
          for (const auto& t : Tokens(e)) c.tokens.push_back(t);
        } else if (sub == 1) {
          kg::ConceptId style = Sample(styles_, rng);
          kg::ConceptId head = Sample(heads_, rng);
          if (Compatible(style, head)) continue;
          c.tokens = Tokens(style);
          for (const auto& t : Tokens(head)) c.tokens.push_back(t);
        } else {
          // "waterproofing for middle school students": function unsuited
          // to the audience.
          kg::ConceptId fn = Sample(functions_, rng);
          kg::ConceptId aud = Sample(audiences_, rng);
          if (Compatible(fn, aud)) continue;
          c.tokens = Tokens(fn);
          c.tokens.push_back("for");
          for (const auto& t : Tokens(aud)) c.tokens.push_back(t);
        }
        c.flaw = ConceptCandidate::Flaw::kImplausible;
        break;
      }
      case 1: {  // Incoherent: scramble a good concept.
        const TaggedConcept* src = goods[rng->Uniform(goods.size())];
        if (src->tokens.size() < 3) continue;
        c.tokens = src->tokens;
        Rng fork = rng->Fork();
        fork.Shuffle(&c.tokens);
        if (c.tokens == src->tokens) continue;
        c.flaw = ConceptCandidate::Flaw::kIncoherent;
        break;
      }
      case 2: {  // Duplicate class: two styles on one category.
        kg::ConceptId s1 = Sample(styles_, rng);
        kg::ConceptId s2 = Sample(styles_, rng);
        if (s1 == s2) continue;
        kg::ConceptId head = Sample(heads_, rng);
        c.tokens = Tokens(s1);
        for (const auto& t : Tokens(s2)) c.tokens.push_back(t);
        for (const auto& t : Tokens(head)) c.tokens.push_back(t);
        c.flaw = ConceptCandidate::Flaw::kDuplicateClass;
        break;
      }
      case 3: {  // Non-e-commerce: nature word + gerund / color + nature.
        if (natures_.empty()) continue;
        kg::ConceptId nat = Sample(natures_, rng);
        if (rng->Bernoulli(0.5)) {
          kg::ConceptId col = Sample(colors_, rng);
          c.tokens = Tokens(col);
          for (const auto& t : Tokens(nat)) c.tokens.push_back(t);
        } else {
          kg::ConceptId e = Sample(events_, rng);
          c.tokens = Tokens(nat);
          for (const auto& t : Tokens(e)) c.tokens.push_back(t);
        }
        c.flaw = ConceptCandidate::Flaw::kNonEcommerce;
        break;
      }
      case 4: {  // Fragment: two compatible attribute+category pieces
                 // concatenated — clear, plausible pieces, no clarity.
        kg::ConceptId h1 = Sample(heads_, rng);
        kg::ConceptId h2 = Sample(heads_, rng);
        if (h1 == h2) continue;
        auto pick_attr = [&](kg::ConceptId head) -> kg::ConceptId {
          for (int attempt = 0; attempt < 16; ++attempt) {
            const auto& pool = rng->Bernoulli(0.5) ? functions_ : styles_;
            kg::ConceptId a = Sample(pool, rng);
            if (Compatible(a, head)) return a;
          }
          return Sample(colors_, rng);
        };
        kg::ConceptId a1 = pick_attr(h1);
        c.tokens = Tokens(a1);
        for (const auto& t : Tokens(h1)) c.tokens.push_back(t);
        if (rng->Bernoulli(0.5)) {
          kg::ConceptId a2 = pick_attr(h2);
          for (const auto& t : Tokens(a2)) c.tokens.push_back(t);
        }
        for (const auto& t : Tokens(h2)) c.tokens.push_back(t);
        c.flaw = ConceptCandidate::Flaw::kFragment;
        break;
      }
    }
    concept_candidates_.push_back(std::move(c));
    ++made;
  }
}

void World::GenerateCorpus(Rng* rng) {
  Grammar grammar(rng);
  std::vector<kg::ConceptId> all_events = events_;
  all_events.insert(all_events.end(), holidays_.begin(), holidays_.end());

  // Titles beyond the per-item ones: resample items.
  int extra_titles = config_.titles - config_.num_items;
  for (int i = 0; i < extra_titles; ++i) {
    const Sentence& src =
        sentences_[rng->Uniform(static_cast<size_t>(config_.num_items))];
    sentences_.push_back(src);
  }

  // Reviews: carrier sentences describing items.
  for (int i = 0; i < config_.reviews; ++i) {
    const ItemProfile& item =
        item_profiles_[rng->Uniform(item_profiles_.size())];
    SentenceBuilder sb(Sentence::Source::kReview);
    sb.O(grammar.Determiner());
    sb.Concept(Tokens(item.category), "Category");
    sb.O(grammar.Copula());
    sb.O(grammar.Intensifier());
    bool described = false;
    for (kg::ConceptId attr : item.attributes) {
      std::string domain = DomainLabel(attr);
      if (domain == "Function" || domain == "Style" || domain == "Color") {
        if (described) sb.O(grammar.Conjunction());
        sb.Concept(Tokens(attr), domain);
        described = true;
        if (rng->Bernoulli(0.5)) break;
      }
    }
    if (!described) sb.Concept(Tokens(Sample(functions_, rng)), "Function");
    sentences_.push_back(sb.Build());
  }

  // Guides: Hearst patterns + event-needs sentences.
  for (int i = 0; i < config_.guides; ++i) {
    SentenceBuilder sb(Sentence::Source::kGuide);
    int kind = static_cast<int>(rng->Uniform(4));
    if (kind == 3 && !groups_.empty()) {
      // "<group> such as <head> and <head>" — the only textual evidence for
      // token-disjoint hypernyms.
      kg::ConceptId group = Sample(groups_, rng);
      kg::ClassId mid = net_.Get(group).cls;
      std::vector<kg::ConceptId> members;
      for (kg::ConceptId head : heads_) {
        if (net_.taxonomy().Get(net_.Get(head).cls).parent == mid) {
          members.push_back(head);
        }
      }
      if (members.size() < 2) {
        --i;
        continue;
      }
      sb.Concept(Tokens(group), "Category");
      sb.O("such");
      sb.O("as");
      sb.Concept(Tokens(members[rng->Uniform(members.size())]), "Category");
      sb.O("and");
      sb.Concept(Tokens(members[rng->Uniform(members.size())]), "Category");
      sentences_.push_back(sb.Build());
      continue;
    }
    if (kind == 3) kind = 0;
    if (kind == 0) {
      // "<head> such as <derived> and <derived>"
      kg::ConceptId head = Sample(heads_, rng);
      const auto& kids = derived_of_[head];
      if (kids.size() < 2) {
        --i;
        continue;
      }
      kg::ConceptId a = kids[rng->Uniform(kids.size())];
      kg::ConceptId b = kids[rng->Uniform(kids.size())];
      sb.Concept(Tokens(head), "Category");
      sb.O("such");
      sb.O("as");
      sb.Concept(Tokens(a), "Category");
      sb.O("and");
      sb.Concept(Tokens(b), "Category");
    } else if (kind == 1) {
      // "for <event> you need <head> and <head>". Only the first half of an
      // event's needs ever appears in text: the rest is the corpus gap that
      // only encyclopedia knowledge can bridge (the paper's moon-cake case).
      kg::ConceptId ev = Sample(all_events, rng);
      const auto& needs = event_needs_[ev];
      if (needs.size() < 2) {
        --i;
        continue;
      }
      size_t visible = (needs.size() + 1) / 2;
      sb.O("for");
      sb.Concept(Tokens(ev), DomainLabel(ev));
      sb.O("you");
      sb.O("need");
      sb.Concept(Tokens(needs[rng->Uniform(visible)]), "Category");
      sb.O("and");
      sb.Concept(Tokens(needs[rng->Uniform(visible)]), "Category");
    } else {
      // "every <event> needs <derived-or-head> in <location>"
      kg::ConceptId ev = Sample(events_, rng);
      const auto& needs = event_needs_[ev];
      if (needs.empty()) {
        --i;
        continue;
      }
      size_t visible = (needs.size() + 1) / 2;
      kg::ConceptId head = needs[rng->Uniform(visible)];
      const auto& kids = derived_of_[head];
      kg::ConceptId cat =
          (!kids.empty() && rng->Bernoulli(0.6))
              ? kids[rng->Uniform(kids.size())]
              : head;
      sb.O("every");
      sb.Concept(Tokens(ev), DomainLabel(ev));
      sb.O("needs");
      sb.Concept(Tokens(cat), "Category");
      sb.O("in");
      sb.Concept(Tokens(Sample(locations_, rng)), "Location");
    }
    sentences_.push_back(sb.Build());
  }

  // Queries: short and noisy.
  WordMinter noise_minter(rng->NextUint64() ^ 0x51F1);
  for (int i = 0; i < config_.queries; ++i) {
    SentenceBuilder sb(Sentence::Source::kQuery);
    int kind = static_cast<int>(rng->Uniform(4));
    if (kind == 0) {
      kg::ConceptId head = Sample(heads_, rng);
      const auto& kids = derived_of_[head];
      kg::ConceptId cat = (!kids.empty() && rng->Bernoulli(0.5))
                              ? kids[rng->Uniform(kids.size())]
                              : head;
      sb.Concept(Tokens(cat), "Category");
    } else if (kind == 1) {
      sb.Concept(Tokens(Sample(functions_, rng)), "Function");
      sb.Concept(Tokens(Sample(heads_, rng)), "Category");
    } else if (kind == 2) {
      sb.Concept(Tokens(Sample(brands_, rng)), "Brand");
      sb.Concept(Tokens(Sample(heads_, rng)), "Category");
    } else {
      kg::ConceptId ev = Sample(all_events, rng);
      sb.Concept(Tokens(ev), DomainLabel(ev));
    }
    if (rng->Bernoulli(0.1)) sb.O(noise_minter.MintNoun());
    sentences_.push_back(sb.Build());
  }
}

void World::GenerateUsers(Rng* rng) {
  // Only needs with enough items are usable as latent interests.
  std::vector<const EcGold*> rich;
  for (const auto& g : ec_gold_) {
    if (g.items.size() >= 3) rich.push_back(&g);
  }
  if (rich.empty()) return;
  for (int u = 0; u < config_.num_users; ++u) {
    UserHistory history;
    size_t num_needs = 1 + rng->Uniform(3);
    for (size_t k = 0; k < num_needs; ++k) {
      const EcGold* need = rich[rng->Uniform(rich.size())];
      if (std::find(history.needs.begin(), history.needs.end(), need->id) !=
          history.needs.end()) {
        continue;
      }
      history.needs.push_back(need->id);
      size_t clicks = 2 + rng->Uniform(4);
      for (size_t c = 0; c < clicks; ++c) {
        history.clicked.push_back(
            need->items[rng->Uniform(need->items.size())]);
      }
    }
    // Popularity noise.
    for (int c = 0; c < 2; ++c) {
      history.clicked.push_back(
          item_profiles_[rng->Zipf(item_profiles_.size(), 1.1)].id);
    }
    user_histories_.push_back(std::move(history));
  }
}

void World::GenerateNeedsQueries(Rng* rng) {
  WordMinter novel(rng->NextUint64() ^ 0xBEEF);
  std::vector<kg::ConceptId> all_events = events_;
  all_events.insert(all_events.end(), holidays_.begin(), holidays_.end());
  for (int i = 0; i < config_.num_needs_queries; ++i) {
    std::vector<std::string> q;
    int kind = static_cast<int>(rng->Uniform(4));
    auto push_concept = [&](kg::ConceptId id) {
      for (const auto& t : Tokens(id)) q.push_back(t);
    };
    switch (kind) {
      case 0:
        push_concept(Sample(all_events, rng));
        push_concept(Sample(heads_, rng));
        break;
      case 1:
        push_concept(Sample(functions_, rng));
        push_concept(Sample(heads_, rng));
        break;
      case 2:
        push_concept(Sample(locations_, rng));
        push_concept(Sample(all_events, rng));
        break;
      case 3:
        push_concept(Sample(audiences_, rng));
        push_concept(Sample(styles_, rng));
        break;
    }
    // A slice of genuinely new trend words no ontology can know yet.
    if (rng->Bernoulli(0.45)) q.push_back(novel.MintNoun());
    needs_queries_.push_back(std::move(q));
  }
}

void World::BuildSeedDictionary(Rng* rng) {
  // Hold out a fraction of derived Category concepts: they occur in the
  // corpus but are absent from the bootstrap dictionary, so the mining loop
  // has something to discover.
  std::vector<kg::ConceptId> shuffled = derived_;
  rng->Shuffle(&shuffled);
  size_t holdout = static_cast<size_t>(config_.holdout_category_fraction *
                                       static_cast<double>(shuffled.size()));
  for (size_t i = 0; i < holdout; ++i) {
    const std::string& surface = net_.Get(shuffled[i]).surface;
    holdout_surfaces_.push_back(surface);
    holdout_set_.insert(surface);
  }
  for (const auto& p : net_.primitives()) {
    if (holdout_set_.count(p.surface)) continue;
    seed_dictionary_.emplace_back(p.surface, DomainLabel(p.id));
  }
}

bool World::GoldCompatible(kg::ConceptId a, kg::ConceptId b) const {
  auto head_or_self = [&](kg::ConceptId c) {
    auto it = head_of_.find(c);
    return it == head_of_.end() ? c : it->second;
  };
  kg::ConceptId ha = head_or_self(a);
  kg::ConceptId hb = head_or_self(b);
  return Compatible(a, b) || Compatible(ha, b) || Compatible(a, hb) ||
         Compatible(ha, hb);
}

bool World::IsGoodConcept(const std::vector<std::string>& tokens) const {
  if (tokens.empty() || tokens.size() > 6) return false;

  // Segment into pieces: literals ("for", "gifts") or known surfaces
  // (longest match, up to 2 tokens since world surfaces have <= 2 tokens).
  struct Piece {
    bool literal = false;
    std::string word;
    std::vector<kg::ConceptId> senses;
  };
  std::vector<Piece> pieces;
  size_t i = 0;
  while (i < tokens.size()) {
    if (tokens[i] == "for" || tokens[i] == "gifts") {
      Piece p;
      p.literal = true;
      p.word = tokens[i];
      pieces.push_back(std::move(p));
      ++i;
      continue;
    }
    // Longest match first.
    std::vector<kg::ConceptId> senses;
    size_t len = 0;
    if (i + 1 < tokens.size()) {
      senses = net_.FindPrimitive(tokens[i] + " " + tokens[i + 1]);
      if (!senses.empty()) len = 2;
    }
    if (senses.empty()) {
      senses = net_.FindPrimitive(tokens[i]);
      len = 1;
    }
    if (senses.empty()) return false;  // unknown word: not a concept
    Piece p;
    p.senses = std::move(senses);
    pieces.push_back(std::move(p));
    i += len;
  }

  // Enumerate sense assignments (small products only).
  size_t combos = 1;
  for (const auto& p : pieces) {
    if (!p.literal) combos *= p.senses.size();
    if (combos > 64) return false;
  }

  auto head_or_self = [&](kg::ConceptId c) {
    auto it = head_of_.find(c);
    return it == head_of_.end() ? c : it->second;
  };
  auto needs_contains = [&](kg::ConceptId ev, kg::ConceptId cat) {
    auto it = event_needs_.find(ev);
    if (it == event_needs_.end()) return false;
    kg::ConceptId head = head_or_self(cat);
    return std::find(it->second.begin(), it->second.end(), head) !=
           it->second.end();
  };

  for (size_t combo = 0; combo < combos; ++combo) {
    // Decode this combination into a signature of (domain, concept).
    std::vector<std::pair<std::string, kg::ConceptId>> sig;
    std::string shape;
    size_t rem = combo;
    bool valid = true;
    for (const auto& p : pieces) {
      if (p.literal) {
        shape += p.word + " ";
        continue;
      }
      size_t pick = rem % p.senses.size();
      rem /= p.senses.size();
      kg::ConceptId c = p.senses[pick];
      std::string domain = DomainLabel(c);
      sig.emplace_back(domain, c);
      shape += domain + " ";
    }
    if (!valid) continue;

    auto compat = [&](size_t a, size_t b) {
      return Compatible(sig[a].second, sig[b].second) ||
             Compatible(head_or_self(sig[a].second),
                        head_or_self(sig[b].second)) ||
             Compatible(sig[a].second, head_or_self(sig[b].second)) ||
             Compatible(head_or_self(sig[a].second), sig[b].second);
    };

    if (shape == "Event " || shape == "Time ") {
      // A bare event / holiday is itself a shopping scenario.
      if (event_needs_.count(sig[0].second)) return true;
    } else if (shape == "Function Category for Event " ||
               shape == "Function Category for Time ") {
      if (compat(0, 2) && compat(0, 1) &&
          needs_contains(sig[2].second, sig[1].second)) {
        return true;
      }
    } else if (shape == "Style Time Category ") {
      if (compat(0, 2) && compat(1, 2)) return true;
    } else if (shape == "Location Event ") {
      if (compat(0, 1)) return true;
    } else if (shape == "Function for Audience " ||
               shape == "Function Audience ") {
      if (compat(0, 1)) return true;
    } else if (shape == "Time gifts for Audience ") {
      if (event_needs_.count(sig[0].second)) return true;
    } else if (shape == "Function Category " || shape == "Style Category " ||
               shape == "Color Category " || shape == "Material Category ") {
      // Attribute + category pairs ("warm hat") are plausible shopping
      // concepts when the attribute suits the category.
      if (compat(0, 1)) return true;
    } else if (shape == "Brand Category " || shape == "Category ") {
      // Brand-qualified or bare categories always carry shopping meaning.
      return true;
    }
  }
  return false;
}

std::vector<std::vector<std::string>> World::SentencesBySource(
    Sentence::Source source) const {
  std::vector<std::vector<std::string>> out;
  for (const auto& s : sentences_) {
    if (s.source == source) out.push_back(s.tokens);
  }
  return out;
}

}  // namespace alicoco::datagen
