#include "pipeline/builder.h"

#include "mining/relation_inference.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "concepts/candidate_generation.h"
#include "concepts/criteria.h"
#include "datagen/grammar.h"
#include "datagen/world_spec.h"
#include "hypernym/patterns.h"
#include "kg/validator.h"
#include "matching/dataset.h"
#include "mining/concept_miner.h"
#include "mining/distant_supervision.h"
#include "obs/pool_metrics.h"
#include "obs/prof/bench_profile.h"
#include "text/tokenizer.h"

namespace alicoco::pipeline {
namespace {

// Surfaces of gold primitive concepts keyed by "surface\tdomain".
std::unordered_set<std::string> GoldConceptKeys(const datagen::World& world) {
  std::unordered_set<std::string> keys;
  for (const auto& p : world.net().primitives()) {
    keys.insert(p.surface + "\t" + world.DomainLabel(p.id));
  }
  return keys;
}

}  // namespace

std::string BuildReport::Summary() const {
  std::string out;
  out += StringPrintf("seed concepts:            %zu\n", seed_concepts);
  for (size_t e = 0; e < mining_epochs.size(); ++e) {
    out += StringPrintf(
        "mining epoch %zu:           %zu candidates, %zu accepted "
        "(precision %.2f)\n",
        e + 1, mining_epochs[e].candidates, mining_epochs[e].accepted,
        mining_epochs[e].precision);
  }
  out += StringPrintf("mined concepts:           %zu\n", mined_concepts);
  out += StringPrintf("isA from patterns:        %zu\n", isa_from_patterns);
  out += StringPrintf("isA from projection:      %zu\n", isa_from_projection);
  out += StringPrintf("ec candidates:            %zu\n", ec_candidates);
  out += StringPrintf("ec accepted:              %zu (audit %.2f, %s)\n",
                      ec_accepted, audit_accuracy,
                      audit_passed ? "passed" : "FAILED");
  out += StringPrintf("interpretation links:     %zu\n",
                      interpretation_links);
  out += StringPrintf("items added:              %zu\n", items_added);
  out += StringPrintf("item-primitive links:     %zu\n",
                      item_primitive_links);
  out += StringPrintf("item-ec links:            %zu\n", item_ec_links);
  out += StringPrintf("inferred typed relations: %zu\n", inferred_relations);
  return out;
}

AliCoCoBuilder::AliCoCoBuilder(const datagen::World* world,
                               const datagen::WorldResources* resources,
                               const PipelineConfig& config)
    : world_(world), resources_(resources), config_(config) {
  ALICOCO_CHECK(world != nullptr && resources != nullptr);
}

Result<kg::ConceptNet> AliCoCoBuilder::Build(BuildReport* report) {
  ALICOCO_CHECK(report != nullptr);
  Rng rng(config_.seed);
  kg::ConceptNet net;

  // Stage instrumentation: one root span for the whole build, one child
  // span per stage (sequential, so a single re-emplaced slot suffices),
  // and counters/gauges published under `pipeline.<stage>.<name>`. With
  // null tracer/metrics every helper is a no-op.
  obs::Tracer* tracer = config_.tracer;
  obs::Registry* metrics = config_.metrics;
  obs::ScopedSpan build_span(tracer, "pipeline.build");
  std::optional<obs::ScopedSpan> stage_span;
  auto begin_stage = [&](const char* stage) {
    stage_span.emplace(tracer, std::string("pipeline.") + stage);
    if (config_.stage_profiler != nullptr) {
      config_.stage_profiler->BeginStage(stage);
    }
  };
  auto stage_count = [&](const char* stage, const char* name, size_t value) {
    if (metrics != nullptr) {
      metrics->GetCounter(std::string("pipeline.") + stage + "." + name)
          ->Add(value);
    }
    if (stage_span.has_value()) {
      stage_span->AddAttribute(name, static_cast<uint64_t>(value));
    }
  };
  auto stage_gauge = [&](const char* stage, const char* name, double value) {
    if (metrics != nullptr) {
      metrics->GetGauge(std::string("pipeline.") + stage + "." + name)
          ->Set(value);
    }
    if (stage_span.has_value()) stage_span->AddAttribute(name, value);
  };

  // One worker pool serves the whole build: data-parallel minibatches in
  // the mining and ec_concepts trainers, and the item-association scorer
  // fan-out below. Declared after the metrics adapter so the pool (and its
  // workers) wind down before the observer they report to.
  std::optional<obs::ThreadPoolMetrics> pool_metrics;
  if (metrics != nullptr) {
    pool_metrics.emplace(metrics, "pipeline.worker_pool");
  }
  ThreadPool worker_pool(std::max(1u, std::thread::hardware_concurrency()));
  if (pool_metrics.has_value()) worker_pool.SetObserver(&*pool_metrics);

  // ---- Stage 1: taxonomy + schema (expert-defined) ----
  begin_stage("taxonomy_schema");
  datagen::TaxonomyHandles handles = datagen::BuildTaxonomy(&net.taxonomy());
  ALICOCO_RETURN_NOT_OK(net.AddRelation("suitable_when", handles.category,
                                        handles.time_season));
  ALICOCO_RETURN_NOT_OK(
      net.AddRelation("used_when", handles.category, handles.event));
  stage_count("taxonomy_schema", "classes", net.taxonomy().size());
  stage_count("taxonomy_schema", "relations_declared", 2);

  auto domain_class = [&](const std::string& domain) -> kg::ClassId {
    auto res = net.taxonomy().Find(domain);
    ALICOCO_CHECK(res.ok()) << "unknown domain " << domain;
    return *res;
  };

  // ---- Stage 2: seed primitive concepts (ontology matching) ----
  // The external knowledge base also supplies glosses where it has entries.
  begin_stage("seed_concepts");
  for (const auto& [surface, domain] : world_->seed_dictionary()) {
    ALICOCO_ASSIGN_OR_RETURN(
        kg::ConceptId id,
        net.GetOrAddPrimitiveConcept(surface, domain_class(domain)));
    for (kg::ConceptId gold : world_->net().FindPrimitive(surface)) {
      const auto& gloss = world_->net().Get(gold).gloss;
      if (!gloss.empty()) {
        ALICOCO_RETURN_NOT_OK(net.SetGloss(id, gloss));
        break;
      }
    }
  }
  report->seed_concepts = net.num_primitive_concepts();
  stage_count("seed_concepts", "seed_concepts", report->seed_concepts);

  // ---- Stage 3: mining loop ----
  begin_stage("mining");
  mining::DistantSupervisor supervisor(world_->seed_dictionary(),
                                       datagen::CarrierVocabulary());
  std::vector<std::vector<std::string>> raw_corpus;
  raw_corpus.reserve(world_->sentences().size());
  for (const auto& s : world_->sentences()) raw_corpus.push_back(s.tokens);
  auto labeled = supervisor.Label(raw_corpus);
  if (labeled.empty()) {
    return Status::FailedPrecondition("distant supervision produced no data");
  }
  mining::SequenceLabelerConfig labeler_cfg = config_.labeler;
  labeler_cfg.pool = &worker_pool;
  mining::SequenceLabeler labeler(labeler_cfg);
  labeler.Train(labeled);

  auto gold_keys = GoldConceptKeys(*world_);
  mining::ConceptMiner miner(
      &supervisor, &labeler,
      [&](const std::string& surface, const std::string& domain) {
        return gold_keys.count(surface + "\t" + domain) > 0;
      });
  for (int epoch = 0; epoch < config_.mining_epochs; ++epoch) {
    obs::ScopedSpan epoch_span(tracer, "pipeline.mining.epoch");
    epoch_span.AddAttribute("epoch", static_cast<uint64_t>(epoch + 1));
    report->mining_epochs.push_back(
        miner.RunEpoch(raw_corpus, config_.mining_min_support));
    epoch_span.AddAttribute(
        "accepted",
        static_cast<uint64_t>(report->mining_epochs.back().accepted));
  }
  for (const auto& mined : miner.accepted()) {
    ALICOCO_ASSIGN_OR_RETURN(
        kg::ConceptId id,
        net.GetOrAddPrimitiveConcept(mined.surface,
                                     domain_class(mined.domain)));
    (void)id;
    ++report->mined_concepts;
  }
  {
    size_t mining_candidates = 0, mining_accepted = 0;
    for (const auto& epoch : report->mining_epochs) {
      mining_candidates += epoch.candidates;
      mining_accepted += epoch.accepted;
    }
    stage_count("mining", "candidates", mining_candidates);
    stage_count("mining", "accepted", mining_accepted);
    stage_count("mining", "mined_concepts", report->mined_concepts);
  }

  // ---- Stage 4: hypernym discovery inside Category ----
  begin_stage("hypernym_discovery");
  std::vector<std::string> category_vocab;
  category_vocab.reserve(net.num_primitive_concepts());  // upper bound
  for (kg::ClassId cls :
       net.taxonomy().Subtree(domain_class("Category"))) {
    for (kg::ConceptId c : net.PrimitivesOfClass(cls)) {
      category_vocab.push_back(net.Get(c).surface);
    }
  }
  hypernym::PatternHypernymMiner pattern_miner(category_vocab);
  auto add_isa = [&](const std::string& hypo, const std::string& hyper,
                     size_t* counter) {
    auto hypo_ids = net.FindPrimitive(hypo);
    auto hyper_ids = net.FindPrimitive(hyper);
    if (hypo_ids.empty() || hyper_ids.empty()) return;
    if (net.AddIsA(hypo_ids[0], hyper_ids[0]).ok()) ++(*counter);
  };
  std::unordered_set<std::string> has_hypernym;
  for (const auto& pair : pattern_miner.MineSuffix()) {
    add_isa(pair.hypo, pair.hyper, &report->isa_from_patterns);
    has_hypernym.insert(pair.hypo);
  }
  for (const auto& pair : pattern_miner.MineHearst(raw_corpus)) {
    if (pair.support < 2) continue;
    add_isa(pair.hypo, pair.hyper, &report->isa_from_patterns);
    has_hypernym.insert(pair.hypo);
  }

  // Projection learning, distantly supervised by the pattern pairs, then
  // applied to concepts the patterns could not attach.
  std::vector<hypernym::LabeledPair> proj_train;
  {
    Rng neg_rng(config_.seed ^ 0x517);
    auto suffix_pairs = pattern_miner.MineSuffix();
    proj_train.reserve(suffix_pairs.size() * 9);  // 1 positive + 8 negatives
    for (const auto& pair : suffix_pairs) {
      proj_train.push_back(hypernym::LabeledPair{pair.hypo, pair.hyper, 1});
      for (int n = 0; n < 8; ++n) {
        proj_train.push_back(hypernym::LabeledPair{
            pair.hypo, category_vocab[neg_rng.Uniform(category_vocab.size())],
            0});
      }
    }
  }
  if (!proj_train.empty()) {
    hypernym::ProjectionModel projection(&resources_->embeddings(),
                                         &resources_->vocab(),
                                         config_.projection);
    projection.Train(proj_train);
    // Candidate hypernyms: single-token category surfaces.
    std::vector<std::string> candidates;
    candidates.reserve(category_vocab.size());
    for (const auto& surface : category_vocab) {
      if (text::Tokenize(surface).size() == 1) candidates.push_back(surface);
    }
    std::string best_hyper;  // reused across surfaces
    for (const auto& surface : category_vocab) {
      if (has_hypernym.count(surface)) continue;
      double best = 0;
      best_hyper.clear();
      for (const auto& cand : candidates) {
        if (cand == surface) continue;
        double s = projection.Score(surface, cand);
        if (s > best) {
          best = s;
          best_hyper = cand;
        }
      }
      if (best >= config_.hypernym_accept_threshold && !best_hyper.empty()) {
        add_isa(surface, best_hyper, &report->isa_from_projection);
      }
    }
  }

  stage_count("hypernym_discovery", "isa_from_patterns",
              report->isa_from_patterns);
  stage_count("hypernym_discovery", "isa_from_projection",
              report->isa_from_projection);

  // ---- Stage 5: e-commerce concept generation + classification ----
  begin_stage("ec_concepts");
  concepts::PhraseMiner phrase_miner(/*min_count=*/3, /*max_len=*/4);
  std::vector<std::vector<std::string>> query_guides;
  query_guides.reserve(world_->sentences().size());  // upper bound
  for (const auto& s : world_->sentences()) {
    if (s.source == datagen::Sentence::Source::kQuery ||
        s.source == datagen::Sentence::Source::kGuide) {
      query_guides.push_back(s.tokens);
    }
  }
  std::vector<std::vector<std::string>> candidates;
  auto mined_phrases =
      phrase_miner.Mine(query_guides, datagen::CarrierVocabulary());
  // Mined phrases now, pattern-combined concepts (5 specs x 200) later.
  candidates.reserve(mined_phrases.size() + 5 * 200);
  for (const auto& phrase : mined_phrases) {
    candidates.push_back(phrase.tokens);
  }
  concepts::PatternCombiner combiner(&net);
  for (const char* spec :
       {"Function Category for:lit Event", "Style Season Category",
        "Location Event", "Function for:lit Audience",
        "Holiday gifts:lit for:lit Audience"}) {
    for (auto& tokens : combiner.Generate(
             concepts::ConceptPattern::Parse(spec), 200, &rng)) {
      candidates.push_back(std::move(tokens));
    }
  }
  report->ec_candidates = candidates.size();

  // Train the classifier on the annotated candidate set (the paper's
  // months-long labeling campaign).
  concepts::ClassifierResources cls_res;
  cls_res.embeddings = &resources_->embeddings();
  cls_res.corpus_vocab = &resources_->vocab();
  cls_res.lm = &resources_->lm();
  cls_res.gloss_encoder = &resources_->gloss_encoder();
  cls_res.gloss_lookup = [this](const std::string& w) {
    return resources_->GlossOf(w);
  };
  std::vector<concepts::LabeledConcept> annotated;
  // Seed labels now, plus up to audit_sample audited labels per iteration
  // of the quality-control loop below.
  annotated.reserve(world_->concept_candidates().size() +
                    5 * config_.audit_sample);
  for (const auto& c : world_->concept_candidates()) {
    annotated.push_back(concepts::LabeledConcept{c.tokens, c.good ? 1 : 0});
  }

  // Carrier words other than the pattern literals disqualify a candidate
  // (coherence criterion: "for kids keep warm" style fragments).
  std::unordered_set<std::string> carrier(
      datagen::CarrierVocabulary().begin(),
      datagen::CarrierVocabulary().end());
  carrier.erase("for");
  carrier.erase("gifts");
  std::vector<const std::vector<std::string>*> pool;
  pool.reserve(candidates.size());
  for (const auto& tokens : candidates) {
    if (!concepts::PassesBasicCriteria(tokens)) continue;
    bool has_carrier = false;
    for (const auto& t : tokens) has_carrier |= carrier.count(t) > 0;
    if (has_carrier) continue;
    pool.push_back(&tokens);
  }

  // Quality-control loop (Section 5.2.2): audit a random sample of each
  // candidate batch; audited labels join the training data and the model
  // retrains ("the annotated samples will be added to training data to
  // iteratively improve the model"). The threshold tightens as a last
  // resort; nothing enters the net until a batch passes.
  std::vector<const std::vector<std::string>*> accepted;
  std::vector<const std::vector<std::string>*> audited_good;
  audited_good.reserve(5 * config_.audit_sample);  // per-iteration cap
  double threshold = config_.concept_accept_threshold;
  std::unordered_set<const std::vector<std::string>*> audited;
  // The candidate batch is rebuilt every quality-control iteration; keep
  // the buffer (and its capacity) across iterations.
  std::vector<const std::vector<std::string>*> batch;
  batch.reserve(pool.size());
  for (int iteration = 0; iteration < 5 && !report->audit_passed;
       ++iteration) {
    concepts::ConceptClassifierConfig cls_cfg = config_.classifier;
    cls_cfg.seed = config_.classifier.seed + static_cast<uint64_t>(iteration);
    cls_cfg.pool = &worker_pool;
    concepts::ConceptClassifier classifier(cls_cfg, cls_res);
    classifier.Train(annotated);

    batch.clear();
    for (const auto* tokens : pool) {
      if (audited.count(tokens)) continue;
      if (classifier.Score(*tokens) >= threshold) batch.push_back(tokens);
    }
    if (batch.empty()) break;
    Rng shuffle_rng(config_.seed + static_cast<uint64_t>(iteration));
    shuffle_rng.Shuffle(&batch);
    size_t audit_n = std::min(config_.audit_sample, batch.size());
    size_t audit_ok = 0;
    for (size_t i = 0; i < audit_n; ++i) {
      bool good = world_->IsGoodConcept(*batch[i]);
      audit_ok += good;
      // Human-labeled samples enter the training set either way; the good
      // ones are concepts regardless of the batch's fate.
      annotated.push_back(concepts::LabeledConcept{*batch[i], good ? 1 : 0});
      audited.insert(batch[i]);
      if (good) audited_good.push_back(batch[i]);
    }
    report->audit_accuracy =
        static_cast<double>(audit_ok) / static_cast<double>(audit_n);
    if (report->audit_accuracy >= config_.audit_accuracy_threshold) {
      report->audit_passed = true;
      accepted.assign(batch.begin() + static_cast<long>(audit_n),
                      batch.end());
    } else if (iteration >= 2) {
      threshold = std::min(0.95, threshold + 0.15);
    }
  }
  if (report->audit_passed) {
    accepted.insert(accepted.end(), audited_good.begin(), audited_good.end());
    std::string key;  // reused across accepted concepts
    for (const auto* tokens : accepted) {
      key = JoinStrings(*tokens, " ");
      if (net.FindEcConcept(key).has_value()) continue;
      auto res = net.GetOrAddEcConcept(*tokens);
      if (res.ok()) ++report->ec_accepted;
    }
  }
  stage_count("ec_concepts", "candidates", report->ec_candidates);
  stage_count("ec_concepts", "audited", audited.size());
  stage_count("ec_concepts", "audit_rejected",
              audited.size() - audited_good.size());
  stage_count("ec_concepts", "accepted", report->ec_accepted);
  stage_gauge("ec_concepts", "audit_accuracy", report->audit_accuracy);

  // ---- Stage 6: concept tagging -> interpretation links ----
  begin_stage("concept_tagging");
  tagging::TaggerResources tag_res;
  tag_res.pos_tagger = &world_->pos_tagger();
  tag_res.context_matrix = &resources_->context_matrix();
  tag_res.corpus_vocab = &resources_->vocab();
  tagging::ConceptTagger tagger(config_.tagger, tag_res);
  std::vector<tagging::TaggedExample> tag_train;
  tag_train.reserve(world_->tagged_concepts().size());
  for (const auto& t : world_->tagged_concepts()) {
    tag_train.push_back(tagging::TaggedExample{t.tokens, t.allowed_iob});
  }
  // Distant-supervision augmentation from the accepted candidates, labeled
  // by the (grown) mining dictionary (Section 7.5).
  {
    std::vector<std::vector<std::string>> accepted_phrases;
    accepted_phrases.reserve(accepted.size());
    for (const auto* tokens : accepted) accepted_phrases.push_back(*tokens);
    auto distant = tagging::BuildDistantExamples(
        supervisor.segmenter(), accepted_phrases,
        datagen::CarrierVocabulary());
    tag_train.insert(tag_train.end(), distant.begin(), distant.end());
  }
  tagger.Train(tag_train);
  // Scratch reused across every decoded span of every concept.
  std::vector<std::string> piece;
  std::string surface;
  for (const auto& ec : net.ec_concepts()) {
    auto tags = tagger.Predict(ec.tokens);
    for (const auto& span : eval::DecodeIob(tags)) {
      piece.assign(ec.tokens.begin() + span.begin,
                   ec.tokens.begin() + span.end);
      surface = JoinStrings(piece, " ");
      auto cls = net.taxonomy().Find(span.type);
      if (!cls.ok()) continue;
      std::optional<kg::ConceptId> prim = net.FindPrimitive(surface, *cls);
      if (!prim.has_value()) {
        // Fall back to any sense within the predicted domain subtree.
        for (kg::ConceptId sense : net.FindPrimitive(surface)) {
          if (net.taxonomy().IsAncestor(*cls, net.Get(sense).cls)) {
            prim = sense;
            break;
          }
        }
      }
      if (prim.has_value() &&
          net.LinkEcToPrimitive(ec.id, *prim).ok()) {
        ++report->interpretation_links;
      }
    }
  }

  stage_count("concept_tagging", "interpretation_links",
              report->interpretation_links);

  // ---- Stage 7: items + association ----
  // Items enter from the catalog; primitive tags via max-matching; ec-item
  // association via the trained knowledge-aware matcher.
  begin_stage("item_association");
  mining::DistantSupervisor item_tagger_dict(world_->seed_dictionary(),
                                             datagen::CarrierVocabulary());
  for (const auto& mined : miner.accepted()) {
    item_tagger_dict.AddEntry(mined.surface, mined.domain);
  }
  std::vector<kg::ItemId> net_items;
  net_items.reserve(world_->net().items().size());
  for (const auto& item : world_->net().items()) {
    ALICOCO_ASSIGN_OR_RETURN(
        kg::ItemId id, net.AddItem(item.title, domain_class("Category")));
    net_items.push_back(id);
    ++report->items_added;
    auto seg = item_tagger_dict.segmenter().Match(item.title);
    for (const auto& match : seg.matches) {
      auto cls = net.taxonomy().Find(match.label);
      if (!cls.ok()) continue;
      auto prim = net.FindPrimitive(match.phrase, *cls);
      if (prim.has_value() &&
          net.LinkItemToPrimitive(id, *prim).ok()) {
        ++report->item_primitive_links;
      }
    }
  }

  matching::KnowledgeResources know_res;
  know_res.pos_tagger = &world_->pos_tagger();
  know_res.gloss_encoder = &resources_->gloss_encoder();
  know_res.gloss_lookup = [this](const std::string& w) {
    return resources_->GlossOf(w);
  };
  know_res.concept_classes =
      [&net](const std::vector<std::string>& tokens) {
        std::vector<int> out;
        auto ec = net.FindEcConcept(JoinStrings(tokens, " "));
        if (ec.has_value()) {
          for (kg::ConceptId p : net.PrimitivesForEc(*ec)) {
            out.push_back(static_cast<int>(net.Get(p).cls.value));
          }
        }
        return out;
      };
  know_res.num_classes = static_cast<int>(net.taxonomy().size());
  matching::KnowledgeMatcher matcher(config_.matcher, know_res,
                                     &resources_->embeddings(),
                                     &resources_->vocab());
  if (metrics != nullptr) {
    matcher.set_score_latency_histogram(
        metrics->GetHistogram("matching.knowledge_matcher.score_latency_us"));
  }
  matching::MatchingDatasetConfig md_cfg;
  md_cfg.seed = config_.seed ^ 0xAA;
  matching::MatchingDataset md = matching::BuildMatchingDataset(*world_,
                                                                md_cfg);
  matcher.Train(md);
  // Quantized association scoring: calibration below and the concurrent
  // candidate scoring both run through the quantized kernels, so the
  // calibrated threshold matches the scores actually deployed.
  if (config_.association_quant != nn::quant::QuantMode::kNone) {
    matcher.EnableQuantizedInference(config_.association_quant);
  }

  // Calibrate the acceptance threshold on the held-out split so dynamic
  // edges meet the target precision AT DEPLOYMENT PRIOR: the calibration
  // pairs are ~50% positive, but a random (concept, item) pair is positive
  // far more rarely, so positives are down-weighted accordingly.
  double assoc_threshold = 1.0;
  {
    std::vector<std::pair<double, int>> scored;
    scored.reserve(md.test.size());
    size_t positives = 0;
    for (const auto& ex : md.test) {
      scored.emplace_back(
          matcher.Score(ex.concept_tokens, ex.item_tokens, ex.item_id),
          ex.label);
      positives += ex.label;
    }
    // Deployment prior: average gold-link density over the world's items.
    double deploy_prior = 0.1;
    if (!world_->ec_gold().empty() && !world_->net().items().empty()) {
      double acc = 0;
      for (const auto& g : world_->ec_gold()) {
        acc += static_cast<double>(g.items.size()) /
               static_cast<double>(world_->net().items().size());
      }
      deploy_prior = std::min(0.5, acc / world_->ec_gold().size());
    }
    double calib_prior = scored.empty()
                             ? 0.5
                             : static_cast<double>(positives) / scored.size();
    double w = (deploy_prior / (1.0 - deploy_prior)) /
               std::max(1e-6, calib_prior / (1.0 - calib_prior));
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    double tp = 0, fp = 0;
    size_t taken = 0;
    double best = 1.0;
    for (const auto& [score, label] : scored) {
      ++taken;
      if (label) {
        tp += w;
      } else {
        fp += 1;
      }
      double precision = tp / std::max(1e-9, tp + fp);
      if (precision >= config_.association_target_precision && taken >= 20) {
        best = score;
      }
    }
    // If the target precision is unreachable, fall back to the configured
    // floor; the top-k cap below bounds the damage.
    assoc_threshold = best < 1.0
                          ? std::max(config_.association_min_threshold, best)
                          : config_.association_min_threshold;
  }

  // Concept pages are ranked item lists: keep only the top-k scored
  // candidates per concept above the calibrated threshold. Scoring is
  // read-only on the matcher and the net, so concepts fan out over a
  // thread pool; links are written sequentially afterwards.
  {
    size_t num_concepts = net.ec_concepts().size();
    std::vector<std::vector<std::pair<double, kg::ItemId>>> per_concept(
        num_concepts);
    // Per-shard tallies; summed after the barrier so workers never share a
    // counter.
    std::vector<size_t> above_threshold(num_concepts, 0);
    std::vector<size_t> below_threshold(num_concepts, 0);
    worker_pool.ParallelFor(num_concepts, [&](size_t idx) {
      const auto& ec = net.ec_concepts()[idx];
      Rng local_rng(config_.seed ^ (0x9E3779B9ull * (idx + 1)));
      auto& ranked = per_concept[idx];
      for (size_t n = 0; n < config_.association_candidates; ++n) {
        kg::ItemId item = net_items[local_rng.Uniform(net_items.size())];
        double s = matcher.Score(ec.tokens, net.Get(item).title,
                                 static_cast<int64_t>(item.value));
        if (s >= assoc_threshold) {
          ranked.emplace_back(s, item);
          ++above_threshold[idx];
        } else {
          ++below_threshold[idx];
        }
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second.value < b.second.value;
                });
      if (ranked.size() > config_.association_top_k) {
        ranked.resize(config_.association_top_k);
      }
    });
    for (size_t idx = 0; idx < num_concepts; ++idx) {
      const auto& ec = net.ec_concepts()[idx];
      for (const auto& [score, item] : per_concept[idx]) {
        // The matcher score becomes the edge probability (future work 2).
        if (net.LinkItemToEc(item, ec.id, score).ok()) {
          ++report->item_ec_links;
        }
      }
    }
    size_t edges_above = 0, edges_below = 0;
    for (size_t idx = 0; idx < num_concepts; ++idx) {
      edges_above += above_threshold[idx];
      edges_below += below_threshold[idx];
    }
    stage_count("item_association", "edges_above_threshold", edges_above);
    stage_count("item_association", "edges_below_threshold", edges_below);
  }
  stage_count("item_association", "items_added", report->items_added);
  stage_count("item_association", "item_primitive_links",
              report->item_primitive_links);
  stage_count("item_association", "item_ec_links", report->item_ec_links);
  stage_gauge("item_association", "assoc_threshold", assoc_threshold);

  // ---- Stage 8: commonsense relation inference (Section 10) ----
  begin_stage("relation_inference");
  if (config_.infer_relations) {
    mining::RelationInference inference(&net);
    mining::RelationInferenceConfig rel_cfg;
    rel_cfg.min_lift = config_.relation_min_lift;
    rel_cfg.min_support = config_.relation_min_support;
    report->inferred_relations +=
        mining::RelationInference::Commit(inference.InferSuitableWhen(rel_cfg),
                                        &net);
    report->inferred_relations +=
        mining::RelationInference::Commit(inference.InferUsedWhen(rel_cfg),
                                        &net);
  }
  stage_count("relation_inference", "inferred_relations",
              report->inferred_relations);

  // ---- Stage 9: structural audit (kg_validate hook) ----
  // Every generated world is checked against the invariants the paper
  // assumes; a net that fails the audit never leaves the pipeline.
  begin_stage("validation");
  if (config_.validate_output) {
    kg::ValidationReport audit = kg::Validator().Validate(net);
    stage_count("validation", "issues", audit.issues.size());
    if (!audit.ok()) {
      ALICOCO_LOG(Error) << audit.Summary();
      return Status::Internal("built concept net failed validation: " +
                              std::to_string(audit.issues.size()) +
                              " issue(s), first: [" +
                              kg::ValidationCodeToString(
                                  audit.issues.front().code) +
                              "] " + audit.issues.front().message);
    }
    ALICOCO_LOG(Info) << audit.Summary();
  }

  if (config_.stage_profiler != nullptr) config_.stage_profiler->Finish();
  return net;
}

GoldComparison AliCoCoBuilder::CompareToGold(const kg::ConceptNet& built,
                                             const datagen::World& world) {
  GoldComparison cmp;
  const auto& gold = world.net();

  // Primitive surfaces (domain-insensitive to tolerate class granularity).
  std::unordered_set<std::string> gold_surfaces, built_surfaces;
  for (const auto& p : gold.primitives()) gold_surfaces.insert(p.surface);
  for (const auto& p : built.primitives()) built_surfaces.insert(p.surface);
  size_t inter = 0;
  for (const auto& s : built_surfaces) inter += gold_surfaces.count(s);
  if (!built_surfaces.empty()) {
    cmp.primitive_precision =
        static_cast<double>(inter) / built_surfaces.size();
  }
  if (!gold_surfaces.empty()) {
    cmp.primitive_recall = static_cast<double>(inter) / gold_surfaces.size();
  }

  // isA edges by surface pair.
  auto edge_set = [](const kg::ConceptNet& net) {
    std::unordered_set<std::string> edges;
    for (const auto& p : net.primitives()) {
      for (kg::ConceptId h : net.Hypernyms(p.id)) {
        edges.insert(p.surface + "\t" + net.Get(h).surface);
      }
    }
    return edges;
  };
  auto gold_edges = edge_set(gold);
  auto built_edges = edge_set(built);
  size_t edge_inter = 0;
  for (const auto& e : built_edges) edge_inter += gold_edges.count(e);
  if (!built_edges.empty()) {
    cmp.isa_precision = static_cast<double>(edge_inter) / built_edges.size();
  }
  if (!gold_edges.empty()) {
    cmp.isa_recall = static_cast<double>(edge_inter) / gold_edges.size();
  }

  // E-commerce concepts judged by the world's goodness oracle (the sampled
  // gold list is not exhaustive).
  size_t ec_good = 0;
  for (const auto& ec : built.ec_concepts()) {
    ec_good += world.IsGoodConcept(ec.tokens);
  }
  if (built.num_ec_concepts() > 0) {
    cmp.ec_precision = static_cast<double>(ec_good) / built.num_ec_concepts();
  }
  std::unordered_set<std::string> gold_ec;
  for (const auto& ec : gold.ec_concepts()) gold_ec.insert(ec.surface);

  // Item-EC links: built item ids equal world item ids by construction
  // order; compare via (item index, ec surface).
  std::unordered_set<std::string> gold_links;
  for (const auto& item : gold.items()) {
    for (kg::EcConceptId ec : gold.EcConceptsForItem(item.id)) {
      gold_links.insert(std::to_string(item.id.value) + "\t" +
                        gold.Get(ec).surface);
    }
  }
  // Only links whose concept exists in gold can be judged.
  size_t link_inter = 0, built_links = 0;
  for (const auto& item : built.items()) {
    for (kg::EcConceptId ec : built.EcConceptsForItem(item.id)) {
      if (!gold_ec.count(built.Get(ec).surface)) continue;
      ++built_links;
      link_inter += gold_links.count(std::to_string(item.id.value) + "\t" +
                                     built.Get(ec).surface);
    }
  }
  if (built_links > 0) {
    cmp.item_link_precision = static_cast<double>(link_inter) / built_links;
  }
  if (!gold_links.empty()) {
    cmp.item_link_recall =
        static_cast<double>(link_inter) / gold_links.size();
  }
  return cmp;
}

}  // namespace alicoco::pipeline
