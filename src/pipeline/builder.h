// End-to-end semi-automatic construction of AliCoCo (the whole paper).
//
// Input: the raw side of a World — corpora, the seed dictionary (the
// "existing knowledge sources" of Section 4.1), gold labels standing in for
// the paper's human annotators. Output: a freshly built ConceptNet:
//
//   1. taxonomy + schema        (expert-defined, Section 3)
//   2. seed primitive concepts  (ontology matching, Section 4.1)
//   3. mining loop              (BiLSTM-CRF + distant supervision, 7.2)
//   4. hypernym discovery       (patterns + projection learning, 4.2)
//   5. e-commerce concepts      (generation + classification + audit, 5.2)
//   6. concept tagging          (fuzzy-CRF NER -> interpretation links, 5.3)
//   7. item association         (knowledge-aware matching, Section 6)
//
// Every stage reports counts; quality control follows the paper: mined
// batches are sample-audited against the oracle and only added above an
// accuracy threshold.

#ifndef ALICOCO_PIPELINE_BUILDER_H_
#define ALICOCO_PIPELINE_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "concepts/classifier.h"
#include "datagen/resources.h"
#include "datagen/world.h"
#include "hypernym/projection_model.h"
#include "kg/concept_net.h"
#include "matching/knowledge_matcher.h"
#include "mining/concept_miner.h"
#include "mining/sequence_labeler.h"
#include "nn/quant.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tagging/concept_tagger.h"

namespace alicoco::obs::prof {
class StageProfiler;
}  // namespace alicoco::obs::prof

namespace alicoco::pipeline {

struct PipelineConfig {
  // Stage 3: mining.
  mining::SequenceLabelerConfig labeler;
  int mining_epochs = 2;
  size_t mining_min_support = 2;
  // Stage 4: hypernyms.
  hypernym::ProjectionConfig projection;
  double hypernym_accept_threshold = 0.7;
  // Stage 5: concept classification.
  concepts::ConceptClassifierConfig classifier;
  double concept_accept_threshold = 0.6;
  size_t audit_sample = 50;
  double audit_accuracy_threshold = 0.7;
  // Stage 6: tagging.
  tagging::ConceptTaggerConfig tagger;
  // Stage 7: association.
  matching::KnowledgeMatcherConfig matcher;
  /// Target precision for dynamic item-concept edges; the acceptance
  /// threshold is calibrated on held-out pairs, reweighted to the
  /// deployment prior (the paper monitors dynamic-edge quality regularly).
  double association_target_precision = 0.8;
  double association_min_threshold = 0.6;
  size_t association_candidates = 150;  ///< random items scored per concept
  /// Quantized inference for stage-7 association scoring: after training,
  /// the knowledge matcher's weights are quantized to this mode and both
  /// threshold calibration and candidate scoring run through the quantized
  /// kernels (kNone = fp32). Tolerances are documented in DESIGN.md §5.
  nn::quant::QuantMode association_quant = nn::quant::QuantMode::kNone;
  /// Stage 8: commonsense relation inference over the built catalog
  /// (future work items 1-2). Inferred typed relations enter the net with
  /// lift-derived confidences.
  bool infer_relations = true;
  double relation_min_lift = 1.5;
  size_t relation_min_support = 5;
  /// Concept pages are ranked lists: at most this many top-scoring items
  /// link to each concept even when more clear the threshold.
  size_t association_top_k = 12;
  /// Stage 9: structural audit of the built net (kg::Validator). A net
  /// that violates the paper's invariants is a build failure, not a
  /// deliverable.
  bool validate_output = true;
  uint64_t seed = 2020;
  /// Observability (src/obs). When `tracer` is set, Build() runs inside a
  /// root span `pipeline.build` with one child span per stage
  /// (`pipeline.<stage>`). When `metrics` is set, stages publish domain
  /// counters/gauges under `pipeline.<stage>.<name>`, the stage-7 scorer
  /// pool reports queue metrics, and the knowledge matcher records score
  /// latency. Both may be null (the default): instrumentation is then a
  /// no-op. Neither is owned; both must outlive Build().
  obs::Tracer* tracer = nullptr;
  obs::Registry* metrics = nullptr;
  /// Profiling tier (src/obs/prof). When set, Build() cuts a stage
  /// attribution window at every stage boundary (wall/cpu/lock-wait/
  /// queue-wait/alloc deltas — see obs/prof/bench_profile.h) and closes
  /// the last window before returning. Not owned; may be null.
  obs::prof::StageProfiler* stage_profiler = nullptr;
};

/// Per-stage accounting.
struct BuildReport {
  size_t seed_concepts = 0;
  std::vector<mining::MiningEpochStats> mining_epochs;
  size_t mined_concepts = 0;
  size_t isa_from_patterns = 0;
  size_t isa_from_projection = 0;
  size_t ec_candidates = 0;
  size_t ec_accepted = 0;
  double audit_accuracy = 0;
  bool audit_passed = false;
  size_t interpretation_links = 0;
  size_t items_added = 0;
  size_t item_primitive_links = 0;
  size_t item_ec_links = 0;
  size_t inferred_relations = 0;

  std::string Summary() const;
};

/// Gold-relative quality of a constructed net.
struct GoldComparison {
  double primitive_precision = 0;  ///< built concepts that exist in gold
  double primitive_recall = 0;     ///< gold concepts present in built net
  double isa_precision = 0;
  double isa_recall = 0;
  double ec_precision = 0;
  double item_link_precision = 0;  ///< built item-ec links that are gold
  double item_link_recall = 0;
};

/// Drives the construction. The world acts as data source and annotation
/// oracle; `resources` supplies the corpus-derived models.
class AliCoCoBuilder {
 public:
  AliCoCoBuilder(const datagen::World* world,
                 const datagen::WorldResources* resources,
                 const PipelineConfig& config);

  /// Runs all stages; returns the constructed net.
  Result<kg::ConceptNet> Build(BuildReport* report);

  /// Compares a built net against the world's gold net.
  static GoldComparison CompareToGold(const kg::ConceptNet& built,
                                      const datagen::World& world);

 private:
  const datagen::World* world_;
  const datagen::WorldResources* resources_;
  PipelineConfig config_;
};

}  // namespace alicoco::pipeline

#endif  // ALICOCO_PIPELINE_BUILDER_H_
