#include "hypernym/patterns.h"

#include <map>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace alicoco::hypernym {

PatternHypernymMiner::PatternHypernymMiner(
    const std::vector<std::string>& vocabulary)
    : vocabulary_(vocabulary),
      vocab_set_(vocabulary.begin(), vocabulary.end()) {
  for (const auto& surface : vocabulary_) {
    max_len_ = std::max(max_len_, text::Tokenize(surface).size());
  }
}

std::string PatternHypernymMiner::MatchAt(
    const std::vector<std::string>& tokens, size_t pos, size_t* len) const {
  std::string best;
  size_t best_len = 0;
  std::string key;
  for (size_t l = 1; l <= max_len_ && pos + l <= tokens.size(); ++l) {
    if (l > 1) key += ' ';
    key += tokens[pos + l - 1];
    if (vocab_set_.count(key)) {
      best = key;
      best_len = l;
    }
  }
  *len = best_len;
  return best;
}

std::vector<PatternPair> PatternHypernymMiner::MineHearst(
    const std::vector<std::vector<std::string>>& sentences) const {
  std::map<std::pair<std::string, std::string>, size_t> counts;
  for (const auto& tokens : sentences) {
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i] != "such" || tokens[i + 1] != "as") continue;
      // Hypernym: the vocabulary surface ending right before "such".
      std::string hyper;
      for (size_t start = i >= max_len_ ? i - max_len_ : 0; start < i;
           ++start) {
        size_t len = 0;
        std::string m = MatchAt(tokens, start, &len);
        if (!m.empty() && start + len == i) hyper = m;
      }
      if (hyper.empty()) continue;
      // Hyponyms: surfaces after "as", optionally continued by "and"/"or".
      size_t pos = i + 2;
      while (pos < tokens.size()) {
        size_t len = 0;
        std::string hypo = MatchAt(tokens, pos, &len);
        if (hypo.empty()) break;
        if (hypo != hyper) ++counts[{hypo, hyper}];
        pos += len;
        if (pos < tokens.size() &&
            (tokens[pos] == "and" || tokens[pos] == "or")) {
          ++pos;
        } else {
          break;
        }
      }
    }
  }
  std::vector<PatternPair> out;
  out.reserve(counts.size());
  for (const auto& [pair, support] : counts) {
    out.push_back(PatternPair{pair.first, pair.second,
                              PatternPair::Source::kHearst, support});
  }
  return out;
}

std::vector<PatternPair> PatternHypernymMiner::MineSuffix() const {
  std::vector<PatternPair> out;
  for (const auto& surface : vocabulary_) {
    auto tokens = text::Tokenize(surface);
    if (tokens.size() < 2) continue;
    // Longest proper suffix that is itself a vocabulary surface.
    for (size_t start = 1; start < tokens.size(); ++start) {
      std::string suffix = JoinStrings(
          std::vector<std::string>(tokens.begin() + start, tokens.end()),
          " ");
      if (vocab_set_.count(suffix)) {
        out.push_back(PatternPair{surface, suffix,
                                  PatternPair::Source::kSuffix, 1});
        break;
      }
    }
  }
  return out;
}

}  // namespace alicoco::hypernym
