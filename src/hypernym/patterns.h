// Pattern-based hypernym discovery (Section 4.2.1).
//
// Two sources, as in the paper: Hearst-style textual patterns ("Y such as
// X") matched over the corpus, and the grammatical suffix-head rule ("XX
// pants" must be a "pants" — the Chinese "XX裤" rule transposed to
// token-level compounds).

#ifndef ALICOCO_HYPERNYM_PATTERNS_H_
#define ALICOCO_HYPERNYM_PATTERNS_H_

#include <string>
#include <unordered_set>
#include <vector>

namespace alicoco::hypernym {

/// A proposed hyponym -> hypernym pair with provenance.
struct PatternPair {
  std::string hypo;
  std::string hyper;
  enum class Source { kHearst, kSuffix } source = Source::kHearst;
  size_t support = 1;  ///< corpus occurrences (Hearst only)
};

/// Extracts hypernym pairs among a known vocabulary of concept surfaces.
class PatternHypernymMiner {
 public:
  /// `vocabulary` — candidate concept surfaces (possibly multi-token,
  /// space-joined).
  explicit PatternHypernymMiner(const std::vector<std::string>& vocabulary);

  /// Scans sentences for "<Y> such as <X> (and <X>)*" where X and Y are
  /// vocabulary surfaces. Deduplicates, accumulating support.
  std::vector<PatternPair> MineHearst(
      const std::vector<std::vector<std::string>>& sentences) const;

  /// Applies the suffix-head rule to the vocabulary itself: a multi-token
  /// surface whose trailing token(s) form another vocabulary surface is its
  /// hyponym.
  std::vector<PatternPair> MineSuffix() const;

 private:
  /// Longest vocabulary surface starting at `pos` (empty if none).
  std::string MatchAt(const std::vector<std::string>& tokens,
                      size_t pos, size_t* len) const;

  std::vector<std::string> vocabulary_;
  std::unordered_set<std::string> vocab_set_;
  size_t max_len_ = 0;
};

}  // namespace alicoco::hypernym

#endif  // ALICOCO_HYPERNYM_PATTERNS_H_
