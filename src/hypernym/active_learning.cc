#include "hypernym/active_learning.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"

namespace alicoco::hypernym {

const char* StrategyName(SamplingStrategy s) {
  switch (s) {
    case SamplingStrategy::kRandom:
      return "Random";
    case SamplingStrategy::kUncertainty:
      return "US";
    case SamplingStrategy::kConfidence:
      return "CS";
    case SamplingStrategy::kUcs:
      return "UCS";
  }
  return "?";
}

HypernymDataset BuildHypernymDataset(
    const std::vector<datagen::HypernymGold>& gold,
    const std::vector<std::string>& vocabulary, int negatives_per_positive,
    int test_candidates, uint64_t seed) {
  ALICOCO_CHECK(!gold.empty() && !vocabulary.empty());
  Rng rng(seed);
  HypernymDataset ds;

  // Gold hypernym lookup for clean negative sampling.
  std::unordered_set<std::string> positive_keys;
  for (const auto& g : gold) positive_keys.insert(g.hypo + "\t" + g.hyper);
  auto is_positive = [&](const std::string& hypo, const std::string& hyper) {
    return positive_keys.count(hypo + "\t" + hyper) > 0;
  };
  auto random_negative = [&](const std::string& hypo) -> std::string {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::string& cand = vocabulary[rng.Uniform(vocabulary.size())];
      if (cand != hypo && !is_positive(hypo, cand)) return cand;
    }
    return vocabulary[rng.Uniform(vocabulary.size())];
  };

  // 7:2:1 split of positives.
  std::vector<size_t> order(gold.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  size_t n_train = gold.size() * 7 / 10;
  size_t n_val = gold.size() * 2 / 10;

  for (size_t i = 0; i < order.size(); ++i) {
    const auto& g = gold[order[i]];
    if (i < n_train) {
      ds.pool.push_back(LabeledPair{g.hypo, g.hyper, 1});
      for (int k = 0; k < negatives_per_positive; ++k) {
        ds.pool.push_back(LabeledPair{g.hypo, random_negative(g.hypo), 0});
      }
    } else if (i < n_train + n_val) {
      ds.validation.push_back(LabeledPair{g.hypo, g.hyper, 1});
      for (int k = 0; k < negatives_per_positive; ++k) {
        ds.validation.push_back(
            LabeledPair{g.hypo, random_negative(g.hypo), 0});
      }
    } else {
      RankingTestQuery q;
      q.hypo = g.hypo;
      q.candidates.push_back(g.hyper);
      q.labels.push_back(1);
      // Other gold hypernyms of this hyponym count as relevant too.
      for (const auto& g2 : gold) {
        if (g2.hypo == g.hypo && g2.hyper != g.hyper) {
          q.candidates.push_back(g2.hyper);
          q.labels.push_back(1);
        }
      }
      for (int k = 0; k < test_candidates; ++k) {
        q.candidates.push_back(random_negative(g.hypo));
        q.labels.push_back(0);
      }
      ds.test.push_back(std::move(q));
    }
  }
  return ds;
}

RankingMetrics TrainOnPoolAndEvaluate(const text::SkipgramModel* embeddings,
                                      const text::Vocabulary* vocab,
                                      const ProjectionConfig& model_config,
                                      const HypernymDataset& dataset) {
  ProjectionModel model(embeddings, vocab, model_config);
  model.Train(dataset.pool);
  return EvaluateRanking(model, dataset.test);
}

size_t ActiveLearningResult::LabeledToReach(double target_map) const {
  for (const auto& r : rounds) {
    if (r.metrics.map >= target_map) return r.labeled_total;
  }
  return 0;
}

ActiveLearner::ActiveLearner(const text::SkipgramModel* embeddings,
                             const text::Vocabulary* vocab,
                             const ActiveLearningConfig& config)
    : embeddings_(embeddings), vocab_(vocab), config_(config) {
  ALICOCO_CHECK(embeddings != nullptr && vocab != nullptr);
}

ActiveLearningResult ActiveLearner::Run(SamplingStrategy strategy,
                                        const HypernymDataset& dataset,
                                        uint64_t seed) const {
  Rng rng(seed);
  ActiveLearningResult result;

  std::vector<size_t> unlabeled(dataset.pool.size());
  std::iota(unlabeled.begin(), unlabeled.end(), 0);
  rng.Shuffle(&unlabeled);
  std::vector<LabeledPair> labeled;

  // Initial random batch (Algorithm 1, lines 3-7).
  size_t take = std::min(config_.per_round, unlabeled.size());
  for (size_t i = 0; i < take; ++i) {
    labeled.push_back(dataset.pool[unlabeled[unlabeled.size() - 1 - i]]);
  }
  unlabeled.resize(unlabeled.size() - take);

  double best_map = -1;
  int stale = 0;
  uint64_t round_seed = seed;
  for (int round = 0; round < config_.max_rounds; ++round) {
    ProjectionConfig mc = config_.model;
    mc.seed = round_seed++;  // fresh init each retrain, as in Algorithm 1
    ProjectionModel model(embeddings_, vocab_, mc);
    model.Train(labeled);
    RoundStats stats;
    stats.labeled_total = labeled.size();
    stats.metrics = EvaluateRanking(model, dataset.test);
    result.rounds.push_back(stats);

    if (stats.metrics.map > best_map + 1e-6) {
      best_map = stats.metrics.map;
      result.best_map = best_map;
      result.labeled_at_best = labeled.size();
      stale = 0;
    } else if (++stale >= config_.patience) {
      break;
    }
    if (unlabeled.empty()) break;

    // Score the remaining pool and pick the next batch (lines 9-12).
    std::vector<double> scores(unlabeled.size());
    for (size_t i = 0; i < unlabeled.size(); ++i) {
      const auto& pair = dataset.pool[unlabeled[i]];
      scores[i] = model.Score(pair.hypo, pair.hyper);
    }
    std::vector<size_t> pick_order(unlabeled.size());
    std::iota(pick_order.begin(), pick_order.end(), 0);
    size_t k = std::min(config_.per_round, unlabeled.size());

    auto certainty = [&](size_t i) { return std::fabs(scores[i] - 0.5) / 0.5; };
    switch (strategy) {
      case SamplingStrategy::kRandom:
        rng.Shuffle(&pick_order);
        pick_order.resize(k);
        break;
      case SamplingStrategy::kUncertainty:
        std::partial_sort(pick_order.begin(), pick_order.begin() + k,
                          pick_order.end(), [&](size_t a, size_t b) {
                            return certainty(a) < certainty(b);
                          });
        pick_order.resize(k);
        break;
      case SamplingStrategy::kConfidence:
        std::partial_sort(pick_order.begin(), pick_order.begin() + k,
                          pick_order.end(), [&](size_t a, size_t b) {
                            return scores[a] > scores[b];
                          });
        pick_order.resize(k);
        break;
      case SamplingStrategy::kUcs: {
        size_t k_unc = static_cast<size_t>(config_.alpha * k);
        size_t k_conf = k - k_unc;
        std::vector<size_t> by_unc = pick_order;
        std::partial_sort(by_unc.begin(),
                          by_unc.begin() + std::min(k_unc, by_unc.size()),
                          by_unc.end(), [&](size_t a, size_t b) {
                            return certainty(a) < certainty(b);
                          });
        std::unordered_set<size_t> chosen(by_unc.begin(),
                                          by_unc.begin() + k_unc);
        std::vector<size_t> by_conf = pick_order;
        std::sort(by_conf.begin(), by_conf.end(), [&](size_t a, size_t b) {
          return scores[a] > scores[b];
        });
        for (size_t i : by_conf) {
          if (chosen.size() >= k_unc + k_conf) break;
          chosen.insert(i);
        }
        pick_order.assign(chosen.begin(), chosen.end());
        break;
      }
    }

    // Move picked items into the labeled set (oracle reveals labels).
    std::unordered_set<size_t> picked_positions(pick_order.begin(),
                                                pick_order.end());
    std::vector<size_t> remaining;
    remaining.reserve(unlabeled.size());
    for (size_t i = 0; i < unlabeled.size(); ++i) {
      if (picked_positions.count(i)) {
        labeled.push_back(dataset.pool[unlabeled[i]]);
      } else {
        remaining.push_back(unlabeled[i]);
      }
    }
    unlabeled = std::move(remaining);
  }
  return result;
}

}  // namespace alicoco::hypernym
