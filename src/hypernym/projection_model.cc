#include "hypernym/projection_model.h"

#include <cmath>

#include "common/logging.h"
#include "text/tokenizer.h"

namespace alicoco::hypernym {

ProjectionModel::ProjectionModel(const text::SkipgramModel* embeddings,
                                 const text::Vocabulary* vocab,
                                 const ProjectionConfig& config)
    : embeddings_(embeddings),
      vocab_(vocab),
      config_(config),
      init_rng_(config.seed) {
  ALICOCO_CHECK(embeddings != nullptr && vocab != nullptr);
  int d = embeddings_->dim();
  for (int k = 0; k < config_.k_layers; ++k) {
    tensors_.push_back(store_.Create("T" + std::to_string(k), d, d,
                                     nn::ParameterStore::Init::kXavier,
                                     &init_rng_));
  }
  head_ = std::make_unique<nn::Linear>(&store_, "head", config_.k_layers, 1,
                                       &init_rng_);
}

nn::Tensor ProjectionModel::PhraseEmbedding(const std::string& surface) const {
  int d = embeddings_->dim();
  nn::Tensor out(1, d);
  auto tokens = text::Tokenize(surface);
  int hits = 0;
  for (const auto& tok : tokens) {
    int id = vocab_->Id(tok);
    if (id <= text::Vocabulary::kUnkId || id >= embeddings_->vocab_size()) {
      continue;
    }
    const float* e = embeddings_->Embedding(id);
    for (int k = 0; k < d; ++k) out.At(0, k) += e[k];
    ++hits;
  }
  if (hits > 1) out.Scale(1.0f / static_cast<float>(hits));
  return out;
}

nn::Graph::Var ProjectionModel::Logit(nn::Graph* g, const nn::Tensor& p,
                                      const nn::Tensor& h) const {
  nn::Graph::Var pv = g->Input(p);
  nn::Graph::Var hv = g->Input(h);
  nn::Graph::Var ht = g->Transpose(hv);  // d x 1
  std::vector<nn::Graph::Var> scores;
  scores.reserve(tensors_.size());
  for (nn::Parameter* t : tensors_) {
    // s_k = p T_k h^T : (1xd)(dxd)(dx1) -> 1x1.
    scores.push_back(g->MatMul(g->MatMul(pv, g->Use(t)), ht));
  }
  return head_->Apply(g, g->ConcatCols(scores));
}

void ProjectionModel::Train(const std::vector<LabeledPair>& data) {
  ALICOCO_CHECK(!trained_);
  ALICOCO_CHECK(!data.empty());
  nn::Adam adam(config_.lr);
  Rng rng(config_.seed ^ 0xC0FFEE);
  float positive_weight = 1.0f;
  if (config_.balance_classes) {
    size_t pos = 0;
    for (const auto& pair : data) pos += pair.label;
    if (pos > 0 && pos < data.size()) {
      positive_weight = std::min(
          config_.max_positive_weight,
          static_cast<float>(data.size() - pos) / static_cast<float>(pos));
    }
  }
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    store_.ZeroGrad();
    int in_batch = 0;
    for (size_t idx : order) {
      const LabeledPair& pair = data[idx];
      nn::Graph g;
      nn::Graph::Var logit =
          Logit(&g, PhraseEmbedding(pair.hypo), PhraseEmbedding(pair.hyper));
      nn::Tensor target(1, 1);
      target.At(0, 0) = static_cast<float>(pair.label);
      nn::Graph::Var loss = g.SigmoidCrossEntropyWithLogits(logit, target);
      if (pair.label == 1 && positive_weight != 1.0f) {
        loss = g.ScalarMul(loss, positive_weight);
      }
      g.Backward(loss);
      if (++in_batch >= config_.batch_size) {
        adam.Step(&store_);
        store_.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      adam.Step(&store_);
      store_.ZeroGrad();
    }
  }
  trained_ = true;
}

double ProjectionModel::Score(const std::string& hypo,
                              const std::string& hyper) const {
  nn::Graph g;
  nn::Graph::Var logit =
      Logit(&g, PhraseEmbedding(hypo), PhraseEmbedding(hyper));
  float x = g.Value(logit).At(0, 0);
  return 1.0 / (1.0 + std::exp(-static_cast<double>(x)));
}

std::vector<double> ProjectionModel::ScoreAll(
    const std::vector<LabeledPair>& pairs) const {
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) out.push_back(Score(p.hypo, p.hyper));
  return out;
}

RankingMetrics EvaluateRanking(const ProjectionModel& model,
                               const std::vector<RankingTestQuery>& queries) {
  std::vector<eval::RankedQuery> ranked;
  ranked.reserve(queries.size());
  for (const auto& q : queries) {
    eval::RankedQuery rq;
    rq.labels = q.labels;
    rq.scores.reserve(q.candidates.size());
    for (const auto& cand : q.candidates) {
      rq.scores.push_back(model.Score(q.hypo, cand));
    }
    ranked.push_back(std::move(rq));
  }
  RankingMetrics m;
  m.map = eval::MeanAveragePrecision(ranked);
  m.mrr = eval::MeanReciprocalRank(ranked);
  m.p_at_1 = eval::MeanPrecisionAtK(ranked, 1);
  return m;
}

}  // namespace alicoco::hypernym
