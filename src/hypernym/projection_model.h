// Projection-learning hypernymy scorer (Section 4.2.2, Eq. 1-2).
//
// Inputs are frozen distributional phrase embeddings (mean of skip-gram
// token vectors); a K-layer bilinear tensor produces per-layer scores
// s_k = p^T T_k h, combined by a sigmoid-activated linear head into the
// probability that h is a hypernym of p.

#ifndef ALICOCO_HYPERNYM_PROJECTION_MODEL_H_
#define ALICOCO_HYPERNYM_PROJECTION_MODEL_H_

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "nn/graph.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "text/skipgram.h"
#include "text/vocabulary.h"

namespace alicoco::hypernym {

/// A (hyponym, candidate-hypernym, is-hypernym) training example.
struct LabeledPair {
  std::string hypo;
  std::string hyper;
  int label = 0;
};

/// Hyperparameters of the projection model.
struct ProjectionConfig {
  int k_layers = 4;       ///< K bilinear layers (Eq. 1)
  int epochs = 4;
  float lr = 0.01f;
  int batch_size = 16;
  /// Up-weight positive examples by the negative:positive ratio (capped),
  /// so scores are calibrated around 0.5 despite the 1:N sampling — the
  /// uncertainty signal of Algorithm 1 depends on this.
  bool balance_classes = true;
  float max_positive_weight = 30.0f;
  uint64_t seed = 23;
};

/// Trainable scorer f(p, h) in [0, 1].
class ProjectionModel {
 public:
  /// `embeddings`/`vocab` provide the frozen phrase representations and
  /// must outlive the model.
  ProjectionModel(const text::SkipgramModel* embeddings,
                  const text::Vocabulary* vocab,
                  const ProjectionConfig& config);

  /// Trains from scratch on `data` (may be called once per instance).
  void Train(const std::vector<LabeledPair>& data);

  /// P(h is a hypernym of p).
  double Score(const std::string& hypo, const std::string& hyper) const;

  /// Scores many pairs.
  std::vector<double> ScoreAll(const std::vector<LabeledPair>& pairs) const;

 private:
  nn::Tensor PhraseEmbedding(const std::string& surface) const;
  nn::Graph::Var Logit(nn::Graph* g, const nn::Tensor& p,
                       const nn::Tensor& h) const;

  const text::SkipgramModel* embeddings_;
  const text::Vocabulary* vocab_;
  ProjectionConfig config_;
  Rng init_rng_;
  nn::ParameterStore store_;
  std::vector<nn::Parameter*> tensors_;  // K of dim x dim
  std::unique_ptr<nn::Linear> head_;     // K -> 1
  bool trained_ = false;
};

/// Evaluates a trained scorer over ranked test queries.
struct RankingTestQuery {
  std::string hypo;
  std::vector<std::string> candidates;
  std::vector<int> labels;  ///< 1 = true hypernym
};

struct RankingMetrics {
  double map = 0;
  double mrr = 0;
  double p_at_1 = 0;
};

RankingMetrics EvaluateRanking(const ProjectionModel& model,
                               const std::vector<RankingTestQuery>& queries);

}  // namespace alicoco::hypernym

#endif  // ALICOCO_HYPERNYM_PROJECTION_MODEL_H_
