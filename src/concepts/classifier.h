// Knowledge-enhanced Wide&Deep concept classifier (Section 5.2.2, Figure 5).
//
// Deep side: a char-level BiLSTM over the whole concept (mean-pooled) plus a
// word-level BiLSTM with self-attention; when knowledge is enabled, each
// word's encyclopedia gloss is encoded (Doc2vec substitute), self-attended,
// concatenated to the word states and max-pooled. Wide side: the
// pre-calculated features of criteria.h (incl. the LM-perplexity stand-in
// for the e-commerce BERT). The three representations feed an MLP scorer.
//
// Config flags reproduce the Table 4 ablation:
//   baseline            use_wide=0  use_pretrained=0  use_knowledge=0
//   +Wide               use_wide=1  use_pretrained=0  use_knowledge=0
//   +Wide&LM            use_wide=1  use_pretrained=1  use_knowledge=0
//   +Wide&LM&Knowledge  use_wide=1  use_pretrained=1  use_knowledge=1
// (use_pretrained swaps random input embeddings for corpus-pretrained ones
// and adds the LM fluency features — our substitute for "BERT output".)

#ifndef ALICOCO_CONCEPTS_CLASSIFIER_H_
#define ALICOCO_CONCEPTS_CLASSIFIER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"
#include "text/gloss_encoder.h"
#include "text/ngram_lm.h"
#include "text/skipgram.h"
#include "text/vocabulary.h"

namespace alicoco {
class ThreadPool;
}  // namespace alicoco

namespace alicoco::concepts {

/// A labeled candidate concept.
struct LabeledConcept {
  std::vector<std::string> tokens;
  int label = 0;  ///< 1 = good e-commerce concept
};

struct ConceptClassifierConfig {
  bool use_wide = true;
  bool use_pretrained = true;  ///< pretrained embeddings + LM wide features
  bool use_knowledge = true;   ///< gloss-enhanced module
  int char_dim = 10;
  int char_hidden = 10;
  int word_dim = 20;
  int word_hidden = 16;
  int epochs = 4;
  float lr = 0.01f;
  int batch_size = 16;
  /// Probability of replacing a training word with <unk>: discourages
  /// memorizing specific word combinations so the model must rely on the
  /// generalizable channels (wide + knowledge features).
  float word_unk_prob = 0.2f;
  uint64_t seed = 31;
  /// Optional worker pool for data-parallel minibatches (not owned; null
  /// trains on the calling thread). The trained model depends on the pool's
  /// thread count only through the summation order of batch gradients.
  ThreadPool* pool = nullptr;
};

/// External resources; all pointers must outlive the classifier.
struct ClassifierResources {
  const text::SkipgramModel* embeddings = nullptr;  ///< if use_pretrained
  const text::Vocabulary* corpus_vocab = nullptr;   ///< popularity + embeddings
  const text::NgramLm* lm = nullptr;                ///< if use_pretrained
  const text::GlossEncoder* gloss_encoder = nullptr;  ///< if use_knowledge
  /// word -> gloss tokens ({} when the word has no knowledge-base entry).
  std::function<std::vector<std::string>(const std::string&)> gloss_lookup;
};

/// Trainable binary scorer over candidate concepts.
class ConceptClassifier {
 public:
  ConceptClassifier(const ConceptClassifierConfig& config,
                    const ClassifierResources& resources);

  /// Trains once on labeled candidates.
  void Train(const std::vector<LabeledConcept>& data);

  /// P(candidate is a good concept).
  double Score(const std::vector<std::string>& tokens) const;

  struct TestMetrics {
    eval::BinaryMetrics binary;
    double auc = 0;
  };
  TestMetrics Evaluate(const std::vector<LabeledConcept>& test) const;

 private:
  nn::Graph::Var Logit(nn::Graph* g, const std::vector<std::string>& tokens,
                       bool train, Rng* rng) const;

  /// Knowledge-side scalar features: does any token appear in another
  /// token's gloss (pairwise compatibility evidence), on average, and how
  /// many tokens have a knowledge-base entry at all.
  std::vector<float> KnowledgeOverlapFeatures(
      const std::vector<std::string>& tokens) const;
  static constexpr int kKnowledgeFeatureDim = 3;

  ConceptClassifierConfig config_;
  ClassifierResources res_;
  Rng init_rng_;
  text::Vocabulary word_vocab_;  // built over training data
  text::Vocabulary char_vocab_;

  nn::ParameterStore store_;
  std::unique_ptr<nn::Embedding> char_emb_;
  std::unique_ptr<nn::BiLstm> char_bilstm_;
  std::unique_ptr<nn::Embedding> word_emb_;
  std::unique_ptr<nn::BiLstm> word_bilstm_;
  std::unique_ptr<nn::SelfAttention> word_attn_;
  std::unique_ptr<nn::Linear> know_proj_;  // gloss dim -> 2*word_hidden
  std::unique_ptr<nn::SelfAttention> know_attn_;
  std::unique_ptr<nn::Linear> know_skip_;  // overlap features -> logit
  std::unique_ptr<nn::Mlp> wide_mlp_;
  std::unique_ptr<nn::Mlp> head_;
  bool trained_ = false;
};

}  // namespace alicoco::concepts

#endif  // ALICOCO_CONCEPTS_CLASSIFIER_H_
