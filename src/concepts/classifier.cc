#include "concepts/classifier.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "concepts/criteria.h"
#include "nn/parallel_train.h"
#include "text/tokenizer.h"

namespace alicoco::concepts {

ConceptClassifier::ConceptClassifier(const ConceptClassifierConfig& config,
                                     const ClassifierResources& resources)
    : config_(config), res_(resources), init_rng_(config.seed) {
  if (config_.use_pretrained) {
    ALICOCO_CHECK(res_.embeddings != nullptr && res_.corpus_vocab != nullptr &&
                  res_.lm != nullptr)
        << "use_pretrained requires embeddings, corpus vocab and LM";
  }
  ALICOCO_CHECK(res_.corpus_vocab != nullptr)
      << "corpus vocab required for wide features";
  if (config_.use_knowledge) {
    ALICOCO_CHECK(res_.gloss_encoder != nullptr && res_.gloss_lookup)
        << "use_knowledge requires a gloss encoder and lookup";
  }
}

void ConceptClassifier::Train(const std::vector<LabeledConcept>& data) {
  ALICOCO_CHECK(!trained_);
  ALICOCO_CHECK(!data.empty());

  // Vocabularies over the training candidates.
  for (const auto& sample : data) {
    ALICOCO_CHECK(sample.label == 0 || sample.label == 1)
        << "binary classifier got label " << sample.label;
    for (const auto& tok : sample.tokens) {
      word_vocab_.Add(tok);
      for (const auto& ch : text::Chars(tok)) char_vocab_.Add(ch);
    }
  }

  // Model construction.
  char_emb_ = std::make_unique<nn::Embedding>(
      &store_, "char_emb", char_vocab_.size(), config_.char_dim, &init_rng_);
  char_bilstm_ = std::make_unique<nn::BiLstm>(
      &store_, "char_bilstm", config_.char_dim, config_.char_hidden,
      &init_rng_);
  word_emb_ = std::make_unique<nn::Embedding>(
      &store_, "word_emb", word_vocab_.size(), config_.word_dim, &init_rng_);
  if (config_.use_pretrained) {
    // Initialize word vectors from the corpus-pretrained table.
    ALICOCO_CHECK(res_.embeddings->dim() == config_.word_dim)
        << "pretrained dim mismatch";
    nn::Parameter* table = word_emb_->parameter();
    for (int wid = 2; wid < word_vocab_.size(); ++wid) {
      int cid = res_.corpus_vocab->Id(word_vocab_.Token(wid));
      if (cid <= text::Vocabulary::kUnkId ||
          cid >= res_.embeddings->vocab_size()) {
        continue;
      }
      const float* e = res_.embeddings->Embedding(cid);
      for (int k = 0; k < config_.word_dim; ++k) table->value.At(wid, k) = e[k];
    }
  }
  word_bilstm_ = std::make_unique<nn::BiLstm>(
      &store_, "word_bilstm", config_.word_dim, config_.word_hidden,
      &init_rng_);
  int wdim = 2 * config_.word_hidden;
  word_attn_ = std::make_unique<nn::SelfAttention>(&store_, "word_attn", wdim,
                                                   &init_rng_);
  if (config_.use_knowledge) {
    know_proj_ = std::make_unique<nn::Linear>(
        &store_, "know_proj", res_.gloss_encoder->dim(), wdim, &init_rng_);
    know_attn_ = std::make_unique<nn::SelfAttention>(&store_, "know_attn",
                                                     wdim, &init_rng_);
    // Direct path from the overlap evidence to the logit: commonsense
    // compatibility must not drown in the deep channels.
    know_skip_ = std::make_unique<nn::Linear>(
        &store_, "know_skip", kKnowledgeFeatureDim, 1, &init_rng_);
  }
  if (config_.use_wide) {
    wide_mlp_ = std::make_unique<nn::Mlp>(
        &store_, "wide", std::vector<int>{WideFeatures::kDim, 12, 8},
        &init_rng_);
  }
  int concat_dim = 2 * config_.char_hidden + wdim +
                   (config_.use_knowledge ? wdim + kKnowledgeFeatureDim : 0) +
                   (config_.use_wide ? 8 : 0);
  head_ = std::make_unique<nn::Mlp>(
      &store_, "head", std::vector<int>{concat_dim, 16, 1}, &init_rng_);

  // Training loop: minibatches sharded across the optional worker pool.
  nn::Adam adam(config_.lr);
  Rng shuffle_rng(config_.seed ^ 0xD1CE);
  nn::ParallelTrainer trainer(config_.pool);
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t batch = static_cast<size_t>(std::max(1, config_.batch_size));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    shuffle_rng.Shuffle(&order);
    store_.ZeroGrad();
    for (size_t start = 0; start < order.size(); start += batch) {
      const size_t count = std::min(batch, order.size() - start);
      trainer.AccumulateBatch(count, [&](nn::Graph* g, size_t bi) -> float {
        const size_t idx = order[start + bi];
        const auto& sample = data[idx];
        if (sample.tokens.empty()) return 0.0f;
        Rng ex_rng(nn::ExampleSeed(config_.seed ^ 0xD1CE,
                                   static_cast<uint64_t>(epoch), idx));
        nn::Graph::Var logit =
            Logit(g, sample.tokens, /*train=*/true, &ex_rng);
        nn::Tensor target(1, 1);
        target.At(0, 0) = static_cast<float>(sample.label);
        nn::Graph::Var loss = g->SigmoidCrossEntropyWithLogits(logit, target);
        g->Backward(loss);
        return g->Value(loss).At(0, 0);
      });
      adam.Step(&store_);
      store_.ZeroGrad();
    }
  }
  trained_ = true;
}

nn::Graph::Var ConceptClassifier::Logit(nn::Graph* g,
                                        const std::vector<std::string>& tokens,
                                        bool train, Rng* rng) const {
  // Char side: chars of the whole concept, BiLSTM, mean pool -> c1.
  std::vector<int> char_ids;
  for (const auto& tok : tokens) {
    for (const auto& ch : text::Chars(tok)) {
      char_ids.push_back(char_vocab_.Id(ch));
    }
  }
  if (char_ids.empty()) char_ids.push_back(text::Vocabulary::kUnkId);
  nn::Graph::Var c1 =
      g->MeanRows(char_bilstm_->Run(g, char_emb_->Lookup(g, char_ids)));

  // Word side: embeddings -> BiLSTM -> self-attention.
  std::vector<int> word_ids = word_vocab_.Encode(tokens);
  if (train && rng != nullptr) {
    for (int& id : word_ids) {
      if (rng->Bernoulli(config_.word_unk_prob)) {
        id = text::Vocabulary::kUnkId;
      }
    }
  }
  nn::Graph::Var wx = word_emb_->Lookup(g, word_ids);
  wx = g->Dropout(wx, 0.1f, train, rng);
  nn::Graph::Var w_states = word_attn_->Apply(g, word_bilstm_->Run(g, wx));

  nn::Graph::Var c2;
  if (config_.use_knowledge) {
    // Knowledge side: per-word gloss vectors, projected and self-attended;
    // concatenated with the word states, then max-pooled (Figure 5).
    nn::Tensor gloss_mat(static_cast<int>(tokens.size()),
                         res_.gloss_encoder->dim());
    for (size_t i = 0; i < tokens.size(); ++i) {
      std::vector<std::string> gloss = res_.gloss_lookup(tokens[i]);
      if (gloss.empty()) continue;
      std::vector<float> vec = res_.gloss_encoder->Encode(gloss);
      ALICOCO_DCHECK_EQ(vec.size(),
                        static_cast<size_t>(res_.gloss_encoder->dim()));
      for (int k = 0; k < res_.gloss_encoder->dim(); ++k) {
        gloss_mat.At(static_cast<int>(i), k) = vec[static_cast<size_t>(k)];
      }
    }
    nn::Graph::Var k_states = know_attn_->Apply(
        g, g->Tanh(know_proj_->Apply(g, g->Input(std::move(gloss_mat)))));
    nn::Graph::Var overlap = g->Input(nn::Tensor::FromVector(
        1, kKnowledgeFeatureDim, KnowledgeOverlapFeatures(tokens)));
    c2 = g->ConcatCols(
        {g->MaxRows(w_states), g->MaxRows(k_states), overlap});
  } else {
    c2 = g->MaxRows(w_states);
  }

  std::vector<nn::Graph::Var> parts = {c1, c2};
  if (config_.use_wide) {
    WideFeatures feats = ComputeWideFeatures(
        tokens, config_.use_pretrained ? res_.lm : nullptr,
        *res_.corpus_vocab);
    parts.push_back(wide_mlp_->Apply(
        g, g->Input(nn::Tensor::FromVector(1, WideFeatures::kDim,
                                           feats.ToVector()))));
  }
  nn::Graph::Var logit = head_->Apply(g, g->ConcatCols(parts));
  if (config_.use_knowledge) {
    logit = g->Add(logit,
                   know_skip_->Apply(
                       g, g->Input(nn::Tensor::FromVector(
                              1, kKnowledgeFeatureDim,
                              KnowledgeOverlapFeatures(tokens)))));
  }
  return logit;
}

std::vector<float> ConceptClassifier::KnowledgeOverlapFeatures(
    const std::vector<std::string>& tokens) const {
  size_t with_gloss = 0;
  size_t pairs = 0, overlapping = 0;
  float max_overlap = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::vector<std::string> gloss = res_.gloss_lookup(tokens[i]);
    if (gloss.empty()) continue;
    ++with_gloss;
    std::unordered_set<std::string> gloss_set(gloss.begin(), gloss.end());
    for (size_t j = 0; j < tokens.size(); ++j) {
      if (i == j) continue;
      ++pairs;
      if (gloss_set.count(tokens[j])) {
        ++overlapping;
        max_overlap = 1.0f;
      }
    }
  }
  float mean_overlap =
      pairs > 0 ? static_cast<float>(overlapping) / pairs : 0.0f;
  float gloss_rate = tokens.empty()
                         ? 0.0f
                         : static_cast<float>(with_gloss) / tokens.size();
  return {max_overlap, mean_overlap, gloss_rate};
}

double ConceptClassifier::Score(const std::vector<std::string>& tokens) const {
  ALICOCO_CHECK(trained_);
  if (tokens.empty()) return 0.0;
  nn::Graph g;
  float x = g.Value(Logit(&g, tokens, /*train=*/false, nullptr)).At(0, 0);
  return 1.0 / (1.0 + std::exp(-static_cast<double>(x)));
}

ConceptClassifier::TestMetrics ConceptClassifier::Evaluate(
    const std::vector<LabeledConcept>& test) const {
  std::vector<double> scores;
  std::vector<int> labels;
  scores.reserve(test.size());
  for (const auto& sample : test) {
    scores.push_back(Score(sample.tokens));
    labels.push_back(sample.label);
  }
  TestMetrics m;
  m.binary = eval::ComputeBinaryMetrics(scores, labels, 0.5);
  m.auc = eval::Auc(scores, labels);
  return m;
}

}  // namespace alicoco::concepts
