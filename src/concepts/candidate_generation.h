// Candidate e-commerce concept generation (Section 5.2.1).
//
// Two generators, as in the paper: an AutoPhrase-style miner that extracts
// high-quality phrases from corpora (frequency + cohesion scoring), and a
// pattern combiner that composes primitive concepts of specific classes
// ("[Function] [Category] for [Event]", Table 1) to cover needs that are
// too rare to be mined from text ("indoor barbecue").

#ifndef ALICOCO_CONCEPTS_CANDIDATE_GENERATION_H_
#define ALICOCO_CONCEPTS_CANDIDATE_GENERATION_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "kg/concept_net.h"

namespace alicoco::concepts {

/// A candidate phrase with its mining score.
struct PhraseCandidate {
  std::vector<std::string> tokens;
  double score = 0;    ///< frequency x cohesion
  size_t frequency = 0;
};

/// AutoPhrase-style frequent-phrase miner.
class PhraseMiner {
 public:
  /// `min_count` — minimum n-gram frequency; `max_len` — longest phrase.
  explicit PhraseMiner(size_t min_count = 3, size_t max_len = 4)
      : min_count_(min_count), max_len_(max_len) {}

  /// Mines candidate phrases (length >= 2) ranked by score. Cohesion is
  /// normalized pointwise mutual information between the phrase's best
  /// split halves; stopword-initial/final phrases are rejected.
  std::vector<PhraseCandidate> Mine(
      const std::vector<std::vector<std::string>>& sentences,
      const std::vector<std::string>& stopwords) const;

 private:
  size_t min_count_;
  size_t max_len_;
};

/// One Table-1 style pattern: a sequence of slots, each either a taxonomy
/// class (filled by a primitive concept of that class subtree) or a literal
/// function word.
struct ConceptPattern {
  struct Slot {
    bool literal = false;
    std::string word;      ///< literal word (when literal)
    std::string cls;       ///< taxonomy class name (when !literal)
  };
  std::vector<Slot> slots;

  /// Parses "Function Category for:lit Event" (":lit" marks literals).
  static ConceptPattern Parse(const std::string& spec);
};

/// Composes new candidates from primitive concepts by pattern.
class PatternCombiner {
 public:
  /// `net` supplies concept pools per class; must outlive the combiner.
  explicit PatternCombiner(const kg::ConceptNet* net);

  /// Generates up to `limit` distinct candidates for a pattern.
  std::vector<std::vector<std::string>> Generate(const ConceptPattern& pattern,
                                                 size_t limit, Rng* rng) const;

 private:
  const kg::ConceptNet* net_;
};

}  // namespace alicoco::concepts

#endif  // ALICOCO_CONCEPTS_CANDIDATE_GENERATION_H_
