// The five criteria of a good e-commerce concept (Section 5.1) — heuristic
// prechecks and the wide-feature extraction of Figure 5.

#ifndef ALICOCO_CONCEPTS_CRITERIA_H_
#define ALICOCO_CONCEPTS_CRITERIA_H_

#include <string>
#include <vector>

#include "text/ngram_lm.h"
#include "text/vocabulary.h"

namespace alicoco::concepts {

/// Cheap structural checks (Correctness/Clarity proxies): token count in
/// [1, 6], no immediate duplicate tokens, all tokens non-empty alphanumeric.
bool PassesBasicCriteria(const std::vector<std::string>& tokens);

/// Pre-calculated wide features (Figure 5's Wide side): char/word counts,
/// language-model fluency (the BERT-perplexity substitute), word popularity
/// in the corpus, and OOV rate.
struct WideFeatures {
  static constexpr int kDim = 8;
  float num_chars = 0;
  float num_words = 0;
  float avg_word_len = 0;
  float lm_score = 0;        ///< mean log-prob per token (0 when lm == null)
  float lm_perplexity = 0;   ///< scaled perplexity (0 when lm == null)
  float avg_popularity = 0;  ///< mean log(1+count) of tokens in corpus vocab
  float min_popularity = 0;  ///< min log(1+count)
  float oov_rate = 0;        ///< fraction of tokens unknown to the vocab

  /// Dense vector for the model input.
  std::vector<float> ToVector() const;
};

WideFeatures ComputeWideFeatures(const std::vector<std::string>& tokens,
                                 const text::NgramLm* lm,
                                 const text::Vocabulary& corpus_vocab);

}  // namespace alicoco::concepts

#endif  // ALICOCO_CONCEPTS_CRITERIA_H_
