#include "concepts/criteria.h"

#include <cctype>
#include <cmath>

namespace alicoco::concepts {

bool PassesBasicCriteria(const std::vector<std::string>& tokens) {
  if (tokens.empty() || tokens.size() > 6) return false;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].empty()) return false;
    for (char c : tokens[i]) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') {
        return false;
      }
    }
    if (i > 0 && tokens[i] == tokens[i - 1]) return false;
  }
  return true;
}

std::vector<float> WideFeatures::ToVector() const {
  return {num_chars,      num_words,      avg_word_len, lm_score,
          lm_perplexity,  avg_popularity, min_popularity, oov_rate};
}

WideFeatures ComputeWideFeatures(const std::vector<std::string>& tokens,
                                 const text::NgramLm* lm,
                                 const text::Vocabulary& corpus_vocab) {
  WideFeatures f;
  if (tokens.empty()) return f;
  size_t chars = 0;
  double pop_sum = 0;
  double pop_min = 1e30;
  size_t oov = 0;
  for (const auto& t : tokens) {
    chars += t.size();
    int id = corpus_vocab.Id(t);
    if (id == text::Vocabulary::kUnkId) {
      ++oov;
      pop_min = 0;
      continue;
    }
    double pop = std::log1p(static_cast<double>(corpus_vocab.Count(id)));
    pop_sum += pop;
    pop_min = std::min(pop_min, pop);
  }
  f.num_chars = static_cast<float>(chars) / 10.0f;  // mild scaling
  f.num_words = static_cast<float>(tokens.size());
  f.avg_word_len =
      static_cast<float>(chars) / static_cast<float>(tokens.size());
  f.avg_popularity =
      static_cast<float>(pop_sum / static_cast<double>(tokens.size()));
  f.min_popularity = static_cast<float>(pop_min >= 1e30 ? 0 : pop_min);
  f.oov_rate =
      static_cast<float>(oov) / static_cast<float>(tokens.size());
  if (lm != nullptr) {
    double score = lm->ScoreSentence(tokens);
    f.lm_score = static_cast<float>(score);
    // Perplexity grows fast; log-scale it to keep features comparable.
    f.lm_perplexity = static_cast<float>(std::log1p(lm->Perplexity(tokens)));
  }
  return f;
}

}  // namespace alicoco::concepts
