#include "concepts/candidate_generation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace alicoco::concepts {

std::vector<PhraseCandidate> PhraseMiner::Mine(
    const std::vector<std::vector<std::string>>& sentences,
    const std::vector<std::string>& stopwords) const {
  std::unordered_set<std::string> stop(stopwords.begin(), stopwords.end());
  // Count n-grams up to max_len_.
  std::unordered_map<std::string, size_t> counts;
  size_t total_unigrams = 0;
  for (const auto& tokens : sentences) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      ++total_unigrams;
      std::string key;
      for (size_t l = 1; l <= max_len_ && i + l <= tokens.size(); ++l) {
        if (l > 1) key += ' ';
        key += tokens[i + l - 1];
        ++counts[key];
      }
    }
  }
  if (total_unigrams == 0) return {};

  auto prob = [&](const std::string& key) {
    auto it = counts.find(key);
    return it == counts.end()
               ? 0.0
               : static_cast<double>(it->second) /
                     static_cast<double>(total_unigrams);
  };

  std::vector<PhraseCandidate> out;
  for (const auto& [key, freq] : counts) {
    if (freq < min_count_) continue;
    auto tokens = SplitString(key, ' ');
    if (tokens.size() < 2) continue;
    if (stop.count(tokens.front()) || stop.count(tokens.back())) continue;
    // Cohesion: min normalized PMI over all binary splits.
    double p_phrase = prob(key);
    double best_split = 1e300;
    for (size_t split = 1; split < tokens.size(); ++split) {
      std::string left = JoinStrings(
          std::vector<std::string>(tokens.begin(), tokens.begin() + split),
          " ");
      std::string right = JoinStrings(
          std::vector<std::string>(tokens.begin() + split, tokens.end()),
          " ");
      double denom = prob(left) * prob(right);
      double pmi = denom > 0 ? std::log(p_phrase / denom) : 0.0;
      best_split = std::min(best_split, pmi);
    }
    double npmi = best_split / (-std::log(std::max(p_phrase, 1e-12)));
    if (npmi <= 0) continue;
    PhraseCandidate cand;
    cand.tokens = tokens;
    cand.frequency = freq;
    cand.score = static_cast<double>(freq) * npmi;
    out.push_back(std::move(cand));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.tokens < b.tokens;
  });
  return out;
}

ConceptPattern ConceptPattern::Parse(const std::string& spec) {
  ConceptPattern pattern;
  for (const auto& piece : SplitWhitespace(spec)) {
    Slot slot;
    if (EndsWith(piece, ":lit")) {
      slot.literal = true;
      slot.word = piece.substr(0, piece.size() - 4);
    } else {
      slot.cls = piece;
    }
    pattern.slots.push_back(std::move(slot));
  }
  return pattern;
}

PatternCombiner::PatternCombiner(const kg::ConceptNet* net) : net_(net) {
  ALICOCO_CHECK(net != nullptr);
}

std::vector<std::vector<std::string>> PatternCombiner::Generate(
    const ConceptPattern& pattern, size_t limit, Rng* rng) const {
  // Pre-resolve the concept pool of every class slot.
  std::vector<std::vector<kg::ConceptId>> pools(pattern.slots.size());
  for (size_t s = 0; s < pattern.slots.size(); ++s) {
    const auto& slot = pattern.slots[s];
    if (slot.literal) continue;
    auto cls = net_->taxonomy().Find(slot.cls);
    if (!cls.ok()) return {};
    for (kg::ClassId sub : net_->taxonomy().Subtree(*cls)) {
      for (kg::ConceptId c : net_->PrimitivesOfClass(sub)) {
        pools[s].push_back(c);
      }
    }
    if (pools[s].empty()) return {};
  }

  std::vector<std::vector<std::string>> out;
  std::unordered_set<std::string> seen;
  size_t attempts = limit * 20 + 64;
  for (size_t a = 0; a < attempts && out.size() < limit; ++a) {
    std::vector<std::string> tokens;
    for (size_t s = 0; s < pattern.slots.size(); ++s) {
      const auto& slot = pattern.slots[s];
      if (slot.literal) {
        tokens.push_back(slot.word);
      } else {
        kg::ConceptId c = pools[s][rng->Uniform(pools[s].size())];
        for (const auto& t : text::Tokenize(net_->Get(c).surface)) {
          tokens.push_back(t);
        }
      }
    }
    std::string key = JoinStrings(tokens, " ");
    if (seen.insert(key).second) out.push_back(std::move(tokens));
  }
  return out;
}

}  // namespace alicoco::concepts
