// Graphviz DOT export of concept-net neighborhoods — inspection tooling for
// the four-layer structure (render with `dot -Tsvg`).

#ifndef ALICOCO_KG_GRAPHVIZ_H_
#define ALICOCO_KG_GRAPHVIZ_H_

#include <string>

#include "kg/concept_net.h"

namespace alicoco::kg {

/// What to include in an export.
struct GraphvizOptions {
  size_t max_items = 6;        ///< items per e-commerce concept
  size_t max_hypernym_hops = 2;
  bool include_glosses = false;
  bool include_typed_relations = true;
};

/// The neighborhood of one e-commerce concept: its interpretation, the
/// hypernym context of those primitives, and a sample of associated items
/// (edge labels carry probabilities when present). Returns a DOT digraph.
std::string EcConceptNeighborhoodDot(const ConceptNet& net, EcConceptId id,
                                     const GraphvizOptions& options = {});

/// The hypernym neighborhood of one primitive concept (ancestors up to
/// `max_hypernym_hops`, direct hyponyms, typed relations).
std::string PrimitiveNeighborhoodDot(const ConceptNet& net, ConceptId id,
                                     const GraphvizOptions& options = {});

}  // namespace alicoco::kg

#endif  // ALICOCO_KG_GRAPHVIZ_H_
