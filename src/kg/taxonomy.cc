#include "kg/taxonomy.h"

#include "common/logging.h"

namespace alicoco::kg {

Taxonomy::Taxonomy() {
  ClassInfo root;
  root.id = ClassId(0);
  root.name = "Root";
  root.depth = 0;
  classes_.push_back(root);
  by_name_["Root"] = root.id;
}

Result<ClassId> Taxonomy::AddClass(const std::string& name, ClassId parent) {
  if (by_name_.count(name)) {
    return Status::AlreadyExists("class exists: " + name);
  }
  if (!Contains(parent)) {
    return Status::NotFound("unknown parent class for " + name);
  }
  ClassId id(static_cast<uint32_t>(classes_.size()));
  ClassInfo info;
  info.id = id;
  info.name = name;
  info.parent = parent;
  info.depth = classes_[parent.value].depth + 1;
  classes_.push_back(info);
  classes_[parent.value].children.push_back(id);
  by_name_[name] = id;
  return id;
}

Result<ClassId> Taxonomy::AddDomain(const std::string& name) {
  return AddClass(name, root());
}

Result<ClassId> Taxonomy::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no class named " + name);
  return it->second;
}

const ClassInfo& Taxonomy::Get(ClassId id) const {
  ALICOCO_CHECK(Contains(id)) << "invalid class id " << id.value;
  return classes_[id.value];
}

bool Taxonomy::IsAncestor(ClassId ancestor, ClassId descendant) const {
  if (!Contains(ancestor) || !Contains(descendant)) return false;
  ClassId cur = descendant;
  for (;;) {
    if (cur == ancestor) return true;
    if (cur == root()) return false;
    cur = classes_[cur.value].parent;
  }
}

ClassId Taxonomy::Domain(ClassId id) const {
  if (!Contains(id) || id == root()) return ClassId();
  ClassId cur = id;
  while (classes_[cur.value].depth > 1) cur = classes_[cur.value].parent;
  return cur;
}

std::vector<ClassId> Taxonomy::PathToRoot(ClassId id) const {
  std::vector<ClassId> path;
  if (!Contains(id)) return path;
  ClassId cur = id;
  for (;;) {
    path.push_back(cur);
    if (cur == root()) break;
    cur = classes_[cur.value].parent;
  }
  return path;
}

std::vector<ClassId> Taxonomy::Subtree(ClassId id) const {
  std::vector<ClassId> out;
  if (!Contains(id)) return out;
  std::vector<ClassId> stack = {id};
  while (!stack.empty()) {
    ClassId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (ClassId child : classes_[cur.value].children) stack.push_back(child);
  }
  return out;
}

std::vector<ClassId> Taxonomy::Leaves(ClassId id) const {
  std::vector<ClassId> out;
  for (ClassId c : Subtree(id)) {
    if (classes_[c.value].children.empty()) out.push_back(c);
  }
  return out;
}

std::vector<ClassId> Taxonomy::Domains() const {
  return classes_[0].children;
}

}  // namespace alicoco::kg
