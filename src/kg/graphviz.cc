#include "kg/graphviz.h"

#include <sstream>
#include <unordered_set>

#include "common/string_util.h"

namespace alicoco::kg {
namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string EcNode(EcConceptId id) {
  return "ec" + std::to_string(id.value);
}
std::string PrimNode(ConceptId id) {
  return "p" + std::to_string(id.value);
}
std::string ItemNode(ItemId id) {
  return "i" + std::to_string(id.value);
}

void EmitPrimitive(const ConceptNet& net, ConceptId id,
                   const GraphvizOptions& options, std::ostringstream* out,
                   std::unordered_set<uint32_t>* emitted) {
  if (!emitted->insert(id.value).second) return;
  const auto& concept_info = net.Get(id);
  const auto& tax = net.taxonomy();
  std::string label = concept_info.surface + "\\n[" +
                      tax.Get(tax.Domain(concept_info.cls)).name + "]";
  if (options.include_glosses && !concept_info.gloss.empty()) {
    label += "\\n" + Escape(JoinStrings(concept_info.gloss, " "));
  }
  *out << "  " << PrimNode(id) << " [shape=box, style=rounded, label=\""
       << Escape(label) << "\"];\n";
}

void EmitHypernyms(const ConceptNet& net, ConceptId id, size_t hops,
                   const GraphvizOptions& options, std::ostringstream* out,
                   std::unordered_set<uint32_t>* emitted) {
  if (hops == 0) return;
  for (ConceptId hyper : net.Hypernyms(id)) {
    EmitPrimitive(net, hyper, options, out, emitted);
    *out << "  " << PrimNode(id) << " -> " << PrimNode(hyper)
         << " [label=\"isA\"];\n";
    EmitHypernyms(net, hyper, hops - 1, options, out, emitted);
  }
}

void EmitTypedRelations(const ConceptNet& net, ConceptId id,
                        const GraphvizOptions& options,
                        std::ostringstream* out,
                        std::unordered_set<uint32_t>* emitted) {
  if (!options.include_typed_relations) return;
  for (const auto& rel : net.TypedRelationsFrom(id)) {
    EmitPrimitive(net, rel.object, options, out, emitted);
    *out << "  " << PrimNode(id) << " -> " << PrimNode(rel.object)
         << " [label=\"" << Escape(rel.relation) << "\", style=dashed];\n";
  }
}

}  // namespace

std::string EcConceptNeighborhoodDot(const ConceptNet& net, EcConceptId id,
                                     const GraphvizOptions& options) {
  std::ostringstream out;
  out << "digraph alicoco {\n  rankdir=LR;\n";
  const auto& ec = net.Get(id);
  out << "  " << EcNode(id)
      << " [shape=doubleoctagon, style=filled, fillcolor=\"#ffe0b2\", "
         "label=\""
      << Escape(ec.surface) << "\"];\n";

  std::unordered_set<uint32_t> emitted;
  for (ConceptId prim : net.PrimitivesForEc(id)) {
    EmitPrimitive(net, prim, options, &out, &emitted);
    out << "  " << EcNode(id) << " -> " << PrimNode(prim)
        << " [label=\"interprets\"];\n";
    EmitHypernyms(net, prim, options.max_hypernym_hops, options, &out,
                  &emitted);
    EmitTypedRelations(net, prim, options, &out, &emitted);
  }
  for (EcConceptId parent : net.EcParents(id)) {
    out << "  " << EcNode(parent) << " [shape=doubleoctagon, label=\""
        << Escape(net.Get(parent).surface) << "\"];\n";
    out << "  " << EcNode(id) << " -> " << EcNode(parent)
        << " [label=\"isA\"];\n";
  }
  size_t shown = 0;
  for (const auto& [item, probability] : net.ItemsForEcRanked(id)) {
    if (shown++ >= options.max_items) break;
    out << "  " << ItemNode(item) << " [shape=note, label=\""
        << Escape(JoinStrings(net.Get(item).title, " ")) << "\"];\n";
    out << "  " << ItemNode(item) << " -> " << EcNode(id) << " [label=\""
        << StringPrintf("%.2f", probability) << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string PrimitiveNeighborhoodDot(const ConceptNet& net, ConceptId id,
                                     const GraphvizOptions& options) {
  std::ostringstream out;
  out << "digraph alicoco {\n  rankdir=BT;\n";
  std::unordered_set<uint32_t> emitted;
  EmitPrimitive(net, id, options, &out, &emitted);
  EmitHypernyms(net, id, options.max_hypernym_hops, options, &out, &emitted);
  for (ConceptId hypo : net.Hyponyms(id)) {
    EmitPrimitive(net, hypo, options, &out, &emitted);
    out << "  " << PrimNode(hypo) << " -> " << PrimNode(id)
        << " [label=\"isA\"];\n";
  }
  EmitTypedRelations(net, id, options, &out, &emitted);
  out << "}\n";
  return out.str();
}

}  // namespace alicoco::kg
