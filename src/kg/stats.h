// Net statistics in the shape of Table 2.

#ifndef ALICOCO_KG_STATS_H_
#define ALICOCO_KG_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/concept_net.h"

namespace alicoco::kg {

/// Aggregate counts over a ConceptNet, mirroring the paper's Table 2 rows.
struct NetStatistics {
  size_t num_primitive_concepts = 0;
  size_t num_ec_concepts = 0;
  size_t num_items = 0;
  size_t total_relations = 0;

  /// (domain name, primitive-concept count) per first-level class.
  std::vector<std::pair<std::string, size_t>> per_domain;

  size_t isa_primitive = 0;      ///< isA edges among primitive concepts
  size_t isa_ec = 0;             ///< isA edges among e-commerce concepts
  size_t item_primitive = 0;     ///< item - primitive links
  size_t item_ec = 0;            ///< item - e-commerce links
  size_t ec_primitive = 0;       ///< e-commerce - primitive links
  size_t typed_relations = 0;    ///< schema-typed relations

  double avg_primitives_per_item = 0;  ///< "each item ... 14 primitive"
  double avg_ec_per_item = 0;          ///< "... 135 e-commerce"
  double avg_items_per_ec = 0;         ///< "each e-commerce ... 74,420 items"
  double item_linkage_rate = 0;        ///< fraction of items with any link
};

/// Computes statistics over the current net contents.
NetStatistics ComputeStatistics(const ConceptNet& net);

/// Renders statistics as a Table-2-style ASCII table.
std::string StatisticsToTable(const NetStatistics& stats);

}  // namespace alicoco::kg

#endif  // ALICOCO_KG_STATS_H_
