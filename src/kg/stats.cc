#include "kg/stats.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/table_printer.h"

namespace alicoco::kg {

NetStatistics ComputeStatistics(const ConceptNet& net) {
  NetStatistics s;
  s.num_primitive_concepts = net.num_primitive_concepts();
  s.num_ec_concepts = net.num_ec_concepts();
  s.num_items = net.num_items();
  s.isa_primitive = net.num_isa_primitive();
  s.isa_ec = net.num_isa_ec();
  s.item_primitive = net.num_item_primitive_links();
  s.item_ec = net.num_item_ec_links();
  s.ec_primitive = net.num_ec_primitive_links();
  s.typed_relations = net.typed_relations().size();
  s.total_relations = s.isa_primitive + s.isa_ec + s.item_primitive +
                      s.item_ec + s.ec_primitive + s.typed_relations;

  const Taxonomy& tax = net.taxonomy();
  for (ClassId domain : tax.Domains()) {
    size_t count = 0;
    for (ClassId cls : tax.Subtree(domain)) {
      count += net.PrimitivesOfClass(cls).size();
    }
    s.per_domain.emplace_back(tax.Get(domain).name, count);
  }
  std::sort(s.per_domain.begin(), s.per_domain.end());

  size_t linked_items = 0;
  for (const Item& item : net.items()) {
    bool linked = !net.PrimitivesForItem(item.id).empty() ||
                  !net.EcConceptsForItem(item.id).empty();
    linked_items += linked;
  }
  if (s.num_items > 0) {
    s.avg_primitives_per_item =
        static_cast<double>(s.item_primitive) / s.num_items;
    s.avg_ec_per_item = static_cast<double>(s.item_ec) / s.num_items;
    s.item_linkage_rate = static_cast<double>(linked_items) / s.num_items;
  }
  if (s.num_ec_concepts > 0) {
    s.avg_items_per_ec = static_cast<double>(s.item_ec) / s.num_ec_concepts;
  }
  return s;
}

std::string StatisticsToTable(const NetStatistics& s) {
  TablePrinter overall("Overall");
  overall.SetHeader({"metric", "value"});
  overall.AddRow({"# Primitive concepts", std::to_string(s.num_primitive_concepts)});
  overall.AddRow({"# E-commerce concepts", std::to_string(s.num_ec_concepts)});
  overall.AddRow({"# Items", std::to_string(s.num_items)});
  overall.AddRow({"# Relations", std::to_string(s.total_relations)});

  TablePrinter domains("Primitive concepts per domain");
  domains.SetHeader({"domain", "count"});
  for (const auto& [name, count] : s.per_domain) {
    domains.AddRow({name, std::to_string(count)});
  }

  TablePrinter rels("Relations");
  rels.SetHeader({"relation", "count"});
  rels.AddRow({"# IsA in primitive concepts", std::to_string(s.isa_primitive)});
  rels.AddRow({"# IsA in e-commerce concepts", std::to_string(s.isa_ec)});
  rels.AddRow({"# Item - Primitive concepts", std::to_string(s.item_primitive)});
  rels.AddRow({"# Item - E-commerce concepts", std::to_string(s.item_ec)});
  rels.AddRow({"# E-commerce - Primitive cpts", std::to_string(s.ec_primitive)});
  rels.AddRow({"# Schema-typed relations", std::to_string(s.typed_relations)});

  TablePrinter density("Linkage");
  density.SetHeader({"metric", "value"});
  density.AddRow({"item linkage rate", TablePrinter::Num(s.item_linkage_rate, 3)});
  density.AddRow({"avg primitive concepts per item",
                  TablePrinter::Num(s.avg_primitives_per_item, 2)});
  density.AddRow({"avg e-commerce concepts per item",
                  TablePrinter::Num(s.avg_ec_per_item, 2)});
  density.AddRow({"avg items per e-commerce concept",
                  TablePrinter::Num(s.avg_items_per_ec, 2)});

  return overall.ToString() + domains.ToString() + rels.ToString() +
         density.ToString();
}

}  // namespace alicoco::kg
