// Static analysis over a built ConceptNet (the data counterpart of the
// code-level sanitizers): audits the structural invariants the paper
// assumes before a net is allowed to serve traffic.
//
// Invariants checked:
//   - dense, unique node ids (index i holds the node with id i) for
//     primitive concepts, e-commerce concepts, items, and taxonomy classes
//   - taxonomy is a rooted tree: valid parents, depth = parent depth + 1,
//     parent/children lists mirrored, no cycles
//   - every primitive concept and item references a live taxonomy class
//   - surface indexes agree with node storage (every sense findable, no
//     duplicate (surface, class) pair, no empty surfaces)
//   - no dangling edge endpoints in any adjacency map, and every forward
//     edge has its reverse twin (and vice versa)
//   - primitive and e-commerce isA graphs are acyclic
//   - edge counters match the stored adjacency
//   - every item-concept association carries a probability in (0, 1], with
//     no stray probability entries
//   - typed relations connect live concepts and satisfy the schema
//
// The validator has read-only friend access to ConceptNet so it can see
// corruption (e.g. a dangling map key) that the public API masks.

#ifndef ALICOCO_KG_VALIDATOR_H_
#define ALICOCO_KG_VALIDATOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "kg/concept_net.h"

namespace alicoco::kg {

/// Machine-readable classification of a structural defect.
enum class ValidationCode {
  kIdMismatch,          ///< node at index i does not carry id i
  kTaxonomyBroken,      ///< bad parent/depth/children or tree cycle
  kDeadClassReference,  ///< node typed by a class the taxonomy lacks
  kBadSurface,          ///< empty surface or index/storage disagreement
  kDuplicateNode,       ///< two senses share (surface, class) or surface
  kDanglingEdge,        ///< adjacency endpoint outside the node tables
  kAsymmetricEdge,      ///< forward edge without its reverse twin
  kIsACycle,            ///< primitive or ec isA graph has a cycle
  kCountMismatch,       ///< edge counter disagrees with stored adjacency
  kBadProbability,      ///< item-ec edge with probability outside (0, 1]
  kSchemaViolation,     ///< typed relation fails its schema signature
};

/// Stable name for a validation code ("DanglingEdge").
const char* ValidationCodeToString(ValidationCode code);

/// One defect found by the audit.
struct ValidationIssue {
  ValidationCode code;
  std::string message;
};

/// Outcome of a full audit.
struct ValidationReport {
  std::vector<ValidationIssue> issues;
  size_t checks_run = 0;  ///< individual invariant evaluations performed
  bool truncated = false;  ///< true when max_issues stopped the audit early

  bool ok() const { return issues.empty(); }
  /// Human-readable listing ("concept net valid: n checks" when clean).
  std::string Summary() const;
};

/// The audit pass. Stateless; cheap to construct.
class Validator {
 public:
  struct Options {
    size_t max_issues = 100;  ///< stop collecting beyond this many defects
  };

  Validator() = default;
  explicit Validator(Options options) : options_(options) {}

  /// Runs every invariant check against `net`.
  ValidationReport Validate(const ConceptNet& net) const;

 private:
  Options options_;
};

}  // namespace alicoco::kg

#endif  // ALICOCO_KG_VALIDATOR_H_
