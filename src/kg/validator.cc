#include "kg/validator.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"

namespace alicoco::kg {
namespace {

template <typename K, typename V>
bool EdgeExists(const std::unordered_map<K, std::vector<V>>& map, K key,
                V value) {
  auto it = map.find(key);
  if (it == map.end()) return false;
  return std::find(it->second.begin(), it->second.end(), value) !=
         it->second.end();
}

template <typename K, typename V>
size_t EdgeCount(const std::unordered_map<K, std::vector<V>>& map) {
  size_t total = 0;
  for (const auto& [key, values] : map) total += values.size();
  return total;
}

// Iterative three-color DFS cycle detection over an adjacency map keyed by
// dense ids in [0, n).
template <typename Id>
bool HasCycle(size_t n,
              const std::unordered_map<Id, std::vector<Id>>& edges,
              uint32_t* cycle_node) {
  enum : uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<uint8_t> color(n, kWhite);
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (uint32_t start = 0; start < n; ++start) {
    if (color[start] != kWhite) continue;
    stack.emplace_back(start, 0);
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [node, next_edge] = stack.back();
      auto it = edges.find(Id(node));
      const auto* out = it == edges.end() ? nullptr : &it->second;
      if (out == nullptr || next_edge >= out->size()) {
        color[node] = kBlack;
        stack.pop_back();
        continue;
      }
      uint32_t target = (*out)[next_edge++].value;
      if (target >= n) continue;  // dangling, reported separately
      if (color[target] == kGray) {
        *cycle_node = target;
        return true;
      }
      if (color[target] == kWhite) {
        color[target] = kGray;
        stack.emplace_back(target, 0);
      }
    }
  }
  return false;
}

}  // namespace

const char* ValidationCodeToString(ValidationCode code) {
  switch (code) {
    case ValidationCode::kIdMismatch:
      return "IdMismatch";
    case ValidationCode::kTaxonomyBroken:
      return "TaxonomyBroken";
    case ValidationCode::kDeadClassReference:
      return "DeadClassReference";
    case ValidationCode::kBadSurface:
      return "BadSurface";
    case ValidationCode::kDuplicateNode:
      return "DuplicateNode";
    case ValidationCode::kDanglingEdge:
      return "DanglingEdge";
    case ValidationCode::kAsymmetricEdge:
      return "AsymmetricEdge";
    case ValidationCode::kIsACycle:
      return "IsACycle";
    case ValidationCode::kCountMismatch:
      return "CountMismatch";
    case ValidationCode::kBadProbability:
      return "BadProbability";
    case ValidationCode::kSchemaViolation:
      return "SchemaViolation";
  }
  return "?";
}

std::string ValidationReport::Summary() const {
  if (ok()) {
    return StringPrintf("concept net valid: %zu checks passed", checks_run);
  }
  std::string out = StringPrintf("concept net INVALID: %zu issue(s), %zu checks run\n",
                                 issues.size(), checks_run);
  for (const auto& issue : issues) {
    out += StringPrintf("  [%s] %s\n", ValidationCodeToString(issue.code),
                        issue.message.c_str());
  }
  if (truncated) out += "  ... issue limit reached, audit truncated\n";
  return out;
}

ValidationReport Validator::Validate(const ConceptNet& net) const {
  ValidationReport report;
  auto add = [&](ValidationCode code, std::string msg) {
    if (report.issues.size() >= options_.max_issues) {
      report.truncated = true;
      return;
    }
    report.issues.push_back(ValidationIssue{code, std::move(msg)});
  };
  // `make_msg` is only invoked on failure so passing checks cost nothing.
  auto check = [&](bool ok, ValidationCode code, auto&& make_msg) {
    ++report.checks_run;
    if (!ok) add(code, make_msg());
  };

  const Taxonomy& tax = net.taxonomy_;
  const size_t num_classes = tax.size();
  const size_t num_prims = net.primitives_.size();
  const size_t num_ec = net.ec_concepts_.size();
  const size_t num_items = net.items_.size();

  // ---- taxonomy: dense ids, rooted tree, mirrored parent/children ----
  for (uint32_t i = 0; i < num_classes; ++i) {
    const ClassInfo& info = tax.Get(ClassId(i));
    check(info.id.value == i, ValidationCode::kIdMismatch, [&] {
      return StringPrintf("taxonomy slot %u holds class id %u", i,
                          info.id.value);
    });
    if (i == 0) {
      check(info.depth == 0, ValidationCode::kTaxonomyBroken, [&] {
        return StringPrintf("root class has depth %d", info.depth);
      });
    } else {
      bool parent_ok = tax.Contains(info.parent);
      check(parent_ok, ValidationCode::kTaxonomyBroken, [&] {
        return StringPrintf("class %s (%u) has unknown parent %u",
                            info.name.c_str(), i, info.parent.value);
      });
      if (parent_ok) {
        const ClassInfo& parent = tax.Get(info.parent);
        check(info.depth == parent.depth + 1,
              ValidationCode::kTaxonomyBroken, [&] {
                return StringPrintf(
                    "class %s depth %d but parent %s depth %d",
                    info.name.c_str(), info.depth, parent.name.c_str(),
                    parent.depth);
              });
        check(std::find(parent.children.begin(), parent.children.end(),
                        info.id) != parent.children.end(),
              ValidationCode::kTaxonomyBroken, [&] {
                return StringPrintf(
                    "class %s missing from children of its parent %s",
                    info.name.c_str(), parent.name.c_str());
              });
      }
    }
    for (ClassId child : info.children) {
      bool child_ok = tax.Contains(child);
      check(child_ok, ValidationCode::kTaxonomyBroken, [&] {
        return StringPrintf("class %s lists unknown child %u",
                            info.name.c_str(), child.value);
      });
      if (child_ok) {
        check(tax.Get(child).parent == info.id,
              ValidationCode::kTaxonomyBroken, [&] {
                return StringPrintf(
                    "class %s lists child %s whose parent is %u",
                    info.name.c_str(), tax.Get(child).name.c_str(),
                    tax.Get(child).parent.value);
              });
      }
    }
    // Parent-chain walk bounded by the class count detects cycles even when
    // depths were forged consistently.
    size_t steps = 0;
    ClassId cur = ClassId(i);
    while (cur.value != 0 && tax.Contains(cur) && steps <= num_classes) {
      cur = tax.Get(cur).parent;
      ++steps;
    }
    check(steps <= num_classes, ValidationCode::kTaxonomyBroken, [&] {
      return StringPrintf("parent chain from class %s never reaches root",
                          info.name.c_str());
    });
  }

  // ---- primitive concepts: ids, surfaces, classes, sense uniqueness ----
  std::unordered_set<std::string> seen_senses;
  for (uint32_t i = 0; i < num_prims; ++i) {
    const PrimitiveConcept& p = net.primitives_[i];
    check(p.id.value == i, ValidationCode::kIdMismatch, [&] {
      return StringPrintf("primitive slot %u holds id %u", i, p.id.value);
    });
    check(!p.surface.empty(), ValidationCode::kBadSurface, [&] {
      return StringPrintf("primitive %u has an empty surface", i);
    });
    check(tax.Contains(p.cls), ValidationCode::kDeadClassReference, [&] {
      return StringPrintf("primitive '%s' (%u) typed by unknown class %u",
                          p.surface.c_str(), i, p.cls.value);
    });
    std::string sense_key = p.surface + "\x1f" + std::to_string(p.cls.value);
    check(seen_senses.insert(sense_key).second,
          ValidationCode::kDuplicateNode, [&] {
            return StringPrintf("duplicate sense ('%s', class %u)",
                                p.surface.c_str(), p.cls.value);
          });
    auto it = net.primitive_by_surface_.find(p.surface);
    check(it != net.primitive_by_surface_.end() &&
              std::find(it->second.begin(), it->second.end(), p.id) !=
                  it->second.end(),
          ValidationCode::kBadSurface, [&] {
            return StringPrintf(
                "primitive '%s' (%u) missing from the surface index",
                p.surface.c_str(), i);
          });
  }
  for (const auto& [surface, ids] : net.primitive_by_surface_) {
    for (ConceptId id : ids) {
      check(id.value < num_prims &&
                net.primitives_[id.value].surface == surface,
            ValidationCode::kBadSurface, [&] {
              return StringPrintf(
                  "surface index entry '%s' -> %u does not match storage",
                  surface.c_str(), id.value);
            });
    }
  }
  for (const auto& [cls, ids] : net.primitive_by_class_) {
    for (ConceptId id : ids) {
      check(id.value < num_prims && net.primitives_[id.value].cls == cls,
            ValidationCode::kBadSurface, [&] {
              return StringPrintf(
                  "class index entry %u -> concept %u does not match storage",
                  cls.value, id.value);
            });
    }
  }

  // ---- e-commerce concepts ----
  for (uint32_t i = 0; i < num_ec; ++i) {
    const EcommerceConcept& ec = net.ec_concepts_[i];
    check(ec.id.value == i, ValidationCode::kIdMismatch, [&] {
      return StringPrintf("ec concept slot %u holds id %u", i, ec.id.value);
    });
    check(!ec.tokens.empty(), ValidationCode::kBadSurface, [&] {
      return StringPrintf("ec concept %u has no tokens", i);
    });
    check(ec.surface == JoinStrings(ec.tokens, " "),
          ValidationCode::kBadSurface, [&] {
            return StringPrintf(
                "ec concept %u surface '%s' disagrees with its tokens", i,
                ec.surface.c_str());
          });
    auto it = net.ec_by_surface_.find(ec.surface);
    check(it != net.ec_by_surface_.end() && it->second == ec.id,
          ValidationCode::kDuplicateNode, [&] {
            return StringPrintf(
                "ec concept '%s' (%u) missing from or shadowed in the "
                "surface index",
                ec.surface.c_str(), i);
          });
  }

  // ---- items ----
  for (uint32_t i = 0; i < num_items; ++i) {
    const Item& item = net.items_[i];
    check(item.id.value == i, ValidationCode::kIdMismatch, [&] {
      return StringPrintf("item slot %u holds id %u", i, item.id.value);
    });
    check(!item.title.empty(), ValidationCode::kBadSurface, [&] {
      return StringPrintf("item %u has an empty title", i);
    });
    check(tax.Contains(item.category), ValidationCode::kDeadClassReference,
          [&] {
            return StringPrintf("item %u categorized by unknown class %u", i,
                                item.category.value);
          });
  }

  // ---- adjacency: live endpoints + mirrored reverse edges ----
  auto audit_adjacency = [&](const auto& fwd, const auto& rev,
                             size_t key_limit, size_t value_limit,
                             const char* name) {
    for (const auto& [key, values] : fwd) {
      bool key_ok = key.value < key_limit;
      check(key_ok, ValidationCode::kDanglingEdge, [&] {
        return StringPrintf("%s edge from unknown node %u", name, key.value);
      });
      for (const auto& value : values) {
        bool value_ok = value.value < value_limit;
        check(value_ok, ValidationCode::kDanglingEdge, [&] {
          return StringPrintf("%s edge %u -> unknown node %u", name,
                              key.value, value.value);
        });
        if (key_ok && value_ok) {
          check(EdgeExists(rev, value, key), ValidationCode::kAsymmetricEdge,
                [&] {
                  return StringPrintf(
                      "%s edge %u -> %u has no reverse twin", name, key.value,
                      value.value);
                });
        }
      }
    }
  };
  audit_adjacency(net.hypernyms_, net.hyponyms_, num_prims, num_prims,
                  "isA");
  audit_adjacency(net.hyponyms_, net.hypernyms_, num_prims, num_prims,
                  "reverse isA");
  audit_adjacency(net.ec_parents_, net.ec_children_, num_ec, num_ec,
                  "ec isA");
  audit_adjacency(net.ec_children_, net.ec_parents_, num_ec, num_ec,
                  "reverse ec isA");
  audit_adjacency(net.ec_to_prim_, net.prim_to_ec_, num_ec, num_prims,
                  "interpretation");
  audit_adjacency(net.prim_to_ec_, net.ec_to_prim_, num_prims, num_ec,
                  "reverse interpretation");
  audit_adjacency(net.item_to_prim_, net.prim_to_item_, num_items, num_prims,
                  "item tag");
  audit_adjacency(net.prim_to_item_, net.item_to_prim_, num_prims, num_items,
                  "reverse item tag");
  audit_adjacency(net.item_to_ec_, net.ec_to_item_, num_items, num_ec,
                  "association");
  audit_adjacency(net.ec_to_item_, net.item_to_ec_, num_ec, num_items,
                  "reverse association");

  // ---- isA acyclicity ----
  uint32_t cycle_node = 0;
  check(!HasCycle(num_prims, net.hypernyms_, &cycle_node),
        ValidationCode::kIsACycle, [&] {
          return StringPrintf("primitive isA cycle through concept %u ('%s')",
                              cycle_node,
                              cycle_node < num_prims
                                  ? net.primitives_[cycle_node].surface.c_str()
                                  : "?");
        });
  check(!HasCycle(num_ec, net.ec_parents_, &cycle_node),
        ValidationCode::kIsACycle, [&] {
          return StringPrintf("ec isA cycle through concept %u", cycle_node);
        });

  // ---- edge counters ----
  auto check_count = [&](size_t counter, size_t stored, const char* name) {
    check(counter == stored, ValidationCode::kCountMismatch, [&] {
      return StringPrintf("%s counter says %zu edges but storage holds %zu",
                          name, counter, stored);
    });
  };
  check_count(net.isa_edge_count_, EdgeCount(net.hypernyms_), "isA");
  check_count(net.ec_isa_edge_count_, EdgeCount(net.ec_parents_), "ec isA");
  check_count(net.ec_prim_edge_count_, EdgeCount(net.ec_to_prim_),
              "interpretation");
  check_count(net.item_prim_edge_count_, EdgeCount(net.item_to_prim_),
              "item tag");
  check_count(net.item_ec_edge_count_, EdgeCount(net.item_to_ec_),
              "association");

  // ---- association probabilities ----
  size_t prob_edges = 0;
  for (const auto& [item, ecs] : net.item_to_ec_) {
    for (EcConceptId ec : ecs) {
      ++prob_edges;
      uint64_t key = (static_cast<uint64_t>(item.value) << 32) | ec.value;
      auto it = net.item_ec_probability_.find(key);
      bool found = it != net.item_ec_probability_.end();
      check(found, ValidationCode::kBadProbability, [&] {
        return StringPrintf("association %u -> %u has no probability",
                            item.value, ec.value);
      });
      if (found) {
        check(it->second > 0.0 && it->second <= 1.0,
              ValidationCode::kBadProbability, [&] {
                return StringPrintf(
                    "association %u -> %u has probability %g outside (0, 1]",
                    item.value, ec.value, it->second);
              });
      }
    }
  }
  check(net.item_ec_probability_.size() == prob_edges,
        ValidationCode::kBadProbability, [&] {
          return StringPrintf(
              "%zu stray probability entries without a matching edge",
              net.item_ec_probability_.size() - prob_edges);
        });

  // ---- typed relations ----
  for (size_t r = 0; r < net.typed_relations_.size(); ++r) {
    const TypedRelation& rel = net.typed_relations_[r];
    bool subject_ok = rel.subject.value < num_prims;
    bool object_ok = rel.object.value < num_prims;
    check(subject_ok, ValidationCode::kDanglingEdge, [&] {
      return StringPrintf("typed relation %zu (%s) has unknown subject %u", r,
                          rel.relation.c_str(), rel.subject.value);
    });
    check(object_ok, ValidationCode::kDanglingEdge, [&] {
      return StringPrintf("typed relation %zu (%s) has unknown object %u", r,
                          rel.relation.c_str(), rel.object.value);
    });
    if (subject_ok && object_ok) {
      Status st = net.schema_.Validate(net.taxonomy_, rel.relation,
                                       net.primitives_[rel.subject.value].cls,
                                       net.primitives_[rel.object.value].cls);
      check(st.ok(), ValidationCode::kSchemaViolation, [&] {
        return StringPrintf("typed relation %zu: %s", r,
                            st.ToString().c_str());
      });
      check(EdgeExists(net.typed_by_subject_, rel.subject, r),
            ValidationCode::kAsymmetricEdge, [&] {
              return StringPrintf(
                  "typed relation %zu missing from its subject index", r);
            });
    }
  }
  for (const auto& [subject, indices] : net.typed_by_subject_) {
    for (size_t idx : indices) {
      check(idx < net.typed_relations_.size() &&
                net.typed_relations_[idx].subject == subject,
            ValidationCode::kDanglingEdge, [&] {
              return StringPrintf(
                  "subject index for concept %u references bad relation %zu",
                  subject.value, idx);
            });
    }
  }

  return report;
}

}  // namespace alicoco::kg
