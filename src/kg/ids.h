// Strongly-typed identifiers for the four node layers of AliCoCo.
//
// Mixing a ClassId with an ItemId is a type error, not a runtime bug.

#ifndef ALICOCO_KG_IDS_H_
#define ALICOCO_KG_IDS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace alicoco::kg {

namespace internal {
/// CRTP strong typedef over a dense uint32 index.
template <typename Tag>
struct StrongId {
  uint32_t value = kInvalid;
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;

  StrongId() = default;
  explicit StrongId(uint32_t v) : value(v) {}

  bool valid() const { return value != kInvalid; }
  bool operator==(const StrongId& o) const { return value == o.value; }
  bool operator!=(const StrongId& o) const { return value != o.value; }
  bool operator<(const StrongId& o) const { return value < o.value; }
};
}  // namespace internal

/// Taxonomy class ("Category->Clothing->Dress").
struct ClassId : internal::StrongId<ClassId> {
  using StrongId::StrongId;
};
/// Primitive concept (one sense of a surface form).
struct ConceptId : internal::StrongId<ConceptId> {
  using StrongId::StrongId;
};
/// E-commerce concept (a user need, e.g. "outdoor barbecue").
struct EcConceptId : internal::StrongId<EcConceptId> {
  using StrongId::StrongId;
};
/// Item (smallest selling unit).
struct ItemId : internal::StrongId<ItemId> {
  using StrongId::StrongId;
};

std::string ToString(ClassId id);
std::string ToString(ConceptId id);
std::string ToString(EcConceptId id);
std::string ToString(ItemId id);

}  // namespace alicoco::kg

namespace std {
template <>
struct hash<alicoco::kg::ClassId> {
  size_t operator()(alicoco::kg::ClassId id) const {
    return hash<uint32_t>()(id.value);
  }
};
template <>
struct hash<alicoco::kg::ConceptId> {
  size_t operator()(alicoco::kg::ConceptId id) const {
    return hash<uint32_t>()(id.value);
  }
};
template <>
struct hash<alicoco::kg::EcConceptId> {
  size_t operator()(alicoco::kg::EcConceptId id) const {
    return hash<uint32_t>()(id.value);
  }
};
template <>
struct hash<alicoco::kg::ItemId> {
  size_t operator()(alicoco::kg::ItemId id) const {
    return hash<uint32_t>()(id.value);
  }
};
}  // namespace std

#endif  // ALICOCO_KG_IDS_H_
