#include "kg/concept_net.h"

#include <algorithm>
#include <deque>

#include "common/check.h"
#include "common/string_util.h"

namespace alicoco::kg {
namespace {

template <typename K, typename V>
std::vector<V> Lookup(const std::unordered_map<K, std::vector<V>>& map, K key) {
  auto it = map.find(key);
  return it == map.end() ? std::vector<V>() : it->second;
}

template <typename K, typename V>
bool EdgeExists(const std::unordered_map<K, std::vector<V>>& map, K key,
                V value) {
  auto it = map.find(key);
  if (it == map.end()) return false;
  return std::find(it->second.begin(), it->second.end(), value) !=
         it->second.end();
}

}  // namespace

Result<ConceptId> ConceptNet::GetOrAddPrimitiveConcept(
    const std::string& surface, ClassId cls) {
  if (!taxonomy_.Contains(cls)) {
    return Status::NotFound("unknown class for concept " + surface);
  }
  if (surface.empty()) {
    return Status::InvalidArgument("empty concept surface");
  }
  auto it = primitive_by_surface_.find(surface);
  if (it != primitive_by_surface_.end()) {
    for (ConceptId id : it->second) {
      if (primitives_[id.value].cls == cls) return id;
    }
  }
  ConceptId id(static_cast<uint32_t>(primitives_.size()));
  primitives_.push_back(PrimitiveConcept{id, surface, cls, {}});
  primitive_by_surface_[surface].push_back(id);
  primitive_by_class_[cls].push_back(id);
  return id;
}

Status ConceptNet::SetGloss(ConceptId id, std::vector<std::string> gloss) {
  if (!Contains(id)) return Status::NotFound("no such concept");
  primitives_[id.value].gloss = std::move(gloss);
  return Status::OK();
}

Result<EcConceptId> ConceptNet::GetOrAddEcConcept(
    const std::vector<std::string>& tokens) {
  if (tokens.empty()) {
    return Status::InvalidArgument("empty e-commerce concept");
  }
  std::string surface = JoinStrings(tokens, " ");
  auto it = ec_by_surface_.find(surface);
  if (it != ec_by_surface_.end()) return it->second;
  EcConceptId id(static_cast<uint32_t>(ec_concepts_.size()));
  ec_concepts_.push_back(EcommerceConcept{id, tokens, surface});
  ec_by_surface_[surface] = id;
  return id;
}

Result<ItemId> ConceptNet::AddItem(std::vector<std::string> title,
                                   ClassId category) {
  if (!taxonomy_.Contains(category)) {
    return Status::NotFound("unknown category class for item");
  }
  if (title.empty()) return Status::InvalidArgument("empty item title");
  ItemId id(static_cast<uint32_t>(items_.size()));
  items_.push_back(Item{id, std::move(title), category});
  return id;
}

bool ConceptNet::WouldCreateIsACycle(ConceptId hyponym,
                                     ConceptId hypernym) const {
  // Cycle iff hyponym is reachable from hypernym via hypernym edges.
  std::deque<ConceptId> queue = {hypernym};
  std::unordered_set<ConceptId> seen = {hypernym};
  while (!queue.empty()) {
    ConceptId cur = queue.front();
    queue.pop_front();
    if (cur == hyponym) return true;
    for (ConceptId next : Lookup(hypernyms_, cur)) {
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

bool ConceptNet::WouldCreateEcIsACycle(EcConceptId child,
                                       EcConceptId parent) const {
  std::deque<EcConceptId> queue = {parent};
  std::unordered_set<EcConceptId> seen = {parent};
  while (!queue.empty()) {
    EcConceptId cur = queue.front();
    queue.pop_front();
    if (cur == child) return true;
    for (EcConceptId next : Lookup(ec_parents_, cur)) {
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

Status ConceptNet::AddIsA(ConceptId hyponym, ConceptId hypernym) {
  if (!Contains(hyponym) || !Contains(hypernym)) {
    return Status::NotFound("unknown concept in isA");
  }
  if (hyponym == hypernym) {
    return Status::InvalidArgument("self isA rejected");
  }
  if (EdgeExists(hypernyms_, hyponym, hypernym)) {
    return Status::AlreadyExists("isA edge exists");
  }
  if (WouldCreateIsACycle(hyponym, hypernym)) {
    return Status::FailedPrecondition(
        "isA cycle rejected: " + primitives_[hyponym.value].surface + " -> " +
        primitives_[hypernym.value].surface);
  }
  // Forward/reverse adjacency must stay mirrored; a one-sided edge would
  // corrupt closure queries silently.
  ALICOCO_DCHECK(!EdgeExists(hyponyms_, hypernym, hyponym))
      << "reverse isA edge already present for "
      << primitives_[hyponym.value].surface;
  hypernyms_[hyponym].push_back(hypernym);
  hyponyms_[hypernym].push_back(hyponym);
  ++isa_edge_count_;
  return Status::OK();
}

Status ConceptNet::AddEcIsA(EcConceptId child, EcConceptId parent) {
  if (!Contains(child) || !Contains(parent)) {
    return Status::NotFound("unknown e-commerce concept in isA");
  }
  if (child == parent) return Status::InvalidArgument("self isA rejected");
  if (EdgeExists(ec_parents_, child, parent)) {
    return Status::AlreadyExists("ec isA edge exists");
  }
  if (WouldCreateEcIsACycle(child, parent)) {
    return Status::FailedPrecondition("ec isA cycle rejected");
  }
  ec_parents_[child].push_back(parent);
  ec_children_[parent].push_back(child);
  ++ec_isa_edge_count_;
  return Status::OK();
}

Status ConceptNet::LinkEcToPrimitive(EcConceptId ec, ConceptId primitive) {
  if (!Contains(ec) || !Contains(primitive)) {
    return Status::NotFound("unknown node in ec->primitive link");
  }
  if (EdgeExists(ec_to_prim_, ec, primitive)) {
    return Status::AlreadyExists("link exists");
  }
  ec_to_prim_[ec].push_back(primitive);
  prim_to_ec_[primitive].push_back(ec);
  ++ec_prim_edge_count_;
  return Status::OK();
}

Status ConceptNet::LinkItemToPrimitive(ItemId item, ConceptId primitive) {
  if (!Contains(item) || !Contains(primitive)) {
    return Status::NotFound("unknown node in item->primitive link");
  }
  if (EdgeExists(item_to_prim_, item, primitive)) {
    return Status::AlreadyExists("link exists");
  }
  item_to_prim_[item].push_back(primitive);
  prim_to_item_[primitive].push_back(item);
  ++item_prim_edge_count_;
  return Status::OK();
}

Status ConceptNet::LinkItemToEc(ItemId item, EcConceptId ec,
                                double probability) {
  if (!Contains(item) || !Contains(ec)) {
    return Status::NotFound("unknown node in item->ec link");
  }
  if (probability <= 0.0 || probability > 1.0) {
    return Status::InvalidArgument("edge probability must be in (0, 1]");
  }
  if (EdgeExists(item_to_ec_, item, ec)) {
    return Status::AlreadyExists("link exists");
  }
  item_to_ec_[item].push_back(ec);
  ec_to_item_[ec].push_back(item);
  item_ec_probability_[(static_cast<uint64_t>(item.value) << 32) |
                       ec.value] = probability;
  ++item_ec_edge_count_;
  return Status::OK();
}

double ConceptNet::ItemEcProbability(ItemId item, EcConceptId ec) const {
  auto it = item_ec_probability_.find(
      (static_cast<uint64_t>(item.value) << 32) | ec.value);
  return it == item_ec_probability_.end() ? 0.0 : it->second;
}

std::vector<std::pair<ItemId, double>> ConceptNet::ItemsForEcRanked(
    EcConceptId ec) const {
  std::vector<std::pair<ItemId, double>> out;
  for (ItemId item : ItemsForEc(ec)) {
    out.emplace_back(item, ItemEcProbability(item, ec));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first.value < b.first.value;
  });
  return out;
}

Status ConceptNet::AddTypedRelation(const std::string& relation,
                                    ConceptId subject, ConceptId object) {
  if (!Contains(subject) || !Contains(object)) {
    return Status::NotFound("unknown concept in typed relation");
  }
  ALICOCO_RETURN_NOT_OK(schema_.Validate(taxonomy_, relation,
                                         primitives_[subject.value].cls,
                                         primitives_[object.value].cls));
  typed_by_subject_[subject].push_back(typed_relations_.size());
  typed_relations_.push_back(TypedRelation{relation, subject, object});
  return Status::OK();
}

const PrimitiveConcept& ConceptNet::Get(ConceptId id) const {
  ALICOCO_CHECK(Contains(id));
  return primitives_[id.value];
}

const EcommerceConcept& ConceptNet::Get(EcConceptId id) const {
  ALICOCO_CHECK(Contains(id));
  return ec_concepts_[id.value];
}

const Item& ConceptNet::Get(ItemId id) const {
  ALICOCO_CHECK(Contains(id));
  return items_[id.value];
}

std::vector<ConceptId> ConceptNet::FindPrimitive(
    const std::string& surface) const {
  auto it = primitive_by_surface_.find(surface);
  return it == primitive_by_surface_.end() ? std::vector<ConceptId>()
                                           : it->second;
}

std::optional<ConceptId> ConceptNet::FindPrimitive(const std::string& surface,
                                                   ClassId cls) const {
  for (ConceptId id : FindPrimitive(surface)) {
    if (primitives_[id.value].cls == cls) return id;
  }
  return std::nullopt;
}

std::optional<EcConceptId> ConceptNet::FindEcConcept(
    const std::string& surface) const {
  auto it = ec_by_surface_.find(surface);
  if (it == ec_by_surface_.end()) return std::nullopt;
  return it->second;
}

std::vector<ConceptId> ConceptNet::PrimitivesOfClass(ClassId cls) const {
  auto it = primitive_by_class_.find(cls);
  return it == primitive_by_class_.end() ? std::vector<ConceptId>()
                                         : it->second;
}

std::vector<ConceptId> ConceptNet::Hypernyms(ConceptId id) const {
  return Lookup(hypernyms_, id);
}

std::vector<ConceptId> ConceptNet::Hyponyms(ConceptId id) const {
  return Lookup(hyponyms_, id);
}

std::vector<ConceptId> ConceptNet::HypernymClosure(ConceptId id) const {
  ALICOCO_DCHECK(Contains(id)) << "closure of unknown concept " << id.value;
  std::vector<ConceptId> out;
  std::deque<ConceptId> queue = {id};
  std::unordered_set<ConceptId> seen = {id};
  while (!queue.empty()) {
    ConceptId cur = queue.front();
    queue.pop_front();
    for (ConceptId next : Lookup(hypernyms_, cur)) {
      ALICOCO_DCHECK(Contains(next))
          << "dangling isA endpoint " << next.value << " reachable from "
          << id.value;
      if (seen.insert(next).second) {
        out.push_back(next);
        queue.push_back(next);
      }
    }
  }
  return out;
}

std::vector<std::string> ConceptNet::ExpandWithHypernyms(
    const std::string& surface) const {
  std::vector<std::string> out = {surface};
  std::unordered_set<std::string> seen = {surface};
  for (ConceptId sense : FindPrimitive(surface)) {
    for (ConceptId hyper : HypernymClosure(sense)) {
      const std::string& s = primitives_[hyper.value].surface;
      if (seen.insert(s).second) out.push_back(s);
    }
  }
  return out;
}

std::vector<ConceptId> ConceptNet::PrimitivesForEc(EcConceptId ec) const {
  return Lookup(ec_to_prim_, ec);
}
std::vector<EcConceptId> ConceptNet::EcConceptsForPrimitive(
    ConceptId primitive) const {
  return Lookup(prim_to_ec_, primitive);
}
std::vector<ItemId> ConceptNet::ItemsForEc(EcConceptId ec) const {
  return Lookup(ec_to_item_, ec);
}
std::vector<EcConceptId> ConceptNet::EcConceptsForItem(ItemId item) const {
  return Lookup(item_to_ec_, item);
}
std::vector<ItemId> ConceptNet::ItemsForPrimitive(ConceptId primitive) const {
  return Lookup(prim_to_item_, primitive);
}
std::vector<ConceptId> ConceptNet::PrimitivesForItem(ItemId item) const {
  return Lookup(item_to_prim_, item);
}
std::vector<EcConceptId> ConceptNet::EcParents(EcConceptId id) const {
  return Lookup(ec_parents_, id);
}
std::vector<EcConceptId> ConceptNet::EcChildren(EcConceptId id) const {
  return Lookup(ec_children_, id);
}

std::vector<TypedRelation> ConceptNet::TypedRelationsFrom(
    ConceptId subject) const {
  std::vector<TypedRelation> out;
  auto it = typed_by_subject_.find(subject);
  if (it == typed_by_subject_.end()) return out;
  out.reserve(it->second.size());
  for (size_t idx : it->second) out.push_back(typed_relations_[idx]);
  return out;
}

}  // namespace alicoco::kg
