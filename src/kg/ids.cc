#include "kg/ids.h"

#include "common/string_util.h"

namespace alicoco::kg {

std::string ToString(ClassId id) { return StringPrintf("class:%u", id.value); }
std::string ToString(ConceptId id) {
  return StringPrintf("concept:%u", id.value);
}
std::string ToString(EcConceptId id) {
  return StringPrintf("ec_concept:%u", id.value);
}
std::string ToString(ItemId id) { return StringPrintf("item:%u", id.value); }

}  // namespace alicoco::kg
