// Relation schema over the taxonomy (Section 2).
//
// A relation such as suitable_when(Category->Pants, Time->Season) constrains
// which primitive-concept pairs a typed edge may connect: the subject's class
// must descend from the relation's domain, the object's from its range.

#ifndef ALICOCO_KG_SCHEMA_H_
#define ALICOCO_KG_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "kg/taxonomy.h"

namespace alicoco::kg {

/// Signature of one typed relation.
struct RelationDef {
  std::string name;
  ClassId domain;  ///< allowed subject classes (subtree)
  ClassId range;   ///< allowed object classes (subtree)
};

/// Registry of relation signatures with type checking.
class Schema {
 public:
  /// `taxonomy` must outlive the schema.
  explicit Schema(const Taxonomy* taxonomy);

  /// Registers a relation; fails on duplicate names or unknown classes.
  Status AddRelation(const std::string& name, ClassId domain, ClassId range);

  /// The definition for `name` (nullptr if unknown).
  const RelationDef* Find(const std::string& name) const;

  /// OK iff `name` exists and the classes satisfy its signature.
  Status Validate(const std::string& name, ClassId subject_class,
                  ClassId object_class) const;

  const std::vector<RelationDef>& relations() const { return defs_; }

 private:
  const Taxonomy* taxonomy_;
  std::vector<RelationDef> defs_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace alicoco::kg

#endif  // ALICOCO_KG_SCHEMA_H_
