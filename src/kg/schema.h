// Relation schema over the taxonomy (Section 2).
//
// A relation such as suitable_when(Category->Pants, Time->Season) constrains
// which primitive-concept pairs a typed edge may connect: the subject's class
// must descend from the relation's domain, the object's from its range.
//
// The schema is a plain value type: it stores no taxonomy pointer (a stored
// pointer dangled whenever the owning ConceptNet was moved or copied — the
// sanitizer toolchain flushed that out). Callers pass the taxonomy to the
// operations that need it.

#ifndef ALICOCO_KG_SCHEMA_H_
#define ALICOCO_KG_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "kg/taxonomy.h"

namespace alicoco::kg {

/// Signature of one typed relation.
struct RelationDef {
  std::string name;
  ClassId domain;  ///< allowed subject classes (subtree)
  ClassId range;   ///< allowed object classes (subtree)
};

/// Registry of relation signatures with type checking.
class Schema {
 public:
  Schema() = default;

  /// Registers a relation; fails on duplicate names or classes unknown to
  /// `taxonomy`.
  Status AddRelation(const Taxonomy& taxonomy, const std::string& name,
                     ClassId domain, ClassId range);

  /// The definition for `name` (nullptr if unknown).
  const RelationDef* Find(const std::string& name) const;

  /// OK iff `name` exists and the classes satisfy its signature under
  /// `taxonomy`.
  Status Validate(const Taxonomy& taxonomy, const std::string& name,
                  ClassId subject_class, ClassId object_class) const;

  const std::vector<RelationDef>& relations() const { return defs_; }

 private:
  std::vector<RelationDef> defs_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace alicoco::kg

#endif  // ALICOCO_KG_SCHEMA_H_
