// Snapshot persistence for ConceptNet.
//
// A versioned, tab-separated text format. Node ids are dense and written in
// insertion order, so a reloaded net assigns identical ids and all edges
// round-trip exactly.

#ifndef ALICOCO_KG_PERSISTENCE_H_
#define ALICOCO_KG_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "kg/concept_net.h"

namespace alicoco::kg {

/// Writes the full net (taxonomy, schema, nodes, edges) to `path`.
[[nodiscard]] Status SaveConceptNet(const ConceptNet& net,
                                    const std::string& path);

/// Reads a snapshot into a fresh net.
[[nodiscard]] Result<ConceptNet> LoadConceptNet(const std::string& path);

}  // namespace alicoco::kg

#endif  // ALICOCO_KG_PERSISTENCE_H_
