// The AliCoCo concept net: four node layers plus their relations (Section 2).
//
//   e-commerce concepts  --interprets-->  primitive concepts
//          |    \                               |
//        isA     \--associated-->  items  --tagged--> primitive concepts
//                                   |
//   primitive concepts: isA hierarchy + schema-typed relations
//
// The store owns the taxonomy and schema, allocates dense ids per layer, and
// maintains forward/reverse adjacency for every relation kind. Multiple
// primitive concepts may share a surface form (senses); the surface index
// returns all of them, which is what gives AliCoCo its disambiguation power.

#ifndef ALICOCO_KG_CONCEPT_NET_H_
#define ALICOCO_KG_CONCEPT_NET_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "kg/ids.h"
#include "kg/schema.h"
#include "kg/taxonomy.h"

namespace alicoco::kg {

/// One sense of a surface form, typed by a taxonomy class.
struct PrimitiveConcept {
  ConceptId id;
  std::string surface;             ///< space-joined tokens
  ClassId cls;
  std::vector<std::string> gloss;  ///< short definition (external knowledge)
};

/// A user need ("outdoor barbecue").
struct EcommerceConcept {
  EcConceptId id;
  std::vector<std::string> tokens;
  std::string surface;  ///< space-joined tokens (unique)
};

/// Smallest selling unit.
struct Item {
  ItemId id;
  std::vector<std::string> title;
  ClassId category;
};

/// A schema-typed edge between primitive concepts.
struct TypedRelation {
  std::string relation;
  ConceptId subject;
  ConceptId object;
};

/// The net. Not thread-safe for writes.
class ConceptNet {
 public:
  ConceptNet() = default;

  Taxonomy& taxonomy() { return taxonomy_; }
  const Taxonomy& taxonomy() const { return taxonomy_; }
  const Schema& schema() const { return schema_; }

  /// Registers a typed-relation signature against this net's taxonomy.
  Status AddRelation(const std::string& name, ClassId domain, ClassId range) {
    return schema_.AddRelation(taxonomy_, name, domain, range);
  }

  // ---- node creation ----

  /// Interns a primitive concept (surface, class); returns the existing id
  /// when that exact sense is already present. Fails on an unknown class.
  Result<ConceptId> GetOrAddPrimitiveConcept(const std::string& surface,
                                             ClassId cls);

  /// Attaches/replaces the gloss of a primitive concept.
  Status SetGloss(ConceptId id, std::vector<std::string> gloss);

  /// Interns an e-commerce concept by its token sequence.
  Result<EcConceptId> GetOrAddEcConcept(
      const std::vector<std::string>& tokens);

  /// Adds an item; items are never deduplicated (two identical listings are
  /// distinct items, as in the paper).
  Result<ItemId> AddItem(std::vector<std::string> title, ClassId category);

  // ---- relations ----

  /// isA between primitive concepts (hyponym -> hypernym). Rejects self
  /// loops and cycles.
  Status AddIsA(ConceptId hyponym, ConceptId hypernym);

  /// isA between e-commerce concepts (child -> parent). Rejects cycles.
  Status AddEcIsA(EcConceptId child, EcConceptId parent);

  /// Links an e-commerce concept to a primitive concept interpreting it.
  Status LinkEcToPrimitive(EcConceptId ec, ConceptId primitive);

  /// Tags an item with a primitive concept (property-like association).
  Status LinkItemToPrimitive(ItemId item, ConceptId primitive);

  /// Associates an item with an e-commerce concept (needed-under-scenario).
  /// `probability` realizes the paper's future-work item 2 ("bring
  /// probabilities to relations between concepts and items"); the default
  /// 1.0 is a hard edge.
  Status LinkItemToEc(ItemId item, EcConceptId ec, double probability = 1.0);

  /// The probability of an item-concept edge (0 when no edge exists).
  double ItemEcProbability(ItemId item, EcConceptId ec) const;

  /// Items of a concept ordered by descending edge probability.
  std::vector<std::pair<ItemId, double>> ItemsForEcRanked(
      EcConceptId ec) const;

  /// Schema-validated typed relation between primitive concepts.
  Status AddTypedRelation(const std::string& relation, ConceptId subject,
                          ConceptId object);

  // ---- node access ----

  bool Contains(ConceptId id) const { return id.value < primitives_.size(); }
  bool Contains(EcConceptId id) const { return id.value < ec_concepts_.size(); }
  bool Contains(ItemId id) const { return id.value < items_.size(); }

  const PrimitiveConcept& Get(ConceptId id) const;
  const EcommerceConcept& Get(EcConceptId id) const;
  const Item& Get(ItemId id) const;

  /// All senses of a surface form (empty if unknown).
  std::vector<ConceptId> FindPrimitive(const std::string& surface) const;

  /// The sense of `surface` within class `cls`, if any.
  std::optional<ConceptId> FindPrimitive(const std::string& surface,
                                         ClassId cls) const;

  /// The e-commerce concept with this exact surface, if any.
  std::optional<EcConceptId> FindEcConcept(const std::string& surface) const;

  /// All primitive concepts of a class (exact class, not subtree).
  std::vector<ConceptId> PrimitivesOfClass(ClassId cls) const;

  // ---- graph queries ----

  std::vector<ConceptId> Hypernyms(ConceptId id) const;
  std::vector<ConceptId> Hyponyms(ConceptId id) const;

  /// Transitive hypernym closure (excluding `id` itself), BFS order.
  std::vector<ConceptId> HypernymClosure(ConceptId id) const;

  /// Surfaces of `surface` plus all hypernym surfaces of each of its senses
  /// — the isA expansion used by search relevance (Section 8.1.1).
  std::vector<std::string> ExpandWithHypernyms(
      const std::string& surface) const;

  std::vector<ConceptId> PrimitivesForEc(EcConceptId ec) const;
  std::vector<EcConceptId> EcConceptsForPrimitive(ConceptId primitive) const;
  std::vector<ItemId> ItemsForEc(EcConceptId ec) const;
  std::vector<EcConceptId> EcConceptsForItem(ItemId item) const;
  std::vector<ItemId> ItemsForPrimitive(ConceptId primitive) const;
  std::vector<ConceptId> PrimitivesForItem(ItemId item) const;
  std::vector<EcConceptId> EcParents(EcConceptId id) const;
  std::vector<EcConceptId> EcChildren(EcConceptId id) const;

  const std::vector<TypedRelation>& typed_relations() const {
    return typed_relations_;
  }
  /// Typed relations with `subject` as subject.
  std::vector<TypedRelation> TypedRelationsFrom(ConceptId subject) const;

  // ---- counts ----
  size_t num_primitive_concepts() const { return primitives_.size(); }
  size_t num_ec_concepts() const { return ec_concepts_.size(); }
  size_t num_items() const { return items_.size(); }
  size_t num_isa_primitive() const { return isa_edge_count_; }
  size_t num_isa_ec() const { return ec_isa_edge_count_; }
  size_t num_ec_primitive_links() const { return ec_prim_edge_count_; }
  size_t num_item_primitive_links() const { return item_prim_edge_count_; }
  size_t num_item_ec_links() const { return item_ec_edge_count_; }

  /// All primitive / ec / item nodes (by reference, index = id).
  const std::vector<PrimitiveConcept>& primitives() const {
    return primitives_;
  }
  const std::vector<EcommerceConcept>& ec_concepts() const {
    return ec_concepts_;
  }
  const std::vector<Item>& items() const { return items_; }

 private:
  // The validator audits internal adjacency for invariants unreachable
  // through the public API (dangling map keys, one-sided edges); the test
  // peer injects exactly those corruptions to prove the audit catches them.
  friend class Validator;
  friend class ValidatorTestPeer;

  template <typename K, typename V>
  using AdjMap = std::unordered_map<K, std::vector<V>>;

  // Returns true if adding hypo->hyper creates a cycle in the isA DAG.
  bool WouldCreateIsACycle(ConceptId hyponym, ConceptId hypernym) const;
  bool WouldCreateEcIsACycle(EcConceptId child, EcConceptId parent) const;

  Taxonomy taxonomy_;
  Schema schema_;

  std::vector<PrimitiveConcept> primitives_;
  std::vector<EcommerceConcept> ec_concepts_;
  std::vector<Item> items_;

  std::unordered_map<std::string, std::vector<ConceptId>> primitive_by_surface_;
  std::unordered_map<std::string, EcConceptId> ec_by_surface_;
  std::unordered_map<ClassId, std::vector<ConceptId>> primitive_by_class_;

  AdjMap<ConceptId, ConceptId> hypernyms_, hyponyms_;
  AdjMap<EcConceptId, EcConceptId> ec_parents_, ec_children_;
  AdjMap<EcConceptId, ConceptId> ec_to_prim_;
  AdjMap<ConceptId, EcConceptId> prim_to_ec_;
  AdjMap<ItemId, ConceptId> item_to_prim_;
  AdjMap<ConceptId, ItemId> prim_to_item_;
  AdjMap<ItemId, EcConceptId> item_to_ec_;
  AdjMap<EcConceptId, ItemId> ec_to_item_;
  // (item << 32 | ec) -> probability of the dynamic edge.
  std::unordered_map<uint64_t, double> item_ec_probability_;
  std::vector<TypedRelation> typed_relations_;
  std::unordered_map<ConceptId, std::vector<size_t>> typed_by_subject_;

  size_t isa_edge_count_ = 0;
  size_t ec_isa_edge_count_ = 0;
  size_t ec_prim_edge_count_ = 0;
  size_t item_prim_edge_count_ = 0;
  size_t item_ec_edge_count_ = 0;
};

}  // namespace alicoco::kg

#endif  // ALICOCO_KG_CONCEPT_NET_H_
