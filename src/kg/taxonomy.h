// The class taxonomy of AliCoCo (Section 3, Figure 3).
//
// A rooted tree of classes. The 20 first-level classes are the "domains"
// (Category, Brand, Color, ..., Time, Location, IP); Category carries the
// deepest subtree since the categorization of items is the backbone of the
// platform. Primitive concepts are typed by a class in this tree.

#ifndef ALICOCO_KG_TAXONOMY_H_
#define ALICOCO_KG_TAXONOMY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "kg/ids.h"

namespace alicoco::kg {

/// One taxonomy class.
struct ClassInfo {
  ClassId id;
  std::string name;   ///< globally unique ("Dress")
  ClassId parent;     ///< invalid for the root
  int depth = 0;      ///< root = 0, domains = 1
  std::vector<ClassId> children;
};

/// Rooted class tree with name lookup and ancestry queries.
class Taxonomy {
 public:
  /// Creates the tree with its implicit root class "Root".
  Taxonomy();

  /// Adds a class under `parent`. Fails with AlreadyExists on a duplicate
  /// name and NotFound on an unknown parent.
  Result<ClassId> AddClass(const std::string& name, ClassId parent);

  /// Adds a first-level class (domain) under the root.
  Result<ClassId> AddDomain(const std::string& name);

  /// Id for a class name, or NotFound.
  Result<ClassId> Find(const std::string& name) const;

  bool Contains(ClassId id) const {
    return id.value < classes_.size();
  }

  const ClassInfo& Get(ClassId id) const;
  ClassId root() const { return ClassId(0); }

  /// True if `ancestor` lies on the path from `descendant` to the root
  /// (inclusive: a class is its own ancestor).
  bool IsAncestor(ClassId ancestor, ClassId descendant) const;

  /// The first-level class above `id` (id itself if first-level; invalid
  /// for the root).
  ClassId Domain(ClassId id) const;

  /// Path from `id` up to and including the root.
  std::vector<ClassId> PathToRoot(ClassId id) const;

  /// All classes in the subtree rooted at `id` (including `id`).
  std::vector<ClassId> Subtree(ClassId id) const;

  /// Leaf classes under `id`.
  std::vector<ClassId> Leaves(ClassId id) const;

  /// First-level classes.
  std::vector<ClassId> Domains() const;

  /// Total class count including the root.
  size_t size() const { return classes_.size(); }

 private:
  std::vector<ClassInfo> classes_;
  std::unordered_map<std::string, ClassId> by_name_;
};

}  // namespace alicoco::kg

#endif  // ALICOCO_KG_TAXONOMY_H_
