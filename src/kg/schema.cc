#include "kg/schema.h"

#include "common/logging.h"

namespace alicoco::kg {

Schema::Schema(const Taxonomy* taxonomy) : taxonomy_(taxonomy) {
  ALICOCO_CHECK(taxonomy != nullptr);
}

Status Schema::AddRelation(const std::string& name, ClassId domain,
                           ClassId range) {
  if (by_name_.count(name)) {
    return Status::AlreadyExists("relation exists: " + name);
  }
  if (!taxonomy_->Contains(domain) || !taxonomy_->Contains(range)) {
    return Status::NotFound("unknown class in relation " + name);
  }
  by_name_[name] = defs_.size();
  defs_.push_back(RelationDef{name, domain, range});
  return Status::OK();
}

const RelationDef* Schema::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &defs_[it->second];
}

Status Schema::Validate(const std::string& name, ClassId subject_class,
                        ClassId object_class) const {
  const RelationDef* def = Find(name);
  if (def == nullptr) return Status::NotFound("unknown relation " + name);
  if (!taxonomy_->IsAncestor(def->domain, subject_class)) {
    return Status::InvalidArgument(
        "subject class violates domain of " + name + ": " +
        taxonomy_->Get(subject_class).name);
  }
  if (!taxonomy_->IsAncestor(def->range, object_class)) {
    return Status::InvalidArgument(
        "object class violates range of " + name + ": " +
        taxonomy_->Get(object_class).name);
  }
  return Status::OK();
}

}  // namespace alicoco::kg
