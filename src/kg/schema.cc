#include "kg/schema.h"

namespace alicoco::kg {

Status Schema::AddRelation(const Taxonomy& taxonomy, const std::string& name,
                           ClassId domain, ClassId range) {
  if (by_name_.count(name)) {
    return Status::AlreadyExists("relation exists: " + name);
  }
  if (!taxonomy.Contains(domain) || !taxonomy.Contains(range)) {
    return Status::NotFound("unknown class in relation " + name);
  }
  by_name_[name] = defs_.size();
  defs_.push_back(RelationDef{name, domain, range});
  return Status::OK();
}

const RelationDef* Schema::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &defs_[it->second];
}

Status Schema::Validate(const Taxonomy& taxonomy, const std::string& name,
                        ClassId subject_class, ClassId object_class) const {
  const RelationDef* def = Find(name);
  if (def == nullptr) return Status::NotFound("unknown relation " + name);
  if (!taxonomy.Contains(subject_class) || !taxonomy.Contains(object_class)) {
    return Status::NotFound("unknown class in typed relation " + name);
  }
  if (!taxonomy.IsAncestor(def->domain, subject_class)) {
    return Status::InvalidArgument(
        "subject class violates domain of " + name + ": " +
        taxonomy.Get(subject_class).name);
  }
  if (!taxonomy.IsAncestor(def->range, object_class)) {
    return Status::InvalidArgument(
        "object class violates range of " + name + ": " +
        taxonomy.Get(object_class).name);
  }
  return Status::OK();
}

}  // namespace alicoco::kg
