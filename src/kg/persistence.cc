#include "kg/persistence.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace alicoco::kg {
namespace {
constexpr const char* kHeader = "ALICOCO_NET v1";

/// Plausibility cap for any single section's element count. A snapshot
/// section bigger than this cannot come from a real net; treating it as
/// corruption keeps one flipped length field from driving the load loops
/// (and every allocation behind them) to arbitrary sizes.
constexpr size_t kMaxSectionCount = size_t{1} << 26;

/// Exception-safe numeric field parsers. std::stoul/std::stod throw on
/// garbage and silently accept trailing junk; a corrupt snapshot must
/// surface as Status::Corruption instead of an uncaught exception.
Status ParseU64(const std::string& field, uint64_t* out) {
  try {
    size_t used = 0;
    unsigned long long v = std::stoull(field, &used);
    if (used != field.size()) {
      return Status::Corruption("bad numeric field: " + field);
    }
    *out = v;
    return Status::OK();
  } catch (...) {
    return Status::Corruption("bad numeric field: " + field);
  }
}

Status ParseU32(const std::string& field, uint32_t* out) {
  uint64_t wide = 0;
  ALICOCO_RETURN_NOT_OK(ParseU64(field, &wide));
  if (wide > 0xFFFFFFFFull) {
    return Status::Corruption("id field out of range: " + field);
  }
  *out = static_cast<uint32_t>(wide);
  return Status::OK();
}

Status ParseF64(const std::string& field, double* out) {
  try {
    size_t used = 0;
    double v = std::stod(field, &used);
    if (used != field.size()) {
      return Status::Corruption("bad numeric field: " + field);
    }
    *out = v;
    return Status::OK();
  } catch (...) {
    return Status::Corruption("bad numeric field: " + field);
  }
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= line.size()) {
    size_t pos = line.find('\t', start);
    if (pos == std::string::npos) pos = line.size();
    out.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

Status ReadSectionHeader(std::istream& in, const std::string& expect,
                         size_t* count) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("missing section " + expect);
  }
  auto parts = SplitWhitespace(line);
  if (parts.size() != 2 || parts[0] != expect) {
    return Status::Corruption("bad section header, expected " + expect +
                              " got: " + line);
  }
  uint64_t value = 0;
  ALICOCO_RETURN_NOT_OK(ParseU64(parts[1], &value));
  if (value > kMaxSectionCount) {
    return Status::Corruption("implausible count in section " + expect +
                              ": " + parts[1]);
  }
  *count = value;
  return Status::OK();
}

}  // namespace

Status SaveConceptNet(const ConceptNet& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << kHeader << "\n";

  const Taxonomy& tax = net.taxonomy();
  out << "TAXONOMY " << (tax.size() - 1) << "\n";  // root is implicit
  for (size_t i = 1; i < tax.size(); ++i) {
    const ClassInfo& c = tax.Get(ClassId(static_cast<uint32_t>(i)));
    out << c.parent.value << '\t' << c.name << "\n";
  }

  const auto& rels = net.schema().relations();
  out << "SCHEMA " << rels.size() << "\n";
  for (const auto& r : rels) {
    out << r.domain.value << '\t' << r.range.value << '\t' << r.name << "\n";
  }

  out << "PRIMITIVE " << net.num_primitive_concepts() << "\n";
  for (const auto& p : net.primitives()) {
    out << p.cls.value << '\t' << p.surface << '\t'
        << JoinStrings(p.gloss, " ") << "\n";
  }

  out << "EC " << net.num_ec_concepts() << "\n";
  for (const auto& ec : net.ec_concepts()) out << ec.surface << "\n";

  out << "ITEM " << net.num_items() << "\n";
  for (const auto& item : net.items()) {
    out << item.category.value << '\t' << JoinStrings(item.title, " ") << "\n";
  }

  // Edges. Each line: subject object.
  std::ostringstream isa, ec_isa, ec_prim, item_prim, item_ec, typed;
  size_t n_isa = 0, n_ec_isa = 0, n_ec_prim = 0, n_item_prim = 0,
         n_item_ec = 0;
  for (const auto& p : net.primitives()) {
    for (ConceptId h : net.Hypernyms(p.id)) {
      isa << p.id.value << '\t' << h.value << "\n";
      ++n_isa;
    }
    for (EcConceptId ec : net.EcConceptsForPrimitive(p.id)) {
      (void)ec;  // written from the ec side below
    }
  }
  for (const auto& ec : net.ec_concepts()) {
    for (EcConceptId parent : net.EcParents(ec.id)) {
      ec_isa << ec.id.value << '\t' << parent.value << "\n";
      ++n_ec_isa;
    }
    for (ConceptId prim : net.PrimitivesForEc(ec.id)) {
      ec_prim << ec.id.value << '\t' << prim.value << "\n";
      ++n_ec_prim;
    }
  }
  for (const auto& item : net.items()) {
    for (ConceptId prim : net.PrimitivesForItem(item.id)) {
      item_prim << item.id.value << '\t' << prim.value << "\n";
      ++n_item_prim;
    }
    for (EcConceptId ec : net.EcConceptsForItem(item.id)) {
      item_ec << item.id.value << '\t' << ec.value << '\t'
              << net.ItemEcProbability(item.id, ec) << "\n";
      ++n_item_ec;
    }
  }
  out << "ISA " << n_isa << "\n" << isa.str();
  out << "EC_ISA " << n_ec_isa << "\n" << ec_isa.str();
  out << "EC_PRIM " << n_ec_prim << "\n" << ec_prim.str();
  out << "ITEM_PRIM " << n_item_prim << "\n" << item_prim.str();
  out << "ITEM_EC " << n_item_ec << "\n" << item_ec.str();

  const auto& typed_rels = net.typed_relations();
  out << "TYPED " << typed_rels.size() << "\n";
  for (const auto& t : typed_rels) {
    out << t.subject.value << '\t' << t.object.value << '\t' << t.relation
        << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ConceptNet> LoadConceptNet(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::Corruption("bad header in " + path);
  }
  ConceptNet net;
  size_t count = 0;

  ALICOCO_RETURN_NOT_OK(ReadSectionHeader(in, "TAXONOMY", &count));
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return Status::Corruption("truncated TAXONOMY");
    auto parts = SplitTabs(line);
    if (parts.size() != 2) return Status::Corruption("bad taxonomy line");
    uint32_t parent = 0;
    ALICOCO_RETURN_NOT_OK(ParseU32(parts[0], &parent));
    auto res = net.taxonomy().AddClass(parts[1], ClassId(parent));
    ALICOCO_RETURN_NOT_OK(res.status());
  }

  ALICOCO_RETURN_NOT_OK(ReadSectionHeader(in, "SCHEMA", &count));
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return Status::Corruption("truncated SCHEMA");
    auto parts = SplitTabs(line);
    if (parts.size() != 3) return Status::Corruption("bad schema line");
    uint32_t domain = 0, range = 0;
    ALICOCO_RETURN_NOT_OK(ParseU32(parts[0], &domain));
    ALICOCO_RETURN_NOT_OK(ParseU32(parts[1], &range));
    ALICOCO_RETURN_NOT_OK(
        net.AddRelation(parts[2], ClassId(domain), ClassId(range)));
  }

  ALICOCO_RETURN_NOT_OK(ReadSectionHeader(in, "PRIMITIVE", &count));
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return Status::Corruption("truncated PRIMITIVE");
    auto parts = SplitTabs(line);
    if (parts.size() != 3) return Status::Corruption("bad primitive line");
    uint32_t cls = 0;
    ALICOCO_RETURN_NOT_OK(ParseU32(parts[0], &cls));
    auto res = net.GetOrAddPrimitiveConcept(parts[1], ClassId(cls));
    ALICOCO_RETURN_NOT_OK(res.status());
    if (!parts[2].empty()) {
      ALICOCO_RETURN_NOT_OK(
          net.SetGloss(*res, SplitWhitespace(parts[2])));
    }
  }

  ALICOCO_RETURN_NOT_OK(ReadSectionHeader(in, "EC", &count));
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return Status::Corruption("truncated EC");
    auto res = net.GetOrAddEcConcept(SplitWhitespace(line));
    ALICOCO_RETURN_NOT_OK(res.status());
  }

  ALICOCO_RETURN_NOT_OK(ReadSectionHeader(in, "ITEM", &count));
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return Status::Corruption("truncated ITEM");
    auto parts = SplitTabs(line);
    if (parts.size() != 2) return Status::Corruption("bad item line");
    uint32_t category = 0;
    ALICOCO_RETURN_NOT_OK(ParseU32(parts[0], &category));
    auto res = net.AddItem(SplitWhitespace(parts[1]), ClassId(category));
    ALICOCO_RETURN_NOT_OK(res.status());
  }

  auto load_edges = [&](const char* section,
                        const std::function<Status(uint32_t, uint32_t,
                                                   const std::string&)>& add,
                        bool has_label) -> Status {
    size_t n = 0;
    ALICOCO_RETURN_NOT_OK(ReadSectionHeader(in, section, &n));
    for (size_t i = 0; i < n; ++i) {
      if (!std::getline(in, line)) {
        return Status::Corruption(std::string("truncated ") + section);
      }
      auto parts = SplitTabs(line);
      size_t expect = has_label ? 3 : 2;
      if (parts.size() != expect) {
        return Status::Corruption(std::string("bad edge line in ") + section);
      }
      uint32_t subject = 0, object = 0;
      ALICOCO_RETURN_NOT_OK(ParseU32(parts[0], &subject));
      ALICOCO_RETURN_NOT_OK(ParseU32(parts[1], &object));
      ALICOCO_RETURN_NOT_OK(
          add(subject, object, has_label ? parts[2] : std::string()));
    }
    return Status::OK();
  };

  ALICOCO_RETURN_NOT_OK(load_edges(
      "ISA",
      [&](uint32_t a, uint32_t b, const std::string&) {
        return net.AddIsA(ConceptId(a), ConceptId(b));
      },
      false));
  ALICOCO_RETURN_NOT_OK(load_edges(
      "EC_ISA",
      [&](uint32_t a, uint32_t b, const std::string&) {
        return net.AddEcIsA(EcConceptId(a), EcConceptId(b));
      },
      false));
  ALICOCO_RETURN_NOT_OK(load_edges(
      "EC_PRIM",
      [&](uint32_t a, uint32_t b, const std::string&) {
        return net.LinkEcToPrimitive(EcConceptId(a), ConceptId(b));
      },
      false));
  ALICOCO_RETURN_NOT_OK(load_edges(
      "ITEM_PRIM",
      [&](uint32_t a, uint32_t b, const std::string&) {
        return net.LinkItemToPrimitive(ItemId(a), ConceptId(b));
      },
      false));
  // ITEM_EC carries the edge probability as a third field (older snapshots
  // without it default to 1.0).
  {
    size_t n = 0;
    ALICOCO_RETURN_NOT_OK(ReadSectionHeader(in, "ITEM_EC", &n));
    for (size_t i = 0; i < n; ++i) {
      if (!std::getline(in, line)) {
        return Status::Corruption("truncated ITEM_EC");
      }
      auto parts = SplitTabs(line);
      if (parts.size() != 2 && parts.size() != 3) {
        return Status::Corruption("bad edge line in ITEM_EC");
      }
      double probability = 1.0;
      if (parts.size() == 3) {
        ALICOCO_RETURN_NOT_OK(ParseF64(parts[2], &probability));
      }
      uint32_t item = 0, ec = 0;
      ALICOCO_RETURN_NOT_OK(ParseU32(parts[0], &item));
      ALICOCO_RETURN_NOT_OK(ParseU32(parts[1], &ec));
      ALICOCO_RETURN_NOT_OK(
          net.LinkItemToEc(ItemId(item), EcConceptId(ec), probability));
    }
  }
  ALICOCO_RETURN_NOT_OK(load_edges(
      "TYPED",
      [&](uint32_t a, uint32_t b, const std::string& rel) {
        return net.AddTypedRelation(rel, ConceptId(a), ConceptId(b));
      },
      true));

  return net;
}

}  // namespace alicoco::kg
