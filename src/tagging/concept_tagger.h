// Text-augmented concept tagger with fuzzy CRF (Section 5.3, Figure 6).
//
// Encoder: char-level CNN features + word embeddings + POS-tag embeddings
// -> BiLSTM; when knowledge is enabled, each word's corpus-context vector
// (the TM matrix, our Doc2vec substitute) is concatenated before a
// self-attention layer. Decoder: a linear-chain CRF — fuzzy when enabled,
// training on the full set of defensible labels per token (Eq. 8, the
// "village: Location or Style" case).
//
// Config flags reproduce the Table 5 ablation: baseline (BiLSTM-CRF),
// +fuzzy CRF, +fuzzy CRF & knowledge.

#ifndef ALICOCO_TAGGING_CONCEPT_TAGGER_H_
#define ALICOCO_TAGGING_CONCEPT_TAGGER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/metrics.h"
#include "nn/crf.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"
#include "text/gloss_encoder.h"
#include "text/pos_tagger.h"
#include "text/segmenter.h"
#include "text/vocabulary.h"

namespace alicoco::tagging {

/// One training concept: tokens plus per-token allowed IOB label sets (the
/// first allowed label is the primary/gold one).
struct TaggedExample {
  std::vector<std::string> tokens;
  std::vector<std::vector<std::string>> allowed_iob;
};

/// Distant-supervision augmentation (Section 7.5: "we use the similar idea
/// of distant supervision to automatically generate 24,000 pairs"): labels
/// candidate phrases by max-matching a concept dictionary, keeping only
/// phrases whose tokens are fully and unambiguously covered. Ambiguous
/// surfaces contribute the full label set per token (fuzzy supervision).
std::vector<TaggedExample> BuildDistantExamples(
    const text::MaxMatchSegmenter& dictionary,
    const std::vector<std::vector<std::string>>& phrases,
    const std::vector<std::string>& carrier_words = {});

struct ConceptTaggerConfig {
  bool use_fuzzy_crf = true;
  bool use_knowledge = true;  ///< TM context-matrix augmentation
  int char_dim = 8;
  int char_filters = 10;
  int char_window = 3;
  int word_dim = 20;
  int pos_dim = 6;
  int hidden_dim = 18;
  int epochs = 5;
  float lr = 0.01f;
  int batch_size = 8;
  uint64_t seed = 43;
};

/// External resources (must outlive the tagger).
struct TaggerResources {
  const text::PosTagger* pos_tagger = nullptr;             ///< required
  const text::ContextMatrix* context_matrix = nullptr;     ///< if knowledge
  const text::Vocabulary* corpus_vocab = nullptr;          ///< if knowledge
};

/// Trainable tagger mapping short concepts to primitive-class IOB labels.
class ConceptTagger {
 public:
  ConceptTagger(const ConceptTaggerConfig& config,
                const TaggerResources& resources);

  void Train(const std::vector<TaggedExample>& data);

  /// Viterbi-decoded IOB labels.
  std::vector<std::string> Predict(
      const std::vector<std::string>& tokens) const;

  /// Span F1 against the primary (first allowed) labels.
  eval::BinaryMetrics Evaluate(const std::vector<TaggedExample>& test) const;

  const std::vector<std::string>& labels() const { return label_names_; }

 private:
  int LabelId(const std::string& label) const;
  nn::Graph::Var Emissions(nn::Graph* g,
                           const std::vector<std::string>& tokens, bool train,
                           Rng* rng) const;

  ConceptTaggerConfig config_;
  TaggerResources res_;
  Rng init_rng_;
  text::Vocabulary word_vocab_;
  text::Vocabulary char_vocab_;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, int> label_ids_;

  nn::ParameterStore store_;
  std::unique_ptr<nn::Embedding> char_emb_;
  std::unique_ptr<nn::Conv1D> char_cnn_;
  std::unique_ptr<nn::Embedding> word_emb_;
  std::unique_ptr<nn::Embedding> pos_emb_;
  std::unique_ptr<nn::BiLstm> bilstm_;
  std::unique_ptr<nn::Linear> tm_proj_;
  std::unique_ptr<nn::SelfAttention> attn_;
  std::unique_ptr<nn::Linear> proj_;
  std::unique_ptr<nn::LinearChainCrf> crf_;
  bool trained_ = false;
};

}  // namespace alicoco::tagging

#endif  // ALICOCO_TAGGING_CONCEPT_TAGGER_H_
