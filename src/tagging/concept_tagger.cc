#include "tagging/concept_tagger.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "text/tokenizer.h"

namespace alicoco::tagging {

ConceptTagger::ConceptTagger(const ConceptTaggerConfig& config,
                             const TaggerResources& resources)
    : config_(config), res_(resources), init_rng_(config.seed) {
  ALICOCO_CHECK(res_.pos_tagger != nullptr) << "POS tagger required";
  if (config_.use_knowledge) {
    ALICOCO_CHECK(res_.context_matrix != nullptr &&
                  res_.corpus_vocab != nullptr)
        << "use_knowledge requires the context matrix and corpus vocab";
  }
}

int ConceptTagger::LabelId(const std::string& label) const {
  auto it = label_ids_.find(label);
  return it == label_ids_.end() ? 0 : it->second;
}

void ConceptTagger::Train(const std::vector<TaggedExample>& data) {
  ALICOCO_CHECK(!trained_);
  ALICOCO_CHECK(!data.empty());

  label_names_ = {"O"};
  label_ids_["O"] = 0;
  for (const auto& ex : data) {
    ALICOCO_CHECK(ex.tokens.size() == ex.allowed_iob.size());
    for (const auto& tok : ex.tokens) {
      word_vocab_.Add(tok);
      for (const auto& ch : text::Chars(tok)) char_vocab_.Add(ch);
    }
    for (const auto& allowed : ex.allowed_iob) {
      ALICOCO_CHECK(!allowed.empty());
      for (const auto& label : allowed) {
        if (!label_ids_.count(label)) {
          label_ids_[label] = static_cast<int>(label_names_.size());
          label_names_.push_back(label);
        }
      }
    }
  }

  int num_labels = static_cast<int>(label_names_.size());
  char_emb_ = std::make_unique<nn::Embedding>(
      &store_, "char_emb", char_vocab_.size(), config_.char_dim, &init_rng_);
  char_cnn_ = std::make_unique<nn::Conv1D>(&store_, "char_cnn",
                                           config_.char_dim,
                                           config_.char_filters,
                                           config_.char_window, &init_rng_);
  word_emb_ = std::make_unique<nn::Embedding>(
      &store_, "word_emb", word_vocab_.size(), config_.word_dim, &init_rng_);
  pos_emb_ = std::make_unique<nn::Embedding>(&store_, "pos_emb",
                                             text::kNumPosTags,
                                             config_.pos_dim, &init_rng_);
  int input_dim = config_.word_dim + config_.char_filters + config_.pos_dim;
  bilstm_ = std::make_unique<nn::BiLstm>(&store_, "bilstm", input_dim,
                                         config_.hidden_dim, &init_rng_);
  int state_dim = 2 * config_.hidden_dim;
  if (config_.use_knowledge) {
    // Project [h; tm] back to the state width before self-attention (Eq. 7).
    tm_proj_ = std::make_unique<nn::Linear>(
        &store_, "tm_proj",
        state_dim + res_.context_matrix->dim(), state_dim, &init_rng_);
  }
  attn_ = std::make_unique<nn::SelfAttention>(&store_, "attn", state_dim,
                                              &init_rng_);
  proj_ = std::make_unique<nn::Linear>(&store_, "proj", state_dim, num_labels,
                                       &init_rng_);
  crf_ = std::make_unique<nn::LinearChainCrf>(&store_, "crf", num_labels,
                                              &init_rng_);

  nn::Adam adam(config_.lr);
  Rng rng(config_.seed ^ 0xFACADE);
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    store_.ZeroGrad();
    int in_batch = 0;
    for (size_t idx : order) {
      const auto& ex = data[idx];
      if (ex.tokens.empty()) continue;
      nn::Graph g;
      nn::Graph::Var emissions = Emissions(&g, ex.tokens, true, &rng);
      nn::Graph::Var loss;
      if (config_.use_fuzzy_crf) {
        std::vector<std::vector<int>> allowed(ex.tokens.size());
        for (size_t t = 0; t < ex.tokens.size(); ++t) {
          for (const auto& label : ex.allowed_iob[t]) {
            allowed[t].push_back(LabelId(label));
          }
        }
        loss = crf_->FuzzyNegLogLikelihood(&g, emissions, allowed);
      } else {
        std::vector<int> gold;
        gold.reserve(ex.tokens.size());
        for (const auto& allowed : ex.allowed_iob) {
          gold.push_back(LabelId(allowed.front()));
        }
        loss = crf_->NegLogLikelihood(&g, emissions, gold);
      }
      g.Backward(loss);
      if (++in_batch >= config_.batch_size) {
        adam.Step(&store_);
        store_.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      adam.Step(&store_);
      store_.ZeroGrad();
    }
  }
  trained_ = true;
}

nn::Graph::Var ConceptTagger::Emissions(
    nn::Graph* g, const std::vector<std::string>& tokens, bool train,
    Rng* rng) const {
  // Per-word features: char-CNN max-pool, word embedding, POS embedding.
  std::vector<nn::Graph::Var> rows;
  rows.reserve(tokens.size());
  auto pos_tags = res_.pos_tagger->TagSequence(tokens);
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::vector<int> char_ids;
    for (const auto& ch : text::Chars(tokens[i])) {
      char_ids.push_back(char_vocab_.Id(ch));
    }
    if (char_ids.empty()) char_ids.push_back(text::Vocabulary::kUnkId);
    nn::Graph::Var char_feat =
        g->MaxRows(char_cnn_->Apply(g, char_emb_->Lookup(g, char_ids)));
    nn::Graph::Var word_feat =
        word_emb_->Lookup(g, {word_vocab_.Id(tokens[i])});
    nn::Graph::Var pos_feat =
        pos_emb_->Lookup(g, {static_cast<int>(pos_tags[i])});
    rows.push_back(g->ConcatCols({word_feat, char_feat, pos_feat}));
  }
  nn::Graph::Var x = g->ConcatRows(rows);
  x = g->Dropout(x, 0.1f, train, rng);
  nn::Graph::Var h = bilstm_->Run(g, x);

  if (config_.use_knowledge) {
    // Text augmentation: lookup each word's aggregated corpus contexts (TM)
    // and fold them into the states (Eq. 7).
    nn::Tensor tm(static_cast<int>(tokens.size()),
                  res_.context_matrix->dim());
    for (size_t i = 0; i < tokens.size(); ++i) {
      const auto& row =
          res_.context_matrix->Row(res_.corpus_vocab->Id(tokens[i]));
      for (int k = 0; k < res_.context_matrix->dim(); ++k) {
        tm.At(static_cast<int>(i), k) = row[static_cast<size_t>(k)];
      }
    }
    h = g->Tanh(tm_proj_->Apply(
        g, g->ConcatCols({h, g->Input(std::move(tm))})));
  }
  h = attn_->Apply(g, h);
  return proj_->Apply(g, h);
}

std::vector<std::string> ConceptTagger::Predict(
    const std::vector<std::string>& tokens) const {
  ALICOCO_CHECK(trained_);
  if (tokens.empty()) return {};
  nn::Graph g;
  nn::Graph::Var emissions = Emissions(&g, tokens, false, nullptr);
  std::vector<int> path = crf_->Viterbi(g.Value(emissions));
  std::vector<std::string> out;
  out.reserve(path.size());
  for (int id : path) out.push_back(label_names_[static_cast<size_t>(id)]);
  return out;
}

eval::BinaryMetrics ConceptTagger::Evaluate(
    const std::vector<TaggedExample>& test) const {
  std::vector<std::vector<std::string>> gold, pred;
  for (const auto& ex : test) {
    std::vector<std::string> primary;
    primary.reserve(ex.allowed_iob.size());
    for (const auto& allowed : ex.allowed_iob) {
      primary.push_back(allowed.front());
    }
    gold.push_back(std::move(primary));
    pred.push_back(Predict(ex.tokens));
  }
  return eval::SpanF1(gold, pred);
}


std::vector<TaggedExample> BuildDistantExamples(
    const text::MaxMatchSegmenter& dictionary,
    const std::vector<std::vector<std::string>>& phrases,
    const std::vector<std::string>& carrier_words) {
  std::unordered_set<std::string> carrier(carrier_words.begin(),
                                          carrier_words.end());
  std::vector<TaggedExample> out;
  for (const auto& tokens : phrases) {
    if (tokens.empty()) continue;
    text::Segmentation seg = dictionary.Match(tokens);
    // Every non-carrier token must be covered; otherwise the phrase is not
    // perfectly matched and cannot supervise.
    bool perfect = true;
    for (size_t i = 0; i < tokens.size() && perfect; ++i) {
      if (seg.iob[i] == "O" && !carrier.count(tokens[i])) perfect = false;
    }
    if (!perfect) continue;

    TaggedExample ex;
    ex.tokens = tokens;
    ex.allowed_iob.resize(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      ex.allowed_iob[i].push_back(seg.iob[i]);
    }
    // Ambiguous matches: widen the allowed sets with every dictionary label
    // of each matched span (the fuzzy sets of Figure 7).
    for (const auto& occ : dictionary.AllOccurrences(tokens)) {
      for (const auto& chosen : seg.matches) {
        if (occ.begin != chosen.begin || occ.end != chosen.end) continue;
        for (size_t i = occ.begin; i < occ.end; ++i) {
          std::string label =
              (i == occ.begin ? "B-" : "I-") + occ.label;
          auto& allowed = ex.allowed_iob[i];
          if (std::find(allowed.begin(), allowed.end(), label) ==
              allowed.end()) {
            allowed.push_back(label);
          }
        }
      }
    }
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace alicoco::tagging
