// LSTM and BiLSTM built from generic graph ops (Figures 4, 5, 6).

#ifndef ALICOCO_NN_RNN_H_
#define ALICOCO_NN_RNN_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/graph.h"
#include "nn/layers.h"

namespace alicoco::nn {

/// One LSTM cell; gate order in the packed weights is [i, f, o, g].
class LstmCell {
 public:
  LstmCell(ParameterStore* store, const std::string& name, int input_dim,
           int hidden_dim, Rng* rng);

  struct State {
    Graph::Var h;
    Graph::Var c;
  };

  /// Zero initial state.
  State Initial(Graph* g) const;

  /// One step: x is 1 x input_dim.
  State Step(Graph* g, Graph::Var x, const State& prev) const;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_, hidden_dim_;
  Parameter* wx_;  // input_dim x 4H
  Parameter* wh_;  // H x 4H
  Parameter* b_;   // 1 x 4H
};

/// Bidirectional LSTM over a sequence matrix.
class BiLstm {
 public:
  BiLstm(ParameterStore* store, const std::string& name, int input_dim,
         int hidden_dim, Rng* rng);

  /// x: T x input_dim -> T x 2*hidden_dim (forward ++ backward states).
  Graph::Var Run(Graph* g, Graph::Var x) const;

  int output_dim() const { return 2 * fwd_.hidden_dim(); }

 private:
  LstmCell fwd_;
  LstmCell bwd_;
};

}  // namespace alicoco::nn

#endif  // ALICOCO_NN_RNN_H_
