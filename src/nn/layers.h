// Reusable neural layers built on the autodiff graph.

#ifndef ALICOCO_NN_LAYERS_H_
#define ALICOCO_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/graph.h"

namespace alicoco::nn {

/// Affine map: x (R x in) -> x*W + b (R x out).
class Linear {
 public:
  Linear(ParameterStore* store, const std::string& name, int in_dim,
         int out_dim, Rng* rng);

  Graph::Var Apply(Graph* g, Graph::Var x) const;
  /// Fused tanh(x*W + b) — no intermediate pre-activation node.
  Graph::Var ApplyTanh(Graph* g, Graph::Var x) const;
  /// Fused relu(x*W + b).
  Graph::Var ApplyRelu(Graph* g, Graph::Var x) const;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

 private:
  int in_dim_, out_dim_;
  Parameter* w_;
  Parameter* b_;
};

/// Trainable embedding table (vocab x dim).
class Embedding {
 public:
  Embedding(ParameterStore* store, const std::string& name, int vocab,
            int dim, Rng* rng);

  /// Gathers rows by id: len(ids) x dim.
  Graph::Var Lookup(Graph* g, const std::vector<int>& ids) const;

  /// Overwrites the table with pre-trained vectors (row-major vocab x dim).
  void LoadPretrained(const std::vector<float>& table);

  int dim() const { return dim_; }
  int vocab() const { return vocab_; }
  Parameter* parameter() const { return table_; }

 private:
  int vocab_, dim_;
  Parameter* table_;
};

/// 1-D convolution over sequence rows with ReLU: T x D -> T x filters.
/// Implemented as windowed concat (odd window, zero padding) + affine.
class Conv1D {
 public:
  Conv1D(ParameterStore* store, const std::string& name, int in_dim,
         int filters, int window, Rng* rng);

  Graph::Var Apply(Graph* g, Graph::Var x) const;

  int filters() const { return proj_.out_dim(); }
  int window() const { return window_; }

 private:
  int window_;
  Linear proj_;
};

/// Single-head scaled dot-product self-attention: T x d -> T x d,
/// optionally with a residual connection.
class SelfAttention {
 public:
  SelfAttention(ParameterStore* store, const std::string& name, int dim,
                Rng* rng, bool residual = true);

  Graph::Var Apply(Graph* g, Graph::Var x) const;

 private:
  int dim_;
  bool residual_;
  Linear q_, k_, v_;
};

/// Fully-connected stack with tanh hidden activations and a linear head.
class Mlp {
 public:
  /// `dims` = {in, hidden..., out}; at least {in, out}.
  Mlp(ParameterStore* store, const std::string& name,
      const std::vector<int>& dims, Rng* rng);

  Graph::Var Apply(Graph* g, Graph::Var x) const;

 private:
  std::vector<Linear> layers_;
};

}  // namespace alicoco::nn

#endif  // ALICOCO_NN_LAYERS_H_
