// Reusable neural layers built on the autodiff graph.
//
// Quantized inference: each layer that owns weight matrices can (a) report
// which parameters to quantize via AppendQuantPlan, (b) bind to the
// quantized tensors of a QuantizedStore via AttachQuantized — after which
// Apply/Lookup route through the quantized forward-only graph ops — and
// (c) revert to the fp32 parameters via DetachQuantized. Bias vectors stay
// fp32 (they ride the store's passthrough section). Attach state is plain
// pointers into the store, so the store must outlive the attached layer.

#ifndef ALICOCO_NN_LAYERS_H_
#define ALICOCO_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/quant.h"

namespace alicoco::nn {

/// Affine map: x (R x in) -> x*W + b (R x out).
class Linear {
 public:
  Linear(ParameterStore* store, const std::string& name, int in_dim,
         int out_dim, Rng* rng);

  Graph::Var Apply(Graph* g, Graph::Var x) const;
  /// Fused tanh(x*W + b) — no intermediate pre-activation node.
  Graph::Var ApplyTanh(Graph* g, Graph::Var x) const;
  /// Fused relu(x*W + b).
  Graph::Var ApplyRelu(Graph* g, Graph::Var x) const;

  /// Adds W to `plan` (stored transposed: consumed as x * W^T). The bias
  /// stays fp32.
  void AppendQuantPlan(quant::QuantPlan* plan) const;
  /// Binds Apply* to the quantized copy of W in `store` (CHECKs that the
  /// store has it with the right shape).
  void AttachQuantized(const quant::QuantizedStore& store);
  /// Reverts Apply* to the fp32 parameter.
  void DetachQuantized() { qw_ = nullptr; }

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

 private:
  int in_dim_, out_dim_;
  Parameter* w_;
  Parameter* b_;
  const quant::QuantizedTensor* qw_ = nullptr;  ///< W^T when attached
};

/// Trainable embedding table (vocab x dim).
class Embedding {
 public:
  Embedding(ParameterStore* store, const std::string& name, int vocab,
            int dim, Rng* rng);

  /// Gathers rows by id: len(ids) x dim.
  Graph::Var Lookup(Graph* g, const std::vector<int>& ids) const;

  /// Overwrites the table with pre-trained vectors (row-major vocab x dim).
  void LoadPretrained(const std::vector<float>& table);

  /// Adds the table to `plan` (stored as-is: rows are gathered, not
  /// contracted).
  void AppendQuantPlan(quant::QuantPlan* plan) const;
  /// Binds Lookup to the quantized table in `store`.
  void AttachQuantized(const quant::QuantizedStore& store);
  void DetachQuantized() { qt_ = nullptr; }

  int dim() const { return dim_; }
  int vocab() const { return vocab_; }
  Parameter* parameter() const { return table_; }

 private:
  int vocab_, dim_;
  Parameter* table_;
  const quant::QuantizedTensor* qt_ = nullptr;
};

/// 1-D convolution over sequence rows with ReLU: T x D -> T x filters.
/// Implemented as windowed concat (odd window, zero padding) + affine.
class Conv1D {
 public:
  Conv1D(ParameterStore* store, const std::string& name, int in_dim,
         int filters, int window, Rng* rng);

  Graph::Var Apply(Graph* g, Graph::Var x) const;

  void AppendQuantPlan(quant::QuantPlan* plan) const;
  void AttachQuantized(const quant::QuantizedStore& store);
  void DetachQuantized() { proj_.DetachQuantized(); }

  int filters() const { return proj_.out_dim(); }
  int window() const { return window_; }

 private:
  int window_;
  Linear proj_;
};

/// Single-head scaled dot-product self-attention: T x d -> T x d,
/// optionally with a residual connection.
class SelfAttention {
 public:
  SelfAttention(ParameterStore* store, const std::string& name, int dim,
                Rng* rng, bool residual = true);

  Graph::Var Apply(Graph* g, Graph::Var x) const;

  void AppendQuantPlan(quant::QuantPlan* plan) const;
  void AttachQuantized(const quant::QuantizedStore& store);
  void DetachQuantized();

 private:
  int dim_;
  bool residual_;
  Linear q_, k_, v_;
};

/// Fully-connected stack with tanh hidden activations and a linear head.
class Mlp {
 public:
  /// `dims` = {in, hidden..., out}; at least {in, out}.
  Mlp(ParameterStore* store, const std::string& name,
      const std::vector<int>& dims, Rng* rng);

  Graph::Var Apply(Graph* g, Graph::Var x) const;

  void AppendQuantPlan(quant::QuantPlan* plan) const;
  void AttachQuantized(const quant::QuantizedStore& store);
  void DetachQuantized();

 private:
  std::vector<Linear> layers_;
};

}  // namespace alicoco::nn

#endif  // ALICOCO_NN_LAYERS_H_
