// Data-parallel minibatch training over a shared ThreadPool.
//
// A minibatch is split into one contiguous shard per worker. Each shard
// builds its graphs against a private GradientBuffer (a GradientSink), so
// concurrent backward passes never touch the shared Parameter::grad
// tensors. After the batch barrier the buffers are reduced into
// Parameter::grad on the calling thread, in shard order, and the optimizer
// steps exactly as it would after a sequential batch.
//
// Determinism: shard boundaries are a pure function of (batch size, worker
// count), and the reduction order is fixed, so a given pool size always
// produces bit-identical results. Across different pool sizes only the
// floating-point summation order of the batch gradient changes; any
// per-example randomness (dropout, token masking) must come from an Rng
// seeded per example (see ExampleSeed), not from a stream shared across
// the batch.

#ifndef ALICOCO_NN_PARALLEL_TRAIN_H_
#define ALICOCO_NN_PARALLEL_TRAIN_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "nn/graph.h"

namespace alicoco::nn {

/// Mixes a base seed with an (epoch, example) coordinate into an
/// independent per-example stream (splitmix64 finalizer). Thread-count
/// invariant: the stream depends only on which example is being processed.
inline uint64_t ExampleSeed(uint64_t base, uint64_t epoch, uint64_t example) {
  uint64_t z = base + 0x9E3779B97F4A7C15ull * (epoch + 1) +
               0xBF58476D1CE4E5B9ull * (example + 1);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

/// Per-worker gradient accumulator. GradFor is called only from the owning
/// worker thread; ReduceInto is called from the coordinating thread after
/// the pool barrier. Buffers persist (zeroed) across batches so steady-state
/// training does not allocate.
class GradientBuffer : public GradientSink {
 public:
  Tensor* GradFor(Parameter* p) override;

  /// Adds every buffered gradient into its parameter's shared grad tensor
  /// and zeroes the buffer for reuse.
  void ReduceInto();

 private:
  std::unordered_map<Parameter*, Tensor> grads_;
};

/// Shards minibatches across a ThreadPool. With a null pool (or a single
/// worker, or a single example) it degrades to the sequential path: graphs
/// run sinkless and accumulate straight into Parameter::grad.
class ParallelTrainer {
 public:
  /// fn builds the graph for one example, runs Backward itself, and returns
  /// the example loss. It must only touch shared model state read-only.
  using ExampleFn = std::function<float(Graph* g, size_t index)>;

  explicit ParallelTrainer(ThreadPool* pool) : pool_(pool) {}

  /// Runs fn over [0, count), accumulating gradients into Parameter::grad
  /// (via per-shard buffers when parallel). Returns the summed loss.
  /// The caller applies the optimizer step afterwards.
  float AccumulateBatch(size_t count, const ExampleFn& fn);

  size_t num_workers() const {
    return pool_ == nullptr ? 1 : pool_->num_threads();
  }

 private:
  ThreadPool* pool_;
  std::vector<GradientBuffer> buffers_;  // lazily sized to the shard count
};

}  // namespace alicoco::nn

#endif  // ALICOCO_NN_PARALLEL_TRAIN_H_
