// Binary (de)serialization of parameter stores (model checkpoints) and
// quantized weight stores (inference artifacts).

#ifndef ALICOCO_NN_SERIALIZE_H_
#define ALICOCO_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/graph.h"
#include "nn/quant.h"

namespace alicoco::nn {

/// Writes every parameter (name, shape, weights) to `path`.
[[nodiscard]] Status SaveParameters(const ParameterStore& store,
                                    const std::string& path);

/// Loads weights by parameter name into an already-constructed store.
/// Fails on missing names or shape mismatches; extra names in the file are
/// an error too (guards against loading the wrong checkpoint).
[[nodiscard]] Status LoadParameters(ParameterStore* store,
                                    const std::string& path);

/// Writes a quantized weight store to `path`. Versioned format (magic +
/// format version + quant mode), one tagged entry per tensor: quantized
/// entries carry the raw block codes and scales (int8) or half codes
/// (fp16), so a reload reproduces scores bit-for-bit; fp32 passthrough
/// entries carry plain floats. `store.mode()` must not be kNone.
[[nodiscard]] Status SaveQuantizedStore(const quant::QuantizedStore& store,
                                        const std::string& path);

/// Reads a quantized weight store written by SaveQuantizedStore. Corrupt
/// or truncated files fail with Status::Corruption; an unknown format
/// version fails with Status::InvalidArgument.
[[nodiscard]] Status LoadQuantizedStore(quant::QuantizedStore* store,
                                        const std::string& path);

}  // namespace alicoco::nn

#endif  // ALICOCO_NN_SERIALIZE_H_
