// Binary (de)serialization of parameter stores (model checkpoints).

#ifndef ALICOCO_NN_SERIALIZE_H_
#define ALICOCO_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/graph.h"

namespace alicoco::nn {

/// Writes every parameter (name, shape, weights) to `path`.
[[nodiscard]] Status SaveParameters(const ParameterStore& store,
                                    const std::string& path);

/// Loads weights by parameter name into an already-constructed store.
/// Fails on missing names or shape mismatches; extra names in the file are
/// an error too (guards against loading the wrong checkpoint).
[[nodiscard]] Status LoadParameters(ParameterStore* store,
                                    const std::string& path);

}  // namespace alicoco::nn

#endif  // ALICOCO_NN_SERIALIZE_H_
