#include "nn/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace alicoco::nn::quant {

const char* QuantModeName(QuantMode mode) {
  switch (mode) {
    case QuantMode::kNone:
      return "none";
    case QuantMode::kInt8:
      return "int8";
    case QuantMode::kFp16:
      return "fp16";
  }
  return "unknown";
}

void QuantizeRowsQ8(const float* src, int rows, int cols, int8_t* codes,
                    float* scales) {
  const int blocks = kernels::Q8Blocks(cols);
  for (int r = 0; r < rows; ++r) {
    const float* srow = src + static_cast<long>(r) * cols;
    int8_t* crow = codes + static_cast<long>(r) * blocks * kernels::kQ8Block;
    float* srow_scales = scales + static_cast<long>(r) * blocks;
    for (int blk = 0; blk < blocks; ++blk) {
      const int begin = blk * kernels::kQ8Block;
      const int len = std::min(kernels::kQ8Block, cols - begin);
      float absmax = 0.0f;
      for (int l = 0; l < len; ++l) {
        absmax = std::max(absmax, std::fabs(srow[begin + l]));
      }
      int8_t* cblk = crow + begin;
      if (absmax == 0.0f) {
        srow_scales[blk] = 0.0f;
        std::memset(cblk, 0, kernels::kQ8Block);
        continue;
      }
      const float scale = absmax / 127.0f;
      const float inv = 127.0f / absmax;
      srow_scales[blk] = scale;
      for (int l = 0; l < len; ++l) {
        // rint + clamp keeps codes in [-127, 127]; maddubs pair sums then
        // stay below int16 saturation in the AVX2 dot kernel.
        const float q = std::nearbyint(srow[begin + l] * inv);
        cblk[l] = static_cast<int8_t>(std::clamp(q, -127.0f, 127.0f));
      }
      for (int l = len; l < kernels::kQ8Block; ++l) cblk[l] = 0;
    }
  }
}

namespace {

QuantizedTensor QuantizeDense(const float* src, int rows, int cols,
                              QuantMode mode) {
  ALICOCO_CHECK(mode != QuantMode::kNone) << "cannot quantize to fp32 mode";
  if (mode == QuantMode::kInt8) {
    const int blocks = kernels::Q8Blocks(cols);
    std::vector<int8_t> codes(
        static_cast<size_t>(rows) * blocks * kernels::kQ8Block);
    std::vector<float> scales(static_cast<size_t>(rows) * blocks);
    QuantizeRowsQ8(src, rows, cols, codes.data(), scales.data());
    return QuantizedTensor::FromQ8(rows, cols, std::move(codes),
                                   std::move(scales));
  }
  std::vector<uint16_t> codes(static_cast<size_t>(rows) * cols);
  kernels::Fp32ToFp16(src, codes.data(), rows * cols);
  return QuantizedTensor::FromFp16(rows, cols, std::move(codes));
}

}  // namespace

QuantizedTensor QuantizedTensor::Quantize(const Tensor& t, QuantMode mode) {
  return QuantizeDense(t.data(), t.rows(), t.cols(), mode);
}

QuantizedTensor QuantizedTensor::QuantizeTransposed(const Tensor& t,
                                                    QuantMode mode) {
  Tensor tt(t.cols(), t.rows());
  for (int r = 0; r < t.rows(); ++r) {
    const float* srow = t.Row(r);
    for (int c = 0; c < t.cols(); ++c) tt.At(c, r) = srow[c];
  }
  return QuantizeDense(tt.data(), tt.rows(), tt.cols(), mode);
}

QuantizedTensor QuantizedTensor::FromQ8(int rows, int cols,
                                        std::vector<int8_t> codes,
                                        std::vector<float> scales) {
  const int blocks = kernels::Q8Blocks(cols);
  ALICOCO_CHECK(codes.size() ==
                static_cast<size_t>(rows) * blocks * kernels::kQ8Block)
      << "q8 code buffer size mismatch for " << rows << "x" << cols;
  ALICOCO_CHECK(scales.size() == static_cast<size_t>(rows) * blocks)
      << "q8 scale buffer size mismatch for " << rows << "x" << cols;
  QuantizedTensor out;
  out.mode_ = QuantMode::kInt8;
  out.rows_ = rows;
  out.cols_ = cols;
  out.blocks_per_row_ = blocks;
  out.q8_ = std::move(codes);
  out.scales_ = std::move(scales);
  return out;
}

QuantizedTensor QuantizedTensor::FromFp16(int rows, int cols,
                                          std::vector<uint16_t> codes) {
  ALICOCO_CHECK(codes.size() == static_cast<size_t>(rows) * cols)
      << "fp16 code buffer size mismatch for " << rows << "x" << cols;
  QuantizedTensor out;
  out.mode_ = QuantMode::kFp16;
  out.rows_ = rows;
  out.cols_ = cols;
  out.fp16_ = std::move(codes);
  return out;
}

void QuantizedTensor::DequantizeRow(int r, float* out) const {
  ALICOCO_CHECK(r >= 0 && r < rows_) << "DequantizeRow(" << r << ") of "
                                     << rows_;
  if (mode_ == QuantMode::kFp16) {
    kernels::Fp16ToFp32(fp16_.data() + static_cast<long>(r) * cols_, out,
                        cols_);
    return;
  }
  ALICOCO_CHECK(mode_ == QuantMode::kInt8);
  const int8_t* crow =
      q8_.data() + static_cast<long>(r) * blocks_per_row_ * kernels::kQ8Block;
  const float* srow = scales_.data() + static_cast<long>(r) * blocks_per_row_;
  for (int blk = 0; blk < blocks_per_row_; ++blk) {
    const int begin = blk * kernels::kQ8Block;
    const int len = std::min(kernels::kQ8Block, cols_ - begin);
    const float scale = srow[blk];
    for (int l = 0; l < len; ++l) {
      out[begin + l] = scale * static_cast<float>(crow[begin + l]);
    }
  }
}

Tensor QuantizedTensor::Dequantize() const {
  Tensor out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) DequantizeRow(r, out.Row(r));
  return out;
}

void GemmTransW(const Tensor& x, const QuantizedTensor& wt, Tensor* y) {
  ALICOCO_CHECK(x.cols() == wt.cols())
      << "GemmTransW contraction mismatch: x is " << x.rows() << "x"
      << x.cols() << ", W^T is " << wt.rows() << "x" << wt.cols();
  ALICOCO_CHECK(y->rows() == x.rows() && y->cols() == wt.rows())
      << "GemmTransW output shape: want " << x.rows() << "x" << wt.rows()
      << ", got " << y->rows() << "x" << y->cols();
  if (wt.mode() == QuantMode::kFp16) {
    kernels::Fp16GemmTransBAccum(x.rows(), x.cols(), wt.rows(), x.data(),
                                 wt.fp16_data(), y->data());
    return;
  }
  ALICOCO_CHECK(wt.mode() == QuantMode::kInt8)
      << "GemmTransW on fp32-mode tensor";
  const int blocks = wt.blocks_per_row();
  std::vector<int8_t> xq(static_cast<size_t>(x.rows()) * blocks *
                         kernels::kQ8Block);
  std::vector<float> xscales(static_cast<size_t>(x.rows()) * blocks);
  QuantizeRowsQ8(x.data(), x.rows(), x.cols(), xq.data(), xscales.data());
  kernels::Q8GemmDotAccum(x.rows(), x.cols(), wt.rows(), xq.data(),
                          xscales.data(), wt.q8_data(), wt.q8_scales(),
                          y->data());
}

const QuantizedTensor* QuantizedStore::FindQuantized(
    const std::string& name) const {
  for (const auto& [key, tensor] : quantized_) {
    if (key == name) return &tensor;
  }
  return nullptr;
}

const Tensor* QuantizedStore::FindFp32(const std::string& name) const {
  for (const auto& [key, tensor] : fp32_) {
    if (key == name) return &tensor;
  }
  return nullptr;
}

size_t QuantizedStore::TotalBytes() const {
  size_t total = 0;
  for (const auto& [key, tensor] : quantized_) total += tensor.byte_size();
  return total;
}

QuantizedStore QuantizeParams(const ParameterStore& store,
                              const QuantPlan& plan, QuantMode mode) {
  ALICOCO_CHECK(mode != QuantMode::kNone)
      << "QuantizeParams requires int8 or fp16 mode";
  QuantizedStore out(mode);
  for (const auto& entry : plan) {
    ALICOCO_CHECK(entry.param != nullptr) << "null parameter in quant plan";
  }
  for (const auto& param : store.params()) {
    const QuantPlanEntry* planned = nullptr;
    for (const auto& entry : plan) {
      if (entry.param == param.get()) {
        planned = &entry;
        break;
      }
    }
    if (planned == nullptr) {
      out.AddFp32(param->name, param->value);
      continue;
    }
    out.AddQuantized(param->name,
                     planned->transpose
                         ? QuantizedTensor::QuantizeTransposed(param->value,
                                                               mode)
                         : QuantizedTensor::Quantize(param->value, mode));
  }
  return out;
}

}  // namespace alicoco::nn::quant
