// Blocked, register-tiled float GEMM kernels — the compute substrate for
// every matmul in the autodiff graph and the fused layer ops.
//
// All kernels ACCUMULATE into C (row-major, dense: leading dimension equals
// the logical column count) so they slot directly into reverse-mode gradient
// accumulation. Three orientations cover forward, dA and dB of a matmul:
//
//   GemmAccum:       C (m x n) += A (m x k)   * B (k x n)
//   GemmTransBAccum: C (m x n) += A (m x k)   * B^T, B stored (n x k)
//   GemmTransAAccum: C (k x n) += A^T * B,    A stored (m x k), B (m x n)
//
// Blocking scheme: the n and k dimensions are tiled (kNc x kKc) so the
// active B panel stays L1-resident, and the m dimension is register-tiled
// kMr rows at a time so each loaded B row is reused kMr times from
// registers. Inner loops are branch-free over `__restrict` pointers, which
// lets the compiler auto-vectorize them (the old scalar triple loop carried
// an `if (av == 0.0f) continue;` that defeated this).
//
// `naive` holds the original scalar implementations; they are the reference
// oracle for the randomized equivalence tests and a fallback for debugging.
// Results may differ from the blocked kernels only by float reassociation.

#ifndef ALICOCO_NN_KERNELS_H_
#define ALICOCO_NN_KERNELS_H_

namespace alicoco::nn::kernels {

void GemmAccum(int m, int k, int n, const float* a, const float* b, float* c);
void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c);
void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c);

/// Fused bias + activation: out[r][j] = act(x[r][j] + bias[j]).
/// `out` may alias `x`.
void AddBias(int rows, int cols, const float* x, const float* bias,
             float* out);
void AddBiasTanh(int rows, int cols, const float* x, const float* bias,
                 float* out);
void AddBiasRelu(int rows, int cols, const float* x, const float* bias,
                 float* out);

namespace naive {

void GemmAccum(int m, int k, int n, const float* a, const float* b, float* c);
void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c);
void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c);

}  // namespace naive

}  // namespace alicoco::nn::kernels

#endif  // ALICOCO_NN_KERNELS_H_
