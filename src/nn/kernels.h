// Runtime-dispatched GEMM / fused-bias / quantized micro-kernels — the
// compute substrate for every matmul in the autodiff graph, the fused layer
// ops, and the quantized inference tier (nn/quant.h).
//
// All GEMM kernels ACCUMULATE into C (row-major, dense: leading dimension
// equals the logical column count) so they slot directly into reverse-mode
// gradient accumulation. Three orientations cover forward, dA and dB of a
// matmul:
//
//   GemmAccum:       C (m x n) += A (m x k)   * B (k x n)
//   GemmTransBAccum: C (m x n) += A (m x k)   * B^T, B stored (n x k)
//   GemmTransAAccum: C (k x n) += A^T * B,    A stored (m x k), B (m x n)
//
// Dispatch tiers. Every public kernel routes through a `KernelDispatch`
// table selected once at startup by CPUID: `avx2` (AVX2 + FMA + F16C
// vectorized implementations, kernels_avx2.cc) where the hardware supports
// it, `scalar` (portable blocked + register-tiled C++, this header's
// `scalar` namespace) everywhere else. `ALICOCO_SIMD=scalar` in the
// environment — or `ForceScalarKernels(true)` in tests — pins the scalar
// tier so CI without AVX2 hardware still covers every code path. The
// scalar tier is the correctness reference for the vectorized one; both
// may differ from `naive` (the original triple loops) only by float
// reassociation.
//
// Scalar blocking scheme: the n and k dimensions are tiled (kNc x kKc in
// kernels.cc) so the active B panel stays L1-resident, and the micro-kernel
// accumulates a kMr x kNr register tile of C across the whole k pass —
// C rows are loaded and stored once per panel instead of once per k step,
// which is what the pre-retune kernel got wrong (~1.1x over naive).
//
// Quantized kernels: `Q8GemmDotAccum` is the int8 x int8 -> int32 dot
// micro-kernel over 32-lane blocks (one float scale per block, values in
// [-127, 127] so the AVX2 `maddubs` pairing cannot saturate);
// `Fp16GemmTransBAccum` loads IEEE half weights and accumulates in fp32.
// `Fp32ToFp16`/`Fp16ToFp32` are round-to-nearest-even conversions that are
// bit-identical between the scalar and F16C paths.

#ifndef ALICOCO_NN_KERNELS_H_
#define ALICOCO_NN_KERNELS_H_

#include <cstdint>

namespace alicoco::nn::kernels {

// ---- dispatched fp32 kernels --------------------------------------------

void GemmAccum(int m, int k, int n, const float* a, const float* b, float* c);
void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c);
void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c);

/// Fused bias + activation: out[r][j] = act(x[r][j] + bias[j]).
/// `out` may alias `x`.
void AddBias(int rows, int cols, const float* x, const float* bias,
             float* out);
void AddBiasTanh(int rows, int cols, const float* x, const float* bias,
                 float* out);
void AddBiasRelu(int rows, int cols, const float* x, const float* bias,
                 float* out);

// ---- dispatched quantized kernels ---------------------------------------

/// Lanes per int8 quantization block (one float scale per block).
inline constexpr int kQ8Block = 32;

/// Number of 32-lane blocks covering a k-length row (tail lanes are stored
/// as zero, which contribute nothing to the integer dot).
constexpr int Q8Blocks(int k) { return (k + kQ8Block - 1) / kQ8Block; }

/// C (m x n) += A_q8 (m rows over k) . B_q8^T (n rows over k), both sides
/// blockwise int8: row i of A starts at aq + i * Q8Blocks(k) * 32 with
/// scales at ascales + i * Q8Blocks(k) (likewise B). Each block contributes
/// ascale * bscale * (int32 dot of 32 int8 pairs).
void Q8GemmDotAccum(int m, int k, int n, const int8_t* aq,
                    const float* ascales, const int8_t* bq,
                    const float* bscales, float* c);

/// C (m x n) += A (m x k, fp32) . B^T where B is n x k IEEE-half values
/// (row j of B at b + j * k); accumulation is fp32.
void Fp16GemmTransBAccum(int m, int k, int n, const float* a,
                         const uint16_t* b, float* c);

/// IEEE 754 binary32 <-> binary16, round-to-nearest-even. Scalar and F16C
/// paths are bit-identical (asserted in tests).
void Fp32ToFp16(const float* src, uint16_t* dst, int n);
void Fp16ToFp32(const uint16_t* src, float* dst, int n);

// ---- dispatch table ------------------------------------------------------

/// One entry per dispatched kernel; `ActiveKernels()` returns the table the
/// public functions above route through.
struct KernelDispatch {
  const char* tier;  ///< "scalar" or "avx2"
  void (*gemm)(int, int, int, const float*, const float*, float*);
  void (*gemm_transb)(int, int, int, const float*, const float*, float*);
  void (*gemm_transa)(int, int, int, const float*, const float*, float*);
  void (*add_bias)(int, int, const float*, const float*, float*);
  void (*add_bias_tanh)(int, int, const float*, const float*, float*);
  void (*add_bias_relu)(int, int, const float*, const float*, float*);
  void (*q8_gemm_dot)(int, int, int, const int8_t*, const float*,
                      const int8_t*, const float*, float*);
  void (*fp16_gemm_transb)(int, int, int, const float*, const uint16_t*,
                           float*);
  void (*fp32_to_fp16)(const float*, uint16_t*, int);
  void (*fp16_to_fp32)(const uint16_t*, float*, int);
};

/// The active table: CPUID-selected at first use; `ALICOCO_SIMD=scalar`
/// in the environment pins the portable tier.
const KernelDispatch& ActiveKernels();

/// Name of the active tier ("scalar" / "avx2").
const char* ActiveKernelTier();

/// Test/CI hook: `true` forces the scalar table regardless of CPU,
/// `false` restores the CPUID choice. Not thread-safe against in-flight
/// kernels; flip only from single-threaded context.
void ForceScalarKernels(bool force);

/// Whether this build + CPU can run the AVX2 tier at all (independent of
/// the current force state).
bool KernelsHaveAvx2();

// ---- portable reference tier --------------------------------------------

namespace scalar {

void GemmAccum(int m, int k, int n, const float* a, const float* b, float* c);
void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c);
void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c);
void AddBias(int rows, int cols, const float* x, const float* bias,
             float* out);
void AddBiasTanh(int rows, int cols, const float* x, const float* bias,
                 float* out);
void AddBiasRelu(int rows, int cols, const float* x, const float* bias,
                 float* out);
void Q8GemmDotAccum(int m, int k, int n, const int8_t* aq,
                    const float* ascales, const int8_t* bq,
                    const float* bscales, float* c);
void Fp16GemmTransBAccum(int m, int k, int n, const float* a,
                         const uint16_t* b, float* c);
void Fp32ToFp16(const float* src, uint16_t* dst, int n);
void Fp16ToFp32(const uint16_t* src, float* dst, int n);

}  // namespace scalar

// ---- AVX2 tier (kernels_avx2.cc, compiled with -mavx2 -mfma -mf16c) -----

namespace avx2 {

/// The AVX2 dispatch table, or nullptr when the build target or the
/// running CPU cannot execute it. Callers must not invoke table entries
/// obtained while this returned nullptr.
const KernelDispatch* Table();

}  // namespace avx2

// ---- original triple loops (oracle for the equivalence tests) -----------

namespace naive {

void GemmAccum(int m, int k, int n, const float* a, const float* b, float* c);
void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c);
void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c);

}  // namespace naive

}  // namespace alicoco::nn::kernels

#endif  // ALICOCO_NN_KERNELS_H_
