#include "nn/tensor.h"

#include <cmath>

#include "nn/kernels.h"

namespace alicoco::nn {

Tensor Tensor::FromVector(int rows, int cols, std::vector<float> data) {
  ALICOCO_CHECK(rows >= 0 && cols >= 0)
      << "FromVector negative shape " << rows << "x" << cols;
  ALICOCO_CHECK_EQ(static_cast<size_t>(rows) * static_cast<size_t>(cols),
                   data.size())
      << "FromVector shape mismatch for " << rows << "x" << cols;
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::Randn(int rows, int cols, float stddev, Rng* rng) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) {
    v = stddev * static_cast<float>(rng->NextGaussian());
  }
  return t;
}

Tensor Tensor::Xavier(int rows, int cols, Rng* rng) {
  Tensor t(rows, cols);
  float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (auto& v : t.data_) v = rng->UniformFloat(-bound, bound);
  return t;
}

void Tensor::AddInPlace(const Tensor& other) {
  ALICOCO_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Axpy(float scale, const Tensor& other) {
  ALICOCO_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Tensor::Scale(float s) {
  for (auto& v : data_) v *= s;
}

double Tensor::SquaredNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

Tensor MatMulValue(const Tensor& a, const Tensor& b) {
  ALICOCO_CHECK_EQ(a.cols(), b.rows())
      << "matmul shapes " << a.rows() << "x" << a.cols() << " * " << b.rows()
      << "x" << b.cols();
  Tensor c(a.rows(), b.cols());
  MatMulAccum(a, b, &c);
  return c;
}

void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* c) {
  ALICOCO_CHECK(c != nullptr);
  ALICOCO_CHECK_EQ(a.cols(), b.rows());
  ALICOCO_CHECK_EQ(c->rows(), a.rows());
  ALICOCO_CHECK_EQ(c->cols(), b.cols());
  kernels::GemmAccum(a.rows(), a.cols(), b.cols(), a.data(), b.data(),
                     c->data());
}

void MatMulTransBAccum(const Tensor& a, const Tensor& b, Tensor* c) {
  // C (m x n) += A (m x k) * B^T where B is (n x k).
  ALICOCO_CHECK(c != nullptr);
  ALICOCO_CHECK_EQ(a.cols(), b.cols());
  ALICOCO_CHECK_EQ(c->rows(), a.rows());
  ALICOCO_CHECK_EQ(c->cols(), b.rows());
  kernels::GemmTransBAccum(a.rows(), a.cols(), b.rows(), a.data(), b.data(),
                           c->data());
}

void MatMulTransAAccum(const Tensor& a, const Tensor& b, Tensor* c) {
  // C (k x n) += A^T * B where A is (m x k), B is (m x n).
  ALICOCO_CHECK(c != nullptr);
  ALICOCO_CHECK_EQ(a.rows(), b.rows());
  ALICOCO_CHECK_EQ(c->rows(), a.cols());
  ALICOCO_CHECK_EQ(c->cols(), b.cols());
  kernels::GemmTransAAccum(a.rows(), a.cols(), b.cols(), a.data(), b.data(),
                           c->data());
}

}  // namespace alicoco::nn
