#include "nn/kernels.h"

#include <algorithm>
#include <cmath>

namespace alicoco::nn::kernels {
namespace {

// Register tile height: each B row loaded in the micro-kernel is reused for
// kMr rows of A/C. Cache tiles keep the active B panel (kKc x kNc floats,
// 32 KiB) L1/L2-resident for large shapes while adding no overhead for the
// small ones the models use.
constexpr int kMr = 4;
constexpr int kKc = 64;
constexpr int kNc = 128;

// C[i0..i0+rows) x [j0..j0+nb) += A[i0..i0+rows) x [p0..p0+kb) * B-panel.
// rows <= kMr; all inner loops branch-free.
inline void MicroGemm(int rows, int kb, int nb, const float* __restrict a0,
                      int lda, const float* __restrict b0, int ldb,
                      float* __restrict c0, int ldc) {
  switch (rows) {
    case 4:
      for (int p = 0; p < kb; ++p) {
        const float av0 = a0[p];
        const float av1 = a0[lda + p];
        const float av2 = a0[2 * lda + p];
        const float av3 = a0[3 * lda + p];
        const float* __restrict br = b0 + static_cast<long>(p) * ldb;
        float* __restrict cr0 = c0;
        float* __restrict cr1 = c0 + ldc;
        float* __restrict cr2 = c0 + 2 * ldc;
        float* __restrict cr3 = c0 + 3 * ldc;
        for (int j = 0; j < nb; ++j) {
          const float bv = br[j];
          cr0[j] += av0 * bv;
          cr1[j] += av1 * bv;
          cr2[j] += av2 * bv;
          cr3[j] += av3 * bv;
        }
      }
      break;
    case 3:
      for (int p = 0; p < kb; ++p) {
        const float av0 = a0[p];
        const float av1 = a0[lda + p];
        const float av2 = a0[2 * lda + p];
        const float* __restrict br = b0 + static_cast<long>(p) * ldb;
        float* __restrict cr0 = c0;
        float* __restrict cr1 = c0 + ldc;
        float* __restrict cr2 = c0 + 2 * ldc;
        for (int j = 0; j < nb; ++j) {
          const float bv = br[j];
          cr0[j] += av0 * bv;
          cr1[j] += av1 * bv;
          cr2[j] += av2 * bv;
        }
      }
      break;
    case 2:
      for (int p = 0; p < kb; ++p) {
        const float av0 = a0[p];
        const float av1 = a0[lda + p];
        const float* __restrict br = b0 + static_cast<long>(p) * ldb;
        float* __restrict cr0 = c0;
        float* __restrict cr1 = c0 + ldc;
        for (int j = 0; j < nb; ++j) {
          const float bv = br[j];
          cr0[j] += av0 * bv;
          cr1[j] += av1 * bv;
        }
      }
      break;
    default:
      for (int p = 0; p < kb; ++p) {
        const float av0 = a0[p];
        const float* __restrict br = b0 + static_cast<long>(p) * ldb;
        float* __restrict cr0 = c0;
        for (int j = 0; j < nb; ++j) cr0[j] += av0 * br[j];
      }
      break;
  }
}

}  // namespace

void GemmAccum(int m, int k, int n, const float* a, const float* b, float* c) {
  if (k <= kKc && n <= kNc) {
    // The whole problem is one cache tile (the common case for the model
    // dims in this repo); go straight to the micro-kernel.
    for (int i0 = 0; i0 < m; i0 += kMr) {
      const int rows = std::min(kMr, m - i0);
      MicroGemm(rows, k, n, a + static_cast<long>(i0) * k, k, b, n,
                c + static_cast<long>(i0) * n, n);
    }
    return;
  }
  for (int j0 = 0; j0 < n; j0 += kNc) {
    const int nb = std::min(kNc, n - j0);
    for (int p0 = 0; p0 < k; p0 += kKc) {
      const int kb = std::min(kKc, k - p0);
      const float* bpanel = b + static_cast<long>(p0) * n + j0;
      for (int i0 = 0; i0 < m; i0 += kMr) {
        const int rows = std::min(kMr, m - i0);
        MicroGemm(rows, kb, nb, a + static_cast<long>(i0) * k + p0, k, bpanel,
                  n, c + static_cast<long>(i0) * n + j0, n);
      }
    }
  }
}

void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  // C[i][j] += dot(A row i, B row j). Four j's at a time: four independent
  // accumulator chains per pass over k.
  for (int i = 0; i < m; ++i) {
    const float* __restrict ar = a + static_cast<long>(i) * k;
    float* __restrict cr = c + static_cast<long>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* __restrict b0 = b + static_cast<long>(j) * k;
      const float* __restrict b1 = b0 + k;
      const float* __restrict b2 = b1 + k;
      const float* __restrict b3 = b2 + k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float av = ar[p];
        acc0 += av * b0[p];
        acc1 += av * b1[p];
        acc2 += av * b2[p];
        acc3 += av * b3[p];
      }
      cr[j] += acc0;
      cr[j + 1] += acc1;
      cr[j + 2] += acc2;
      cr[j + 3] += acc3;
    }
    for (; j < n; ++j) {
      const float* __restrict br = b + static_cast<long>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += ar[p] * br[p];
      cr[j] += acc;
    }
  }
}

void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  // C (k x n) += A^T * B: rank-1 updates per row of A/B, with the k
  // dimension register-tiled so each loaded B row feeds kMr C rows.
  for (int i = 0; i < m; ++i) {
    const float* __restrict ar = a + static_cast<long>(i) * k;
    const float* __restrict br = b + static_cast<long>(i) * n;
    int p = 0;
    for (; p + 4 <= k; p += 4) {
      const float av0 = ar[p];
      const float av1 = ar[p + 1];
      const float av2 = ar[p + 2];
      const float av3 = ar[p + 3];
      float* __restrict cr0 = c + static_cast<long>(p) * n;
      float* __restrict cr1 = cr0 + n;
      float* __restrict cr2 = cr1 + n;
      float* __restrict cr3 = cr2 + n;
      for (int j = 0; j < n; ++j) {
        const float bv = br[j];
        cr0[j] += av0 * bv;
        cr1[j] += av1 * bv;
        cr2[j] += av2 * bv;
        cr3[j] += av3 * bv;
      }
    }
    for (; p < k; ++p) {
      const float av = ar[p];
      float* __restrict cr = c + static_cast<long>(p) * n;
      for (int j = 0; j < n; ++j) cr[j] += av * br[j];
    }
  }
}

// `out` may alias `x` (the fused affine ops apply the bias in place), so
// only `bias` carries __restrict; the loops stay vectorizable because each
// element depends solely on its own index.
void AddBias(int rows, int cols, const float* x,
             const float* __restrict bias, float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<long>(i) * cols;
    float* or_ = out + static_cast<long>(i) * cols;
    for (int j = 0; j < cols; ++j) or_[j] = xr[j] + bias[j];
  }
}

void AddBiasTanh(int rows, int cols, const float* x,
                 const float* __restrict bias, float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<long>(i) * cols;
    float* or_ = out + static_cast<long>(i) * cols;
    for (int j = 0; j < cols; ++j) or_[j] = std::tanh(xr[j] + bias[j]);
  }
}

void AddBiasRelu(int rows, int cols, const float* x,
                 const float* __restrict bias, float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<long>(i) * cols;
    float* or_ = out + static_cast<long>(i) * cols;
    for (int j = 0; j < cols; ++j) {
      const float v = xr[j] + bias[j];
      or_[j] = v > 0.0f ? v : 0.0f;
    }
  }
}

namespace naive {

void GemmAccum(int m, int k, int n, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<long>(i) * k;
    float* crow = c + static_cast<long>(i) * n;
    for (int p = 0; p < k; ++p) {
      float av = arow[p];
      const float* brow = b + static_cast<long>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<long>(i) * k;
    float* crow = c + static_cast<long>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<long>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<long>(i) * k;
    const float* brow = b + static_cast<long>(i) * n;
    for (int p = 0; p < k; ++p) {
      float av = arow[p];
      float* crow = c + static_cast<long>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace naive

}  // namespace alicoco::nn::kernels
