#include "nn/kernels.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace alicoco::nn::kernels {

namespace scalar {
namespace {

// Register tile: the micro-kernel accumulates a kMr x kNr patch of C in
// locals across the whole k pass (the compiler turns the fixed-width inner
// loops into SIMD accumulators), so C traffic is one load + one store per
// panel instead of one per k step. Cache tiles keep the active B panel
// (kKc x kNc floats) L1/L2-resident for large shapes while adding no
// overhead for the small ones the models use.
constexpr int kMr = 4;
constexpr int kNr = 8;
constexpr int kKc = 128;
constexpr int kNc = 128;

// C tile [R x kNr] at c0 += A rows [R x kb] at a0 * B panel at b0.
template <int R>
inline void MicroTile(int kb, const float* __restrict a0, int lda,
                      const float* __restrict b0, int ldb,
                      float* __restrict c0, int ldc) {
  float acc[R][kNr];
  for (int r = 0; r < R; ++r) {
    for (int j = 0; j < kNr; ++j) acc[r][j] = c0[r * ldc + j];
  }
  for (int p = 0; p < kb; ++p) {
    const float* __restrict br = b0 + static_cast<long>(p) * ldb;
    for (int r = 0; r < R; ++r) {
      const float av = a0[r * lda + p];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * br[j];
    }
  }
  for (int r = 0; r < R; ++r) {
    for (int j = 0; j < kNr; ++j) c0[r * ldc + j] = acc[r][j];
  }
}

// Ragged edge: rows < kMr and/or nb < kNr, accumulators still hoisted out
// of the k loop (variable-width, so scalar code — at most kMr*kNr locals).
inline void MicroEdge(int rows, int kb, int nb, const float* __restrict a0,
                      int lda, const float* __restrict b0, int ldb,
                      float* __restrict c0, int ldc) {
  float acc[kMr][kNr];
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < nb; ++j) acc[r][j] = c0[r * ldc + j];
  }
  for (int p = 0; p < kb; ++p) {
    const float* __restrict br = b0 + static_cast<long>(p) * ldb;
    for (int r = 0; r < rows; ++r) {
      const float av = a0[r * lda + p];
      for (int j = 0; j < nb; ++j) acc[r][j] += av * br[j];
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < nb; ++j) c0[r * ldc + j] = acc[r][j];
  }
}

// One panel: C [rows x nb] += A [rows x kb] * B [kb x nb], j chunked by
// the register tile width.
inline void MicroPanel(int rows, int kb, int nb, const float* __restrict a0,
                       int lda, const float* __restrict b0, int ldb,
                       float* __restrict c0, int ldc) {
  int j = 0;
  if (rows == kMr) {
    for (; j + kNr <= nb; j += kNr) {
      MicroTile<kMr>(kb, a0, lda, b0 + j, ldb, c0 + j, ldc);
    }
  } else {
    for (; j + kNr <= nb; j += kNr) {
      MicroEdge(rows, kb, kNr, a0, lda, b0 + j, ldb, c0 + j, ldc);
    }
  }
  if (j < nb) MicroEdge(rows, kb, nb - j, a0, lda, b0 + j, ldb, c0 + j, ldc);
}

}  // namespace

void GemmAccum(int m, int k, int n, const float* a, const float* b, float* c) {
  if (k <= kKc && n <= kNc) {
    // The whole problem is one cache tile (the common case for the model
    // dims in this repo); go straight to the micro-kernels.
    for (int i0 = 0; i0 < m; i0 += kMr) {
      const int rows = std::min(kMr, m - i0);
      MicroPanel(rows, k, n, a + static_cast<long>(i0) * k, k, b, n,
                 c + static_cast<long>(i0) * n, n);
    }
    return;
  }
  for (int j0 = 0; j0 < n; j0 += kNc) {
    const int nb = std::min(kNc, n - j0);
    for (int p0 = 0; p0 < k; p0 += kKc) {
      const int kb = std::min(kKc, k - p0);
      const float* bpanel = b + static_cast<long>(p0) * n + j0;
      for (int i0 = 0; i0 < m; i0 += kMr) {
        const int rows = std::min(kMr, m - i0);
        MicroPanel(rows, kb, nb, a + static_cast<long>(i0) * k + p0, k,
                   bpanel, n, c + static_cast<long>(i0) * n + j0, n);
      }
    }
  }
}

void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  // C[i][j] += dot(A row i, B row j). Four j's at a time: four independent
  // accumulator chains per pass over k.
  for (int i = 0; i < m; ++i) {
    const float* __restrict ar = a + static_cast<long>(i) * k;
    float* __restrict cr = c + static_cast<long>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* __restrict b0 = b + static_cast<long>(j) * k;
      const float* __restrict b1 = b0 + k;
      const float* __restrict b2 = b1 + k;
      const float* __restrict b3 = b2 + k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float av = ar[p];
        acc0 += av * b0[p];
        acc1 += av * b1[p];
        acc2 += av * b2[p];
        acc3 += av * b3[p];
      }
      cr[j] += acc0;
      cr[j + 1] += acc1;
      cr[j + 2] += acc2;
      cr[j + 3] += acc3;
    }
    for (; j < n; ++j) {
      const float* __restrict br = b + static_cast<long>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += ar[p] * br[p];
      cr[j] += acc;
    }
  }
}

void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  // C (k x n) += A^T * B: rank-1 updates per row of A/B, with the k
  // dimension register-tiled so each loaded B row feeds kMr C rows.
  for (int i = 0; i < m; ++i) {
    const float* __restrict ar = a + static_cast<long>(i) * k;
    const float* __restrict br = b + static_cast<long>(i) * n;
    int p = 0;
    for (; p + 4 <= k; p += 4) {
      const float av0 = ar[p];
      const float av1 = ar[p + 1];
      const float av2 = ar[p + 2];
      const float av3 = ar[p + 3];
      float* __restrict cr0 = c + static_cast<long>(p) * n;
      float* __restrict cr1 = cr0 + n;
      float* __restrict cr2 = cr1 + n;
      float* __restrict cr3 = cr2 + n;
      for (int j = 0; j < n; ++j) {
        const float bv = br[j];
        cr0[j] += av0 * bv;
        cr1[j] += av1 * bv;
        cr2[j] += av2 * bv;
        cr3[j] += av3 * bv;
      }
    }
    for (; p < k; ++p) {
      const float av = ar[p];
      float* __restrict cr = c + static_cast<long>(p) * n;
      for (int j = 0; j < n; ++j) cr[j] += av * br[j];
    }
  }
}

// `out` may alias `x` (the fused affine ops apply the bias in place), so
// only `bias` carries __restrict; the loops stay vectorizable because each
// element depends solely on its own index.
void AddBias(int rows, int cols, const float* x,
             const float* __restrict bias, float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<long>(i) * cols;
    float* or_ = out + static_cast<long>(i) * cols;
    for (int j = 0; j < cols; ++j) or_[j] = xr[j] + bias[j];
  }
}

void AddBiasTanh(int rows, int cols, const float* x,
                 const float* __restrict bias, float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<long>(i) * cols;
    float* or_ = out + static_cast<long>(i) * cols;
    for (int j = 0; j < cols; ++j) or_[j] = std::tanh(xr[j] + bias[j]);
  }
}

void AddBiasRelu(int rows, int cols, const float* x,
                 const float* __restrict bias, float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<long>(i) * cols;
    float* or_ = out + static_cast<long>(i) * cols;
    for (int j = 0; j < cols; ++j) {
      const float v = xr[j] + bias[j];
      or_[j] = v > 0.0f ? v : 0.0f;
    }
  }
}

void Q8GemmDotAccum(int m, int k, int n, const int8_t* aq,
                    const float* ascales, const int8_t* bq,
                    const float* bscales, float* c) {
  const int blocks = Q8Blocks(k);
  const long row_q = static_cast<long>(blocks) * kQ8Block;
  for (int i = 0; i < m; ++i) {
    const int8_t* __restrict ar = aq + i * row_q;
    const float* __restrict as = ascales + static_cast<long>(i) * blocks;
    float* __restrict cr = c + static_cast<long>(i) * n;
    for (int j = 0; j < n; ++j) {
      const int8_t* __restrict br = bq + j * row_q;
      const float* __restrict bs = bscales + static_cast<long>(j) * blocks;
      float acc = 0.0f;
      for (int blk = 0; blk < blocks; ++blk) {
        const int8_t* __restrict ab = ar + blk * kQ8Block;
        const int8_t* __restrict bb = br + blk * kQ8Block;
        int32_t idot = 0;
        for (int l = 0; l < kQ8Block; ++l) {
          idot += static_cast<int32_t>(ab[l]) * static_cast<int32_t>(bb[l]);
        }
        acc += as[blk] * bs[blk] * static_cast<float>(idot);
      }
      cr[j] += acc;
    }
  }
}

namespace {

// Round-to-nearest-even binary32 -> binary16 (handles subnormals, inf,
// nan, mantissa-carry into the exponent and overflow to inf). Must stay
// bit-identical to F16C's VCVTPS2PH so checkpoints do not depend on the
// tier that wrote them.
inline uint16_t F32ToF16One(float f) {
  const uint32_t x = std::bit_cast<uint32_t>(f);
  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  const uint32_t abs = x & 0x7FFFFFFFu;
  if (abs >= 0x47800000u) {  // >= 65536: inf/nan, or overflow to inf
    if (abs > 0x7F800000u) return sign | 0x7E00u;  // nan (quiet)
    return sign | 0x7C00u;
  }
  if (abs < 0x38800000u) {  // below the smallest normal half: subnormal
    if (abs < 0x33000000u) return sign;  // < 2^-25 underflows to zero
    const int shift = 113 - static_cast<int>(abs >> 23);
    const uint32_t mant = (abs & 0x7FFFFFu) | 0x800000u;
    uint32_t half = mant >> (shift + 13);
    const uint32_t rem = mant & ((1u << (shift + 13)) - 1u);
    const uint32_t halfway = 1u << (shift + 12);
    if (rem > halfway || (rem == halfway && (half & 1u))) ++half;
    return sign | static_cast<uint16_t>(half);
  }
  const uint32_t mant = abs & 0x7FFFFFu;
  const int exp = static_cast<int>(abs >> 23) - 127 + 15;
  uint16_t h = static_cast<uint16_t>((exp << 10) | (mant >> 13));
  const uint32_t rem = mant & 0x1FFFu;
  // A carry out of the rounded mantissa increments the exponent (and can
  // legitimately round 65504 < |x| into inf).
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return sign | h;
}

inline float F16ToF32One(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t mant = h & 0x3FFu;
  uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;
    } else {  // subnormal half: renormalize
      int s = 0;
      while (!(mant & 0x400u)) {
        mant <<= 1;
        ++s;
      }
      f = sign | (static_cast<uint32_t>(113 - s) << 23) |
          ((mant & 0x3FFu) << 13);
    }
  } else if (exp == 31) {
    f = sign | 0x7F800000u | (mant << 13);
  } else {
    f = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(f);
}

}  // namespace

void Fp16GemmTransBAccum(int m, int k, int n, const float* a,
                         const uint16_t* b, float* c) {
  for (int i = 0; i < m; ++i) {
    const float* __restrict ar = a + static_cast<long>(i) * k;
    float* __restrict cr = c + static_cast<long>(i) * n;
    for (int j = 0; j < n; ++j) {
      const uint16_t* __restrict br = b + static_cast<long>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += ar[p] * F16ToF32One(br[p]);
      cr[j] += acc;
    }
  }
}

void Fp32ToFp16(const float* src, uint16_t* dst, int n) {
  for (int i = 0; i < n; ++i) dst[i] = F32ToF16One(src[i]);
}

void Fp16ToFp32(const uint16_t* src, float* dst, int n) {
  for (int i = 0; i < n; ++i) dst[i] = F16ToF32One(src[i]);
}

}  // namespace scalar

// ---- dispatch ------------------------------------------------------------

namespace {

constexpr KernelDispatch kScalarTable = {
    "scalar",
    scalar::GemmAccum,
    scalar::GemmTransBAccum,
    scalar::GemmTransAAccum,
    scalar::AddBias,
    scalar::AddBiasTanh,
    scalar::AddBiasRelu,
    scalar::Q8GemmDotAccum,
    scalar::Fp16GemmTransBAccum,
    scalar::Fp32ToFp16,
    scalar::Fp16ToFp32,
};

// The CPUID-selected default, resolved once. ALICOCO_SIMD=scalar pins the
// portable tier (CI coverage of the fallback on AVX2 hosts).
const KernelDispatch* DetectTable() {
  const char* env = std::getenv("ALICOCO_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return &kScalarTable;
  }
  const KernelDispatch* simd = avx2::Table();
  return simd != nullptr ? simd : &kScalarTable;
}

std::atomic<const KernelDispatch*>& ActiveSlot() {
  static std::atomic<const KernelDispatch*> slot{DetectTable()};
  return slot;
}

}  // namespace

const KernelDispatch& ActiveKernels() {
  return *ActiveSlot().load(std::memory_order_relaxed);
}

const char* ActiveKernelTier() { return ActiveKernels().tier; }

void ForceScalarKernels(bool force) {
  ActiveSlot().store(force ? &kScalarTable : DetectTable(),
                     std::memory_order_relaxed);
}

bool KernelsHaveAvx2() { return avx2::Table() != nullptr; }

void GemmAccum(int m, int k, int n, const float* a, const float* b,
               float* c) {
  ActiveKernels().gemm(m, k, n, a, b, c);
}

void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  ActiveKernels().gemm_transb(m, k, n, a, b, c);
}

void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  ActiveKernels().gemm_transa(m, k, n, a, b, c);
}

void AddBias(int rows, int cols, const float* x, const float* bias,
             float* out) {
  ActiveKernels().add_bias(rows, cols, x, bias, out);
}

void AddBiasTanh(int rows, int cols, const float* x, const float* bias,
                 float* out) {
  ActiveKernels().add_bias_tanh(rows, cols, x, bias, out);
}

void AddBiasRelu(int rows, int cols, const float* x, const float* bias,
                 float* out) {
  ActiveKernels().add_bias_relu(rows, cols, x, bias, out);
}

void Q8GemmDotAccum(int m, int k, int n, const int8_t* aq,
                    const float* ascales, const int8_t* bq,
                    const float* bscales, float* c) {
  ActiveKernels().q8_gemm_dot(m, k, n, aq, ascales, bq, bscales, c);
}

void Fp16GemmTransBAccum(int m, int k, int n, const float* a,
                         const uint16_t* b, float* c) {
  ActiveKernels().fp16_gemm_transb(m, k, n, a, b, c);
}

void Fp32ToFp16(const float* src, uint16_t* dst, int n) {
  ActiveKernels().fp32_to_fp16(src, dst, n);
}

void Fp16ToFp32(const uint16_t* src, float* dst, int n) {
  ActiveKernels().fp16_to_fp32(src, dst, n);
}

// ---- naive reference -----------------------------------------------------

namespace naive {

void GemmAccum(int m, int k, int n, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<long>(i) * k;
    float* crow = c + static_cast<long>(i) * n;
    for (int p = 0; p < k; ++p) {
      float av = arow[p];
      const float* brow = b + static_cast<long>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<long>(i) * k;
    float* crow = c + static_cast<long>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<long>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<long>(i) * k;
    const float* brow = b + static_cast<long>(i) * n;
    for (int p = 0; p < k; ++p) {
      float av = arow[p];
      float* crow = c + static_cast<long>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace naive

}  // namespace alicoco::nn::kernels
