#include "nn/rnn.h"

namespace alicoco::nn {

LstmCell::LstmCell(ParameterStore* store, const std::string& name,
                   int input_dim, int hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  wx_ = store->Create(name + ".Wx", input_dim, 4 * hidden_dim,
                      ParameterStore::Init::kXavier, rng);
  wh_ = store->Create(name + ".Wh", hidden_dim, 4 * hidden_dim,
                      ParameterStore::Init::kXavier, rng);
  b_ = store->Create(name + ".b", 1, 4 * hidden_dim,
                     ParameterStore::Init::kZero, nullptr);
  // Positive forget-gate bias stabilizes early training.
  for (int j = hidden_dim; j < 2 * hidden_dim; ++j) b_->value.At(0, j) = 1.0f;
}

LstmCell::State LstmCell::Initial(Graph* g) const {
  return State{g->Input(Tensor(1, hidden_dim_)),
               g->Input(Tensor(1, hidden_dim_))};
}

LstmCell::State LstmCell::Step(Graph* g, Graph::Var x,
                               const State& prev) const {
  // One fused node computes gates, cell and hidden state; the two slices
  // expose h and c as separate Vars for downstream consumers.
  Graph::Var hc = g->LstmStep(x, prev.h, prev.c, wx_, wh_, b_);
  return State{g->SliceCols(hc, 0, hidden_dim_),
               g->SliceCols(hc, hidden_dim_, hidden_dim_)};
}

BiLstm::BiLstm(ParameterStore* store, const std::string& name, int input_dim,
               int hidden_dim, Rng* rng)
    : fwd_(store, name + ".fwd", input_dim, hidden_dim, rng),
      bwd_(store, name + ".bwd", input_dim, hidden_dim, rng) {}

Graph::Var BiLstm::Run(Graph* g, Graph::Var x) const {
  int t = g->Value(x).rows();
  ALICOCO_CHECK(t > 0) << "BiLstm on empty sequence";
  std::vector<Graph::Var> rows;
  rows.reserve(static_cast<size_t>(t));
  for (int i = 0; i < t; ++i) rows.push_back(g->SliceRows(x, i, 1));

  std::vector<Graph::Var> fwd_h(static_cast<size_t>(t));
  LstmCell::State state = fwd_.Initial(g);
  for (int i = 0; i < t; ++i) {
    state = fwd_.Step(g, rows[static_cast<size_t>(i)], state);
    fwd_h[static_cast<size_t>(i)] = state.h;
  }
  std::vector<Graph::Var> bwd_h(static_cast<size_t>(t));
  state = bwd_.Initial(g);
  for (int i = t - 1; i >= 0; --i) {
    state = bwd_.Step(g, rows[static_cast<size_t>(i)], state);
    bwd_h[static_cast<size_t>(i)] = state.h;
  }
  // Stack each direction once (T x H), then join side by side (T x 2H):
  // three concat nodes total instead of one per timestep.
  return g->ConcatCols({g->ConcatRows(fwd_h), g->ConcatRows(bwd_h)});
}

}  // namespace alicoco::nn
