#include "nn/rnn.h"

namespace alicoco::nn {

LstmCell::LstmCell(ParameterStore* store, const std::string& name,
                   int input_dim, int hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  wx_ = store->Create(name + ".Wx", input_dim, 4 * hidden_dim,
                      ParameterStore::Init::kXavier, rng);
  wh_ = store->Create(name + ".Wh", hidden_dim, 4 * hidden_dim,
                      ParameterStore::Init::kXavier, rng);
  b_ = store->Create(name + ".b", 1, 4 * hidden_dim,
                     ParameterStore::Init::kZero, nullptr);
  // Positive forget-gate bias stabilizes early training.
  for (int j = hidden_dim; j < 2 * hidden_dim; ++j) b_->value.At(0, j) = 1.0f;
}

LstmCell::State LstmCell::Initial(Graph* g) const {
  return State{g->Input(Tensor(1, hidden_dim_)),
               g->Input(Tensor(1, hidden_dim_))};
}

LstmCell::State LstmCell::Step(Graph* g, Graph::Var x,
                               const State& prev) const {
  Graph::Var gates =
      g->Add(g->Add(g->MatMul(x, g->Use(wx_)), g->MatMul(prev.h, g->Use(wh_))),
             g->Use(b_));
  int h = hidden_dim_;
  Graph::Var i_gate = g->Sigmoid(g->SliceCols(gates, 0, h));
  Graph::Var f_gate = g->Sigmoid(g->SliceCols(gates, h, h));
  Graph::Var o_gate = g->Sigmoid(g->SliceCols(gates, 2 * h, h));
  Graph::Var g_gate = g->Tanh(g->SliceCols(gates, 3 * h, h));
  Graph::Var c = g->Add(g->Mul(f_gate, prev.c), g->Mul(i_gate, g_gate));
  Graph::Var h_out = g->Mul(o_gate, g->Tanh(c));
  return State{h_out, c};
}

BiLstm::BiLstm(ParameterStore* store, const std::string& name, int input_dim,
               int hidden_dim, Rng* rng)
    : fwd_(store, name + ".fwd", input_dim, hidden_dim, rng),
      bwd_(store, name + ".bwd", input_dim, hidden_dim, rng) {}

Graph::Var BiLstm::Run(Graph* g, Graph::Var x) const {
  int t = g->Value(x).rows();
  ALICOCO_CHECK(t > 0) << "BiLstm on empty sequence";
  std::vector<Graph::Var> rows;
  rows.reserve(static_cast<size_t>(t));
  for (int i = 0; i < t; ++i) rows.push_back(g->SliceRows(x, i, 1));

  std::vector<Graph::Var> fwd_h(static_cast<size_t>(t));
  LstmCell::State state = fwd_.Initial(g);
  for (int i = 0; i < t; ++i) {
    state = fwd_.Step(g, rows[static_cast<size_t>(i)], state);
    fwd_h[static_cast<size_t>(i)] = state.h;
  }
  std::vector<Graph::Var> bwd_h(static_cast<size_t>(t));
  state = bwd_.Initial(g);
  for (int i = t - 1; i >= 0; --i) {
    state = bwd_.Step(g, rows[static_cast<size_t>(i)], state);
    bwd_h[static_cast<size_t>(i)] = state.h;
  }
  std::vector<Graph::Var> combined(static_cast<size_t>(t));
  for (int i = 0; i < t; ++i) {
    combined[static_cast<size_t>(i)] =
        g->ConcatCols({fwd_h[static_cast<size_t>(i)],
                       bwd_h[static_cast<size_t>(i)]});
  }
  return g->ConcatRows(combined);
}

}  // namespace alicoco::nn
