// Quantized weight storage for the inference tier.
//
// Two storage formats, both lossless to reload (what is serialized is the
// quantized representation itself, so save -> load reproduces scores
// bit-for-bit):
//
//   kInt8 — blockwise Q8: each row is split into 32-lane blocks, every
//     block stores 32 int8 codes plus one float scale (absmax / 127).
//     Values are clamped to [-127, 127] so the AVX2 maddubs pairing in the
//     int8 dot kernel cannot saturate. Rows are padded to whole blocks with
//     zero codes (zeros contribute nothing to the dot).
//   kFp16 — IEEE binary16 codes, one per weight, round-to-nearest-even.
//
// `QuantizedTensor` holds one weight matrix in either format. Matrices
// destined for x * W^T style products (Linear weights) are quantized
// TRANSPOSED — (out x in) with the contraction dimension contiguous per
// row — so the quantized GEMM reads both operands along k.
//
// `QuantizedStore` is the quantized counterpart of a ParameterStore: the
// tensors a model's QuantPlan selected, plus fp32 passthrough copies of
// everything else (biases, vectors, scalars). nn/serialize.h persists it;
// layers attach to entries by parameter name for inference.
//
// Accuracy tolerances (enforced end-to-end in tests/matching): int8 matcher
// scores within 0.05 absolute of fp32 and AUC within 0.02; fp16 scores
// within 5e-3. See DESIGN.md §5.

#ifndef ALICOCO_NN_QUANT_H_
#define ALICOCO_NN_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/graph.h"
#include "nn/kernels.h"
#include "nn/tensor.h"

namespace alicoco::nn::quant {

enum class QuantMode {
  kNone = 0,  ///< fp32 — quantization disabled
  kInt8 = 1,  ///< blockwise int8, one float scale per 32 lanes
  kFp16 = 2,  ///< IEEE binary16 codes
};

/// Human-readable mode name ("none" / "int8" / "fp16").
const char* QuantModeName(QuantMode mode);

/// Quantizes `rows` rows of `cols` fp32 values (row i at src + i * cols)
/// into blockwise Q8: codes into `codes` (rows * Q8Blocks(cols) * 32,
/// tail lanes zeroed), scales into `scales` (rows * Q8Blocks(cols)).
/// Buffers must be pre-sized by the caller.
void QuantizeRowsQ8(const float* src, int rows, int cols, int8_t* codes,
                    float* scales);

/// One weight matrix in quantized storage.
class QuantizedTensor {
 public:
  QuantizedTensor() = default;

  /// Quantizes `t` as stored (rows() x cols()).
  static QuantizedTensor Quantize(const Tensor& t, QuantMode mode);

  /// Quantizes `t` transposed — the result is cols() x rows(). Use for
  /// weights consumed as x * W^T so the contraction dim is contiguous.
  static QuantizedTensor QuantizeTransposed(const Tensor& t, QuantMode mode);

  /// Rebuilds a kInt8 tensor from raw storage (deserializer path).
  static QuantizedTensor FromQ8(int rows, int cols,
                                std::vector<int8_t> codes,
                                std::vector<float> scales);

  /// Rebuilds a kFp16 tensor from raw storage (deserializer path).
  static QuantizedTensor FromFp16(int rows, int cols,
                                  std::vector<uint16_t> codes);

  QuantMode mode() const { return mode_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Q8 blocks per row (0 for kFp16).
  int blocks_per_row() const { return blocks_per_row_; }

  const int8_t* q8_data() const { return q8_.data(); }
  const float* q8_scales() const { return scales_.data(); }
  const std::vector<int8_t>& q8_vector() const { return q8_; }
  const std::vector<float>& scales_vector() const { return scales_; }
  const uint16_t* fp16_data() const { return fp16_.data(); }
  const std::vector<uint16_t>& fp16_vector() const { return fp16_; }

  /// Decodes row r into `out` (at least cols() floats).
  void DequantizeRow(int r, float* out) const;

  /// Decodes the full matrix back to fp32.
  Tensor Dequantize() const;

  /// Bytes of quantized payload (codes + scales).
  size_t byte_size() const {
    return q8_.size() * sizeof(int8_t) + scales_.size() * sizeof(float) +
           fp16_.size() * sizeof(uint16_t);
  }

 private:
  QuantMode mode_ = QuantMode::kNone;
  int rows_ = 0;
  int cols_ = 0;
  int blocks_per_row_ = 0;
  std::vector<int8_t> q8_;      ///< kInt8: rows * blocks_per_row * 32 codes
  std::vector<float> scales_;   ///< kInt8: rows * blocks_per_row scales
  std::vector<uint16_t> fp16_;  ///< kFp16: rows * cols codes
};

/// y (x.rows x wt.rows) += x * W^T where `wt` holds W transposed
/// (wt.rows = output dim, wt.cols = contraction dim = x.cols). For kInt8
/// the activations are quantized on the fly per row (same Q8 block format)
/// and the int8 dot kernel runs; for kFp16 the fp16-load fp32-accumulate
/// kernel runs. `y` must be pre-sized; accumulates like the GEMM kernels.
void GemmTransW(const Tensor& x, const QuantizedTensor& wt, Tensor* y);

/// One parameter a model wants quantized. `transpose` marks weights
/// consumed as x * W^T (stored transposed, see QuantizeTransposed).
struct QuantPlanEntry {
  const Parameter* param = nullptr;
  bool transpose = false;
};
using QuantPlan = std::vector<QuantPlanEntry>;

/// The quantized weights of one model: quantized tensors for the plan
/// entries plus fp32 passthrough copies of every other parameter, keyed by
/// parameter name, in store order.
class QuantizedStore {
 public:
  QuantizedStore() = default;
  explicit QuantizedStore(QuantMode mode) : mode_(mode) {}

  QuantMode mode() const { return mode_; }
  void set_mode(QuantMode mode) { mode_ = mode; }

  void AddQuantized(const std::string& name, QuantizedTensor t) {
    quantized_.emplace_back(name, std::move(t));
  }
  void AddFp32(const std::string& name, Tensor t) {
    fp32_.emplace_back(name, std::move(t));
  }

  const QuantizedTensor* FindQuantized(const std::string& name) const;
  const Tensor* FindFp32(const std::string& name) const;

  const std::vector<std::pair<std::string, QuantizedTensor>>& quantized()
      const {
    return quantized_;
  }
  const std::vector<std::pair<std::string, Tensor>>& fp32() const {
    return fp32_;
  }

  /// Total quantized payload bytes (compression diagnostics).
  size_t TotalBytes() const;

 private:
  QuantMode mode_ = QuantMode::kNone;
  std::vector<std::pair<std::string, QuantizedTensor>> quantized_;
  std::vector<std::pair<std::string, Tensor>> fp32_;
};

/// Quantizes a trained ParameterStore: plan entries become quantized
/// tensors (transposed where marked), every other parameter rides along as
/// an fp32 passthrough copy. `mode` must not be kNone.
QuantizedStore QuantizeParams(const ParameterStore& store,
                              const QuantPlan& plan, QuantMode mode);

}  // namespace alicoco::nn::quant

#endif  // ALICOCO_NN_QUANT_H_
