// Linear-chain CRF and fuzzy CRF losses (Sections 4.1 and 5.3.2).
//
// The standard CRF supplies the BiLSTM-CRF sequence labeler of Figure 4.
// The fuzzy variant implements Eq. 8: the numerator marginalizes over ALL
// label sequences consistent with a per-position set of allowed labels,
// which handles concepts whose words legitimately carry several classes
// ("village" as Location or Style).

#ifndef ALICOCO_NN_CRF_H_
#define ALICOCO_NN_CRF_H_

#include <string>
#include <vector>

#include "nn/graph.h"

namespace alicoco::nn {

/// Linear-chain CRF with learned transition, start and end scores.
/// Emissions are a T x L matrix produced by an upstream encoder.
class LinearChainCrf {
 public:
  LinearChainCrf(ParameterStore* store, const std::string& name,
                 int num_labels, Rng* rng);

  /// -log p(gold | emissions). `gold` holds one label id per timestep.
  Graph::Var NegLogLikelihood(Graph* g, Graph::Var emissions,
                              const std::vector<int>& gold);

  /// Fuzzy-CRF loss: -log sum_{y in allowed} p(y | emissions), where
  /// `allowed[t]` is the non-empty set of permissible labels at step t.
  Graph::Var FuzzyNegLogLikelihood(
      Graph* g, Graph::Var emissions,
      const std::vector<std::vector<int>>& allowed);

  /// MAP decoding of an emission matrix.
  std::vector<int> Viterbi(const Tensor& emissions) const;

  int num_labels() const { return num_labels_; }

 private:
  struct Lattice {
    double log_z = 0;
    Tensor unary;  // T x L posterior marginals
    Tensor pair;   // L x L summed pairwise marginals
  };

  /// Forward-backward in log space; `allowed` restricts the lattice when
  /// non-null (disallowed states get -inf potential).
  Lattice ForwardBackward(const Tensor& emissions,
                          const std::vector<std::vector<int>>* allowed) const;

  /// Shared loss construction: log Z(full) - log Z(restricted-to-gold-or-
  /// allowed), with gradient (marginals_full - marginals_restricted).
  Graph::Var LatticeLoss(Graph* g, Graph::Var emissions,
                         const std::vector<std::vector<int>>& numerator_sets);

  int num_labels_;
  Parameter* trans_;  // L x L: trans[i][j] = score of i -> j
  Parameter* start_;  // 1 x L
  Parameter* end_;    // 1 x L
};

}  // namespace alicoco::nn

#endif  // ALICOCO_NN_CRF_H_
