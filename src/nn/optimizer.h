// Gradient-descent optimizers with global-norm clipping.

#ifndef ALICOCO_NN_OPTIMIZER_H_
#define ALICOCO_NN_OPTIMIZER_H_

#include <unordered_map>

#include "nn/graph.h"

namespace alicoco::nn {

/// Applies accumulated gradients to parameters; callers ZeroGrad afterwards.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// One update from the gradients currently in `store`.
  virtual void Step(ParameterStore* store) = 0;

 protected:
  /// Scales all gradients so the global L2 norm is at most `max_norm`
  /// (no-op when max_norm <= 0). Returns the pre-clip norm.
  static double ClipGlobalNorm(ParameterStore* store, double max_norm);
};

/// Plain SGD.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, double clip_norm = 5.0)
      : lr_(lr), clip_norm_(clip_norm) {}
  void Step(ParameterStore* store) override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  double clip_norm_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f, double clip_norm = 5.0)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
        clip_norm_(clip_norm) {}
  void Step(ParameterStore* store) override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  struct Slot {
    Tensor m;
    Tensor v;
  };
  float lr_, beta1_, beta2_, eps_;
  double clip_norm_;
  int64_t t_ = 0;
  std::unordered_map<const Parameter*, Slot> slots_;
};

}  // namespace alicoco::nn

#endif  // ALICOCO_NN_OPTIMIZER_H_
