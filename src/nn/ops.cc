// Implementations of Graph ops with their reverse-mode closures.

#include <algorithm>
#include <cmath>

#include "nn/graph.h"
#include "nn/kernels.h"
#include "nn/quant.h"

namespace alicoco::nn {

Graph::Var Graph::MatMul(Var a, Var b) {
  const Tensor& av = nodes_[a]->value;
  const Tensor& bv = nodes_[b]->value;
  Var out = NewNode(MatMulValue(av, bv));
  nodes_[out]->backward = [this, out, a, b] {
    const Tensor& g = nodes_[out]->grad;
    // dA += g * B^T ; dB += A^T * g
    MatMulTransBAccum(g, nodes_[b]->value, &nodes_[a]->grad);
    MatMulTransAAccum(nodes_[a]->value, g, &nodes_[b]->grad);
  };
  return out;
}

Graph::Var Graph::Add(Var a, Var b) {
  const Tensor& av = nodes_[a]->value;
  const Tensor& bv = nodes_[b]->value;
  Tensor v = av;
  if (bv.SameShape(av)) {
    v.AddInPlace(bv);
    Var out = NewNode(std::move(v));
    nodes_[out]->backward = [this, out, a, b] {
      nodes_[a]->grad.AddInPlace(nodes_[out]->grad);
      nodes_[b]->grad.AddInPlace(nodes_[out]->grad);
    };
    return out;
  }
  if (bv.rows() == 1 && bv.cols() == av.cols()) {  // row broadcast
    for (int i = 0; i < v.rows(); ++i) {
      float* row = v.Row(i);
      const float* brow = bv.Row(0);
      for (int j = 0; j < v.cols(); ++j) row[j] += brow[j];
    }
    Var out = NewNode(std::move(v));
    nodes_[out]->backward = [this, out, a, b] {
      const Tensor& g = nodes_[out]->grad;
      nodes_[a]->grad.AddInPlace(g);
      Tensor& bg = nodes_[b]->grad;
      for (int i = 0; i < g.rows(); ++i) {
        const float* grow = g.Row(i);
        float* bgrow = bg.Row(0);
        for (int j = 0; j < g.cols(); ++j) bgrow[j] += grow[j];
      }
    };
    return out;
  }
  ALICOCO_CHECK(bv.rows() == 1 && bv.cols() == 1)
      << "Add broadcast requires same shape, 1xC, or 1x1";
  float s = bv.At(0, 0);
  for (int i = 0; i < v.rows(); ++i) {
    float* row = v.Row(i);
    for (int j = 0; j < v.cols(); ++j) row[j] += s;
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a, b] {
    const Tensor& g = nodes_[out]->grad;
    nodes_[a]->grad.AddInPlace(g);
    float acc = 0.0f;
    for (int i = 0; i < g.rows(); ++i) {
      const float* grow = g.Row(i);
      for (int j = 0; j < g.cols(); ++j) acc += grow[j];
    }
    nodes_[b]->grad.At(0, 0) += acc;
  };
  return out;
}

Graph::Var Graph::Sub(Var a, Var b) {
  const Tensor& av = nodes_[a]->value;
  const Tensor& bv = nodes_[b]->value;
  ALICOCO_CHECK(av.SameShape(bv)) << "Sub requires same shapes";
  Tensor v = av;
  v.Axpy(-1.0f, bv);
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a, b] {
    nodes_[a]->grad.AddInPlace(nodes_[out]->grad);
    nodes_[b]->grad.Axpy(-1.0f, nodes_[out]->grad);
  };
  return out;
}

Graph::Var Graph::Mul(Var a, Var b) {
  const Tensor& av = nodes_[a]->value;
  const Tensor& bv = nodes_[b]->value;
  ALICOCO_CHECK(av.SameShape(bv)) << "Mul requires same shapes";
  Tensor v(av.rows(), av.cols());
  for (size_t i = 0; i < v.size(); ++i) v.data()[i] = av.data()[i] * bv.data()[i];
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a, b] {
    const Tensor& g = nodes_[out]->grad;
    const Tensor& av2 = nodes_[a]->value;
    const Tensor& bv2 = nodes_[b]->value;
    Tensor& ag = nodes_[a]->grad;
    Tensor& bg = nodes_[b]->grad;
    for (size_t i = 0; i < g.size(); ++i) {
      ag.data()[i] += g.data()[i] * bv2.data()[i];
      bg.data()[i] += g.data()[i] * av2.data()[i];
    }
  };
  return out;
}

Graph::Var Graph::ScalarMul(Var a, float s) {
  Tensor v = nodes_[a]->value;
  v.Scale(s);
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a, s] {
    nodes_[a]->grad.Axpy(s, nodes_[out]->grad);
  };
  return out;
}

Graph::Var Graph::AddScalar(Var a, float s) {
  Tensor v = nodes_[a]->value;
  for (size_t i = 0; i < v.size(); ++i) v.data()[i] += s;
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a] {
    nodes_[a]->grad.AddInPlace(nodes_[out]->grad);
  };
  return out;
}

Graph::Var Graph::Sigmoid(Var a) {
  Tensor v = nodes_[a]->value;
  for (size_t i = 0; i < v.size(); ++i) {
    float x = v.data()[i];
    v.data()[i] = x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a] {
    const Tensor& y = nodes_[out]->value;
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (size_t i = 0; i < g.size(); ++i) {
      float yi = y.data()[i];
      ag.data()[i] += g.data()[i] * yi * (1.0f - yi);
    }
  };
  return out;
}

Graph::Var Graph::Tanh(Var a) {
  Tensor v = nodes_[a]->value;
  for (size_t i = 0; i < v.size(); ++i) v.data()[i] = std::tanh(v.data()[i]);
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a] {
    const Tensor& y = nodes_[out]->value;
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (size_t i = 0; i < g.size(); ++i) {
      float yi = y.data()[i];
      ag.data()[i] += g.data()[i] * (1.0f - yi * yi);
    }
  };
  return out;
}

Graph::Var Graph::Relu(Var a) {
  Tensor v = nodes_[a]->value;
  for (size_t i = 0; i < v.size(); ++i) v.data()[i] = std::max(0.0f, v.data()[i]);
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a] {
    const Tensor& x = nodes_[a]->value;
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (size_t i = 0; i < g.size(); ++i) {
      if (x.data()[i] > 0) ag.data()[i] += g.data()[i];
    }
  };
  return out;
}

Graph::Var Graph::SoftmaxRows(Var a) {
  const Tensor& x = nodes_[a]->value;
  Tensor v(x.rows(), x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    const float* xr = x.Row(i);
    float* vr = v.Row(i);
    float mx = xr[0];
    for (int j = 1; j < x.cols(); ++j) mx = std::max(mx, xr[j]);
    float total = 0.0f;
    for (int j = 0; j < x.cols(); ++j) {
      vr[j] = std::exp(xr[j] - mx);
      total += vr[j];
    }
    for (int j = 0; j < x.cols(); ++j) vr[j] /= total;
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a] {
    const Tensor& y = nodes_[out]->value;
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (int i = 0; i < y.rows(); ++i) {
      const float* yr = y.Row(i);
      const float* gr = g.Row(i);
      float dot = 0.0f;
      for (int j = 0; j < y.cols(); ++j) dot += yr[j] * gr[j];
      float* agr = ag.Row(i);
      for (int j = 0; j < y.cols(); ++j) {
        agr[j] += yr[j] * (gr[j] - dot);
      }
    }
  };
  return out;
}

Graph::Var Graph::Transpose(Var a) {
  const Tensor& x = nodes_[a]->value;
  Tensor v(x.cols(), x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) v.At(j, i) = x.At(i, j);
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a] {
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < g.cols(); ++j) ag.At(j, i) += g.At(i, j);
    }
  };
  return out;
}

Graph::Var Graph::ConcatCols(const std::vector<Var>& vars) {
  ALICOCO_CHECK(!vars.empty());
  int rows = nodes_[vars[0]]->value.rows();
  int cols = 0;
  for (Var v : vars) {
    ALICOCO_CHECK(nodes_[v]->value.rows() == rows)
        << "ConcatCols row mismatch";
    cols += nodes_[v]->value.cols();
  }
  Tensor out_t(rows, cols);
  int off = 0;
  for (Var v : vars) {
    const Tensor& x = nodes_[v]->value;
    for (int i = 0; i < rows; ++i) {
      std::copy(x.Row(i), x.Row(i) + x.cols(), out_t.Row(i) + off);
    }
    off += x.cols();
  }
  Var out = NewNode(std::move(out_t));
  std::vector<Var> parents = vars;
  nodes_[out]->backward = [this, out, parents] {
    const Tensor& g = nodes_[out]->grad;
    int off2 = 0;
    for (Var v : parents) {
      Tensor& vg = nodes_[v]->grad;
      for (int i = 0; i < g.rows(); ++i) {
        const float* grow = g.Row(i) + off2;
        float* vrow = vg.Row(i);
        for (int j = 0; j < vg.cols(); ++j) vrow[j] += grow[j];
      }
      off2 += vg.cols();
    }
  };
  return out;
}

Graph::Var Graph::ConcatRows(const std::vector<Var>& vars) {
  ALICOCO_CHECK(!vars.empty());
  int cols = nodes_[vars[0]]->value.cols();
  int rows = 0;
  for (Var v : vars) {
    ALICOCO_CHECK(nodes_[v]->value.cols() == cols)
        << "ConcatRows col mismatch";
    rows += nodes_[v]->value.rows();
  }
  Tensor out_t(rows, cols);
  int off = 0;
  for (Var v : vars) {
    const Tensor& x = nodes_[v]->value;
    for (int i = 0; i < x.rows(); ++i) {
      std::copy(x.Row(i), x.Row(i) + cols, out_t.Row(off + i));
    }
    off += x.rows();
  }
  Var out = NewNode(std::move(out_t));
  std::vector<Var> parents = vars;
  nodes_[out]->backward = [this, out, parents] {
    const Tensor& g = nodes_[out]->grad;
    int off2 = 0;
    for (Var v : parents) {
      Tensor& vg = nodes_[v]->grad;
      for (int i = 0; i < vg.rows(); ++i) {
        const float* grow = g.Row(off2 + i);
        float* vrow = vg.Row(i);
        for (int j = 0; j < vg.cols(); ++j) vrow[j] += grow[j];
      }
      off2 += vg.rows();
    }
  };
  return out;
}

Graph::Var Graph::SliceRows(Var a, int begin, int count) {
  const Tensor& x = nodes_[a]->value;
  ALICOCO_CHECK(begin >= 0 && count >= 0 && begin + count <= x.rows());
  Tensor v(count, x.cols());
  for (int i = 0; i < count; ++i) {
    std::copy(x.Row(begin + i), x.Row(begin + i) + x.cols(), v.Row(i));
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a, begin, count] {
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (int i = 0; i < count; ++i) {
      const float* grow = g.Row(i);
      float* arow = ag.Row(begin + i);
      for (int j = 0; j < g.cols(); ++j) arow[j] += grow[j];
    }
  };
  return out;
}

Graph::Var Graph::SliceCols(Var a, int begin, int count) {
  const Tensor& x = nodes_[a]->value;
  ALICOCO_CHECK(begin >= 0 && count >= 0 && begin + count <= x.cols());
  Tensor v(x.rows(), count);
  for (int i = 0; i < x.rows(); ++i) {
    std::copy(x.Row(i) + begin, x.Row(i) + begin + count, v.Row(i));
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a, begin, count] {
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (int i = 0; i < g.rows(); ++i) {
      const float* grow = g.Row(i);
      float* arow = ag.Row(i) + begin;
      for (int j = 0; j < count; ++j) arow[j] += grow[j];
    }
  };
  return out;
}

Graph::Var Graph::ConcatWindow(Var a, int k) {
  ALICOCO_CHECK(k >= 1 && k % 2 == 1) << "ConcatWindow requires odd k";
  const Tensor& x = nodes_[a]->value;
  int t = x.rows(), d = x.cols();
  int half = k / 2;
  Tensor v(t, k * d);
  for (int i = 0; i < t; ++i) {
    for (int w = -half; w <= half; ++w) {
      int src = i + w;
      float* dst = v.Row(i) + (w + half) * d;
      if (src >= 0 && src < t) {
        std::copy(x.Row(src), x.Row(src) + d, dst);
      }
    }
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a, k, half, t, d] {
    (void)k;
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (int i = 0; i < t; ++i) {
      for (int w = -half; w <= half; ++w) {
        int src = i + w;
        if (src < 0 || src >= t) continue;
        const float* grow = g.Row(i) + (w + half) * d;
        float* arow = ag.Row(src);
        for (int j = 0; j < d; ++j) arow[j] += grow[j];
      }
    }
  };
  return out;
}

Graph::Var Graph::SumAll(Var a) {
  const Tensor& x = nodes_[a]->value;
  Tensor v(1, 1);
  float acc = 0.0f;
  for (size_t i = 0; i < x.size(); ++i) acc += x.data()[i];
  v.At(0, 0) = acc;
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a] {
    float g = nodes_[out]->grad.At(0, 0);
    Tensor& ag = nodes_[a]->grad;
    for (size_t i = 0; i < ag.size(); ++i) ag.data()[i] += g;
  };
  return out;
}

Graph::Var Graph::MeanAll(Var a) {
  const Tensor& x = nodes_[a]->value;
  float inv = 1.0f / static_cast<float>(x.size());
  return ScalarMul(SumAll(a), inv);
}

Graph::Var Graph::SumRows(Var a) {
  const Tensor& x = nodes_[a]->value;
  Tensor v(1, x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    const float* xr = x.Row(i);
    for (int j = 0; j < x.cols(); ++j) v.At(0, j) += xr[j];
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a] {
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (int i = 0; i < ag.rows(); ++i) {
      float* arow = ag.Row(i);
      for (int j = 0; j < ag.cols(); ++j) arow[j] += g.At(0, j);
    }
  };
  return out;
}

Graph::Var Graph::SumCols(Var a) {
  const Tensor& x = nodes_[a]->value;
  Tensor v(x.rows(), 1);
  for (int i = 0; i < x.rows(); ++i) {
    const float* xr = x.Row(i);
    float acc = 0.0f;
    for (int j = 0; j < x.cols(); ++j) acc += xr[j];
    v.At(i, 0) = acc;
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a] {
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (int i = 0; i < ag.rows(); ++i) {
      float gi = g.At(i, 0);
      float* arow = ag.Row(i);
      for (int j = 0; j < ag.cols(); ++j) arow[j] += gi;
    }
  };
  return out;
}

Graph::Var Graph::MeanRows(Var a) {
  const Tensor& x = nodes_[a]->value;
  ALICOCO_CHECK(x.rows() > 0);
  return ScalarMul(SumRows(a), 1.0f / static_cast<float>(x.rows()));
}

Graph::Var Graph::MaxRows(Var a) {
  const Tensor& x = nodes_[a]->value;
  ALICOCO_CHECK(x.rows() > 0);
  Tensor v(1, x.cols());
  std::vector<int> argmax(static_cast<size_t>(x.cols()), 0);
  for (int j = 0; j < x.cols(); ++j) {
    float best = x.At(0, j);
    for (int i = 1; i < x.rows(); ++i) {
      if (x.At(i, j) > best) {
        best = x.At(i, j);
        argmax[static_cast<size_t>(j)] = i;
      }
    }
    v.At(0, j) = best;
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a, argmax] {
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (int j = 0; j < g.cols(); ++j) {
      ag.At(argmax[static_cast<size_t>(j)], j) += g.At(0, j);
    }
  };
  return out;
}

Graph::Var Graph::EmbeddingLookup(Parameter* table,
                                  const std::vector<int>& ids) {
  ALICOCO_CHECK(table != nullptr && !ids.empty());
  int d = table->value.cols();
  Tensor v(static_cast<int>(ids.size()), d);
  for (size_t i = 0; i < ids.size(); ++i) {
    int id = ids[i];
    ALICOCO_CHECK(id >= 0 && id < table->value.rows())
        << "embedding id out of range: " << id;
    std::copy(table->value.Row(id), table->value.Row(id) + d,
              v.Row(static_cast<int>(i)));
  }
  Var out = NewNode(std::move(v));
  std::vector<int> ids_copy = ids;
  nodes_[out]->backward = [this, out, table, ids_copy, d] {
    const Tensor& g = nodes_[out]->grad;
    Tensor* tg = ParamGrad(table);
    for (size_t i = 0; i < ids_copy.size(); ++i) {
      const float* grow = g.Row(static_cast<int>(i));
      float* trow = tg->Row(ids_copy[i]);
      for (int j = 0; j < d; ++j) trow[j] += grow[j];
    }
  };
  return out;
}

Graph::Var Graph::Dropout(Var a, float p, bool train, Rng* rng) {
  if (!train || p <= 0.0f) return a;
  ALICOCO_CHECK(p < 1.0f && rng != nullptr);
  const Tensor& x = nodes_[a]->value;
  float scale = 1.0f / (1.0f - p);
  std::vector<float> mask(x.size());
  for (auto& m : mask) m = rng->Bernoulli(p) ? 0.0f : scale;
  Tensor v(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) v.data()[i] = x.data()[i] * mask[i];
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a, mask] {
    const Tensor& g = nodes_[out]->grad;
    Tensor& ag = nodes_[a]->grad;
    for (size_t i = 0; i < g.size(); ++i) ag.data()[i] += g.data()[i] * mask[i];
  };
  return out;
}

Graph::Var Graph::AdditiveAttention(Var a, Var b, Var v) {
  const Tensor& at = nodes_[a]->value;
  const Tensor& bt = nodes_[b]->value;
  const Tensor& vt = nodes_[v]->value;
  int m = at.rows(), l = bt.rows(), d = at.cols();
  ALICOCO_CHECK(bt.cols() == d && vt.rows() == d && vt.cols() == 1)
      << "AdditiveAttention shapes";
  Tensor out_t(m, l);
  // Cache tanh values for backward (m*l*d floats; sequences are short).
  auto tanh_cache = std::make_shared<std::vector<float>>(
      static_cast<size_t>(m) * l * d);
  for (int i = 0; i < m; ++i) {
    const float* ar = at.Row(i);
    for (int j = 0; j < l; ++j) {
      const float* br = bt.Row(j);
      float acc = 0.0f;
      float* cache = tanh_cache->data() +
                     (static_cast<size_t>(i) * l + j) * d;
      for (int k = 0; k < d; ++k) {
        float th = std::tanh(ar[k] + br[k]);
        cache[k] = th;
        acc += vt.At(k, 0) * th;
      }
      out_t.At(i, j) = acc;
    }
  }
  Var out = NewNode(std::move(out_t));
  nodes_[out]->backward = [this, out, a, b, v, tanh_cache, m, l, d] {
    const Tensor& g = nodes_[out]->grad;
    const Tensor& vt2 = nodes_[v]->value;
    Tensor& ag = nodes_[a]->grad;
    Tensor& bg = nodes_[b]->grad;
    Tensor& vg = nodes_[v]->grad;
    for (int i = 0; i < m; ++i) {
      float* agr = ag.Row(i);
      for (int j = 0; j < l; ++j) {
        float gij = g.At(i, j);
        if (gij == 0.0f) continue;
        const float* cache = tanh_cache->data() +
                             (static_cast<size_t>(i) * l + j) * d;
        float* bgr = bg.Row(j);
        for (int k = 0; k < d; ++k) {
          float th = cache[k];
          float common = gij * vt2.At(k, 0) * (1.0f - th * th);
          agr[k] += common;
          bgr[k] += common;
          vg.At(k, 0) += gij * th;
        }
      }
    }
  };
  return out;
}

Graph::Var Graph::AffineAct(Var x, Parameter* w, Parameter* b, int act) {
  ALICOCO_DCHECK(w != nullptr && b != nullptr);
  const Tensor& xv = nodes_[x]->value;
  const int rows = xv.rows(), in = xv.cols(), out_dim = w->value.cols();
  ALICOCO_DCHECK_EQ(w->value.rows(), in)
      << "Affine: x " << rows << "x" << in << " vs W " << w->value.rows()
      << "x" << out_dim;
  ALICOCO_DCHECK(b->value.rows() == 1 && b->value.cols() == out_dim)
      << "Affine: bias " << b->value.rows() << "x" << b->value.cols()
      << " for out dim " << out_dim;
  Tensor v(rows, out_dim);
  kernels::GemmAccum(rows, in, out_dim, xv.data(), w->value.data(), v.data());
  switch (act) {
    case 1:
      kernels::AddBiasTanh(rows, out_dim, v.data(), b->value.data(), v.data());
      break;
    case 2:
      kernels::AddBiasRelu(rows, out_dim, v.data(), b->value.data(), v.data());
      break;
    default:
      kernels::AddBias(rows, out_dim, v.data(), b->value.data(), v.data());
      break;
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, x, w, b, act, rows, in, out_dim] {
    const Tensor& g = nodes_[out]->grad;
    const Tensor& y = nodes_[out]->value;
    // Pre-activation gradient (aliases g for the identity case).
    Tensor pre;
    const float* gp = g.data();
    if (act != 0) {
      pre = Tensor(rows, out_dim);
      float* pp = pre.data();
      const float* yp = y.data();
      if (act == 1) {
        for (size_t i = 0; i < g.size(); ++i) {
          pp[i] = g.data()[i] * (1.0f - yp[i] * yp[i]);
        }
      } else {
        for (size_t i = 0; i < g.size(); ++i) {
          pp[i] = yp[i] > 0.0f ? g.data()[i] : 0.0f;
        }
      }
      gp = pp;
    }
    const Tensor& xv2 = nodes_[x]->value;
    kernels::GemmTransBAccum(rows, out_dim, in, gp, w->value.data(),
                             nodes_[x]->grad.data());
    kernels::GemmTransAAccum(rows, in, out_dim, xv2.data(), gp,
                             ParamGrad(w)->data());
    float* bg = ParamGrad(b)->data();
    for (int i = 0; i < rows; ++i) {
      const float* gr = gp + static_cast<size_t>(i) * out_dim;
      for (int j = 0; j < out_dim; ++j) bg[j] += gr[j];
    }
  };
  return out;
}

Graph::Var Graph::AffineQuantAct(Var x, const quant::QuantizedTensor& wt,
                                 Parameter* b, int act) {
  ALICOCO_DCHECK(b != nullptr);
  const Tensor& xv = nodes_[x]->value;
  const int rows = xv.rows(), in = xv.cols(), out_dim = wt.rows();
  ALICOCO_DCHECK_EQ(wt.cols(), in)
      << "AffineQuant: x " << rows << "x" << in << " vs W^T " << wt.rows()
      << "x" << wt.cols();
  ALICOCO_DCHECK(b->value.rows() == 1 && b->value.cols() == out_dim)
      << "AffineQuant: bias " << b->value.rows() << "x" << b->value.cols()
      << " for out dim " << out_dim;
  Tensor v(rows, out_dim);
  quant::GemmTransW(xv, wt, &v);
  switch (act) {
    case 1:
      kernels::AddBiasTanh(rows, out_dim, v.data(), b->value.data(), v.data());
      break;
    case 2:
      kernels::AddBiasRelu(rows, out_dim, v.data(), b->value.data(), v.data());
      break;
    default:
      kernels::AddBias(rows, out_dim, v.data(), b->value.data(), v.data());
      break;
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [] {
    ALICOCO_CHECK(false) << "quantized ops are inference-only; Backward is "
                            "not supported through AffineQuant";
  };
  return out;
}

Graph::Var Graph::AffineQuant(Var x, const quant::QuantizedTensor& wt,
                              Parameter* b) {
  return AffineQuantAct(x, wt, b, 0);
}

Graph::Var Graph::AffineQuantTanh(Var x, const quant::QuantizedTensor& wt,
                                  Parameter* b) {
  return AffineQuantAct(x, wt, b, 1);
}

Graph::Var Graph::AffineQuantRelu(Var x, const quant::QuantizedTensor& wt,
                                  Parameter* b) {
  return AffineQuantAct(x, wt, b, 2);
}

Graph::Var Graph::MatMulQuant(Var a, const quant::QuantizedTensor& wt) {
  const Tensor& av = nodes_[a]->value;
  ALICOCO_DCHECK_EQ(wt.cols(), av.cols())
      << "MatMulQuant: a " << av.rows() << "x" << av.cols() << " vs W^T "
      << wt.rows() << "x" << wt.cols();
  Tensor v(av.rows(), wt.rows());
  quant::GemmTransW(av, wt, &v);
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [] {
    ALICOCO_CHECK(false) << "quantized ops are inference-only; Backward is "
                            "not supported through MatMulQuant";
  };
  return out;
}

Graph::Var Graph::EmbeddingLookupQuant(const quant::QuantizedTensor& table,
                                       const std::vector<int>& ids) {
  ALICOCO_CHECK(!ids.empty());
  const int d = table.cols();
  Tensor v(static_cast<int>(ids.size()), d);
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    ALICOCO_CHECK(id >= 0 && id < table.rows())
        << "embedding id out of range: " << id;
    table.DequantizeRow(id, v.Row(static_cast<int>(i)));
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [] {
    ALICOCO_CHECK(false) << "quantized ops are inference-only; Backward is "
                            "not supported through EmbeddingLookupQuant";
  };
  return out;
}

Graph::Var Graph::Affine(Var x, Parameter* w, Parameter* b) {
  return AffineAct(x, w, b, 0);
}

Graph::Var Graph::AffineTanh(Var x, Parameter* w, Parameter* b) {
  return AffineAct(x, w, b, 1);
}

Graph::Var Graph::AffineRelu(Var x, Parameter* w, Parameter* b) {
  return AffineAct(x, w, b, 2);
}

Graph::Var Graph::MatMulTransB(Var a, Var b) {
  const Tensor& av = nodes_[a]->value;
  const Tensor& bv = nodes_[b]->value;
  const int m = av.rows(), k = av.cols(), n = bv.rows();
  ALICOCO_DCHECK_EQ(bv.cols(), k)
      << "MatMulTransB shapes " << m << "x" << k << " * (" << n << "x"
      << bv.cols() << ")^T";
  Tensor v(m, n);
  kernels::GemmTransBAccum(m, k, n, av.data(), bv.data(), v.data());
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, a, b, m, k, n] {
    const Tensor& g = nodes_[out]->grad;
    // dA += g * B ; dB += g^T * A
    kernels::GemmAccum(m, n, k, g.data(), nodes_[b]->value.data(),
                       nodes_[a]->grad.data());
    kernels::GemmTransAAccum(m, n, k, g.data(), nodes_[a]->value.data(),
                             nodes_[b]->grad.data());
  };
  return out;
}

Graph::Var Graph::LstmStep(Var x, Var h_prev, Var c_prev, Parameter* wx,
                           Parameter* wh, Parameter* b) {
  ALICOCO_DCHECK(wx != nullptr && wh != nullptr && b != nullptr);
  const Tensor& xv = nodes_[x]->value;
  const Tensor& hv = nodes_[h_prev]->value;
  const Tensor& cv = nodes_[c_prev]->value;
  const int rows = xv.rows(), in = xv.cols(), hidden = wh->value.rows();
  const int gate_cols = 4 * hidden;
  ALICOCO_DCHECK(wx->value.rows() == in && wx->value.cols() == gate_cols)
      << "LstmStep: Wx " << wx->value.rows() << "x" << wx->value.cols()
      << " for input " << rows << "x" << in << " hidden " << hidden;
  ALICOCO_DCHECK_EQ(wh->value.cols(), gate_cols)
      << "LstmStep: Wh " << wh->value.rows() << "x" << wh->value.cols();
  ALICOCO_DCHECK(b->value.rows() == 1 && b->value.cols() == gate_cols)
      << "LstmStep: bias " << b->value.rows() << "x" << b->value.cols();
  ALICOCO_DCHECK(hv.rows() == rows && hv.cols() == hidden)
      << "LstmStep: h_prev " << hv.rows() << "x" << hv.cols();
  ALICOCO_DCHECK(cv.rows() == rows && cv.cols() == hidden)
      << "LstmStep: c_prev " << cv.rows() << "x" << cv.cols();

  // gates = x*Wx + h_prev*Wh + b, activated in place: [i, f, o, g].
  auto acts = std::make_shared<Tensor>(rows, gate_cols);
  kernels::GemmAccum(rows, in, gate_cols, xv.data(), wx->value.data(),
                     acts->data());
  kernels::GemmAccum(rows, hidden, gate_cols, hv.data(), wh->value.data(),
                     acts->data());
  kernels::AddBias(rows, gate_cols, acts->data(), b->value.data(),
                   acts->data());
  auto tanh_c = std::make_shared<Tensor>(rows, hidden);
  Tensor v(rows, 2 * hidden);  // [h_new, c_new]
  for (int r = 0; r < rows; ++r) {
    float* gate = acts->Row(r);
    const float* cprev = cv.Row(r);
    float* tc = tanh_c->Row(r);
    float* vr = v.Row(r);
    for (int j = 0; j < gate_cols; ++j) {
      const float z = gate[j];
      gate[j] = j < 3 * hidden
                    ? (z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                                 : std::exp(z) / (1.0f + std::exp(z)))
                    : std::tanh(z);
    }
    for (int j = 0; j < hidden; ++j) {
      const float i_g = gate[j];
      const float f_g = gate[hidden + j];
      const float o_g = gate[2 * hidden + j];
      const float g_g = gate[3 * hidden + j];
      const float c_new = f_g * cprev[j] + i_g * g_g;
      tc[j] = std::tanh(c_new);
      vr[j] = o_g * tc[j];          // h
      vr[hidden + j] = c_new;       // c
    }
  }
  Var out = NewNode(std::move(v));
  nodes_[out]->backward = [this, out, x, h_prev, c_prev, wx, wh, b, acts,
                           tanh_c, rows, in, hidden, gate_cols] {
    const Tensor& g = nodes_[out]->grad;
    const Tensor& xv2 = nodes_[x]->value;
    const Tensor& hv2 = nodes_[h_prev]->value;
    const Tensor& cv2 = nodes_[c_prev]->value;
    Tensor dgates(rows, gate_cols);
    Tensor& cg = nodes_[c_prev]->grad;
    for (int r = 0; r < rows; ++r) {
      const float* gr = g.Row(r);
      const float* gate = acts->Row(r);
      const float* tc = tanh_c->Row(r);
      const float* cprev = cv2.Row(r);
      float* dg = dgates.Row(r);
      float* cgr = cg.Row(r);
      for (int j = 0; j < hidden; ++j) {
        const float i_g = gate[j];
        const float f_g = gate[hidden + j];
        const float o_g = gate[2 * hidden + j];
        const float g_g = gate[3 * hidden + j];
        const float dh = gr[j];
        const float dc = gr[hidden + j] + dh * o_g * (1.0f - tc[j] * tc[j]);
        dg[j] = dc * g_g * i_g * (1.0f - i_g);
        dg[hidden + j] = dc * cprev[j] * f_g * (1.0f - f_g);
        dg[2 * hidden + j] = dh * tc[j] * o_g * (1.0f - o_g);
        dg[3 * hidden + j] = dc * i_g * (1.0f - g_g * g_g);
        cgr[j] += dc * f_g;
      }
    }
    kernels::GemmTransBAccum(rows, gate_cols, in, dgates.data(),
                             wx->value.data(), nodes_[x]->grad.data());
    kernels::GemmTransBAccum(rows, gate_cols, hidden, dgates.data(),
                             wh->value.data(), nodes_[h_prev]->grad.data());
    kernels::GemmTransAAccum(rows, in, gate_cols, xv2.data(), dgates.data(),
                             ParamGrad(wx)->data());
    kernels::GemmTransAAccum(rows, hidden, gate_cols, hv2.data(),
                             dgates.data(), ParamGrad(wh)->data());
    float* bg = ParamGrad(b)->data();
    for (int r = 0; r < rows; ++r) {
      const float* dg = dgates.Row(r);
      for (int j = 0; j < gate_cols; ++j) bg[j] += dg[j];
    }
  };
  return out;
}

Graph::Var Graph::SigmoidCrossEntropyWithLogits(Var logits, Tensor targets) {
  const Tensor& x = nodes_[logits]->value;
  ALICOCO_CHECK(x.SameShape(targets));
  // loss = mean( max(x,0) - x*z + log(1+exp(-|x|)) )
  Tensor v(1, 1);
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    float xi = x.data()[i];
    float zi = targets.data()[i];
    acc += std::max(xi, 0.0f) - xi * zi +
           std::log1p(std::exp(-std::fabs(xi)));
  }
  v.At(0, 0) = static_cast<float>(acc / static_cast<double>(x.size()));
  Var out = NewNode(std::move(v));
  auto tgt = std::make_shared<Tensor>(std::move(targets));
  nodes_[out]->backward = [this, out, logits, tgt] {
    float g = nodes_[out]->grad.At(0, 0) /
              static_cast<float>(tgt->size());
    const Tensor& x2 = nodes_[logits]->value;
    Tensor& lg = nodes_[logits]->grad;
    for (size_t i = 0; i < x2.size(); ++i) {
      float xi = x2.data()[i];
      float sig = xi >= 0 ? 1.0f / (1.0f + std::exp(-xi))
                          : std::exp(xi) / (1.0f + std::exp(xi));
      lg.data()[i] += g * (sig - tgt->data()[i]);
    }
  };
  return out;
}

}  // namespace alicoco::nn
