// Tape-based reverse-mode autodiff.
//
// Models build a fresh Graph per example (define-by-run), compose ops into a
// scalar loss, call Backward(), and the gradients of every Parameter used in
// the graph accumulate into Parameter::grad. An Optimizer then applies the
// accumulated batch gradient.
//
// The op set covers exactly what the paper's architectures need: matmul and
// elementwise math for MLPs, slicing/concat for LSTM gates, windowed concat
// for 1-D CNNs, softmax for attention, pooling, embedding gather, the
// additive two-way attention of Eq. 11, and stable sigmoid cross-entropy.

#ifndef ALICOCO_NN_GRAPH_H_
#define ALICOCO_NN_GRAPH_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace alicoco::nn {

namespace quant {
class QuantizedTensor;
}  // namespace quant

/// A trainable tensor with an accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;  ///< same shape as value; zeroed by ZeroGrad
};

/// Owns all parameters of a model; optimizers iterate over it.
class ParameterStore {
 public:
  enum class Init { kZero, kXavier, kGaussian };

  /// Creates a named parameter. Names must be unique within the store.
  Parameter* Create(const std::string& name, int rows, int cols, Init init,
                    Rng* rng, float gaussian_stddev = 0.1f);

  /// Looks up a parameter by name (nullptr if absent).
  Parameter* Get(const std::string& name) const;

  /// Zeroes every gradient.
  void ZeroGrad();

  /// All parameters, in creation order.
  const std::vector<std::unique_ptr<Parameter>>& params() const {
    return params_;
  }

  /// Total number of scalar weights.
  size_t TotalWeights() const;

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

/// Redirects parameter-gradient accumulation away from Parameter::grad.
/// Data-parallel training hands each worker thread its own sink so graphs
/// built concurrently against a shared ParameterStore never write shared
/// state; the per-thread buffers are reduced after the batch barrier.
/// GradFor is only ever called from the thread that owns the sink.
class GradientSink {
 public:
  virtual ~GradientSink() = default;
  /// Accumulation buffer for `p`, same shape as p->value.
  virtual Tensor* GradFor(Parameter* p) = 0;
};

/// Dynamic computation graph. `Var` handles index nodes inside one graph and
/// must not be mixed across graphs.
class Graph {
 public:
  using Var = int;

  /// With a sink, every parameter gradient this graph produces goes to
  /// sink->GradFor(p) instead of p->grad.
  explicit Graph(GradientSink* sink = nullptr) : sink_(sink) {}
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Leaf holding a constant value (no gradient flows out of the graph).
  Var Input(Tensor value);

  /// Leaf bound to a trainable parameter; Backward accumulates into p->grad.
  Var Use(Parameter* p);

  /// Value / gradient of a node (gradient valid after Backward).
  const Tensor& Value(Var v) const { return nodes_[v]->value; }
  const Tensor& Grad(Var v) const { return nodes_[v]->grad; }

  // ---- arithmetic ----
  Var MatMul(Var a, Var b);
  /// Elementwise add. `b` may also be 1 x C (row broadcast over a's rows) or
  /// 1 x 1 (scalar broadcast).
  Var Add(Var a, Var b);
  /// Elementwise subtract (same shape only).
  Var Sub(Var a, Var b);
  /// Elementwise (Hadamard) product, same shape.
  Var Mul(Var a, Var b);
  Var ScalarMul(Var a, float s);
  Var AddScalar(Var a, float s);

  // ---- nonlinearities ----
  Var Sigmoid(Var a);
  Var Tanh(Var a);
  Var Relu(Var a);
  /// Softmax independently over each row.
  Var SoftmaxRows(Var a);

  // ---- shape ----
  Var Transpose(Var a);
  Var ConcatCols(const std::vector<Var>& vars);
  Var ConcatRows(const std::vector<Var>& vars);
  Var SliceRows(Var a, int begin, int count);
  Var SliceCols(Var a, int begin, int count);
  /// Row i of result = concat of rows [i-k/2, i+k/2] of a, zero-padded at the
  /// borders: T x D -> T x (k*D). `k` must be odd.
  Var ConcatWindow(Var a, int k);

  // ---- reductions ----
  Var SumAll(Var a);    ///< 1x1
  Var MeanAll(Var a);   ///< 1x1
  Var SumRows(Var a);   ///< 1 x C: sum over rows
  Var SumCols(Var a);   ///< R x 1: sum over cols
  Var MeanRows(Var a);  ///< 1 x C: mean over rows
  Var MaxRows(Var a);   ///< 1 x C: max over rows (subgradient to argmax)

  // ---- lookup / regularization ----
  /// Gathers rows of `table` by id: len(ids) x dim. Gradients scatter-add
  /// into the table. Ids must be in range.
  Var EmbeddingLookup(Parameter* table, const std::vector<int>& ids);
  /// Inverted dropout; identity when !train.
  Var Dropout(Var a, float p, bool train, Rng* rng);

  // ---- fused compute ops (blocked kernels, no intermediate nodes) ----
  /// x (R x in) * W (in x out) + b (1 x out) as one node. Equivalent to
  /// Add(MatMul(x, Use(w)), Use(b)) without materializing the weight copy
  /// or the pre-bias product.
  Var Affine(Var x, Parameter* w, Parameter* b);
  /// tanh(x*W + b) fused.
  Var AffineTanh(Var x, Parameter* w, Parameter* b);
  /// relu(x*W + b) fused.
  Var AffineRelu(Var x, Parameter* w, Parameter* b);
  /// A (m x k) * B^T for B (n x k), without materializing the transpose.
  Var MatMulTransB(Var a, Var b);
  /// Full fused LSTM step (gate order [i, f, o, g] in the packed weights):
  /// x (R x in), h_prev/c_prev (R x H), wx (in x 4H), wh (H x 4H),
  /// b (1 x 4H) -> R x 2H holding [h_new, c_new]. Slice columns [0, H) for
  /// h and [H, 2H) for c.
  Var LstmStep(Var x, Var h_prev, Var c_prev, Parameter* wx, Parameter* wh,
               Parameter* b);

  // ---- quantized inference ops (forward-only) ----
  // Counterparts of the fused affine family / MatMul / EmbeddingLookup
  // that read weights from a quantized tensor (nn/quant.h) instead of a
  // Parameter. `wt` holds the weight TRANSPOSED (out x in, contraction dim
  // contiguous) as produced by QuantizedTensor::QuantizeTransposed. These
  // nodes have no gradient: calling Backward on a graph containing one
  // CHECK-fails (quantized weights are frozen inference artifacts). The
  // caller must keep `wt`/`table` alive for the graph's lifetime.
  /// act(x * W^T + b): x (R x in), wt (out x in), b (1 x out).
  Var AffineQuant(Var x, const quant::QuantizedTensor& wt, Parameter* b);
  Var AffineQuantTanh(Var x, const quant::QuantizedTensor& wt, Parameter* b);
  Var AffineQuantRelu(Var x, const quant::QuantizedTensor& wt, Parameter* b);
  /// a (m x in) * W for W stored transposed in `wt` (out x in) -> m x out.
  Var MatMulQuant(Var a, const quant::QuantizedTensor& wt);
  /// Gathers (dequantizes) rows of a quantized embedding table by id.
  Var EmbeddingLookupQuant(const quant::QuantizedTensor& table,
                           const std::vector<int>& ids);

  // ---- attention / losses ----
  /// att[i][j] = v^T tanh(a_i + b_j)  (Eq. 11). a: m x d, b: l x d,
  /// v: d x 1 -> m x l.
  Var AdditiveAttention(Var a, Var b, Var v);
  /// Mean over elements of sigmoid cross-entropy between logits and 0/1
  /// targets (targets same shape as logits, constant). Returns 1x1.
  Var SigmoidCrossEntropyWithLogits(Var logits, Tensor targets);

  /// Escape hatch for ops with hand-derived gradients (the CRF losses):
  /// creates a node with `value` whose backward invokes `backward` with the
  /// node's output gradient. The closure must push gradients to its inputs
  /// via AccumulateGrad, and to parameters via ParamGrad (never directly
  /// through Parameter::grad, which would bypass the sink).
  Var Custom(Tensor value,
             std::function<void(const Tensor& out_grad)> backward);

  /// Adds `g` into the gradient buffer of node `v` (for Custom backwards).
  void AccumulateGrad(Var v, const Tensor& g);

  /// Where gradients for `p` accumulate: the sink's buffer if one is
  /// installed, p->grad otherwise. Custom backwards must route parameter
  /// gradients through this so data-parallel training stays race-free.
  Tensor* ParamGrad(Parameter* p) {
    return sink_ != nullptr ? sink_->GradFor(p) : &p->grad;
  }

  /// Runs reverse-mode accumulation from `loss` (must be 1x1). Parameter
  /// gradients accumulate (call ParameterStore::ZeroGrad between batches).
  void Backward(Var loss);

  /// Number of nodes (diagnostics).
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    std::function<void()> backward;  // may be empty (constants)
  };

  Var NewNode(Tensor value, std::function<void()> backward = nullptr);
  Tensor& GradRef(Var v) { return nodes_[v]->grad; }
  /// Shared implementation of the fused affine family; `act` selects the
  /// fused activation (0 = none, 1 = tanh, 2 = relu).
  Var AffineAct(Var x, Parameter* w, Parameter* b, int act);
  /// Quantized counterpart of AffineAct (forward-only).
  Var AffineQuantAct(Var x, const quant::QuantizedTensor& wt, Parameter* b,
                     int act);

  GradientSink* sink_ = nullptr;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace alicoco::nn

#endif  // ALICOCO_NN_GRAPH_H_
