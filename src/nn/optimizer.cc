#include "nn/optimizer.h"

#include <cmath>

namespace alicoco::nn {

double Optimizer::ClipGlobalNorm(ParameterStore* store, double max_norm) {
  double sq = 0.0;
  for (const auto& p : store->params()) sq += p->grad.SquaredNorm();
  double norm = std::sqrt(sq);
  if (max_norm > 0 && norm > max_norm) {
    float scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (const auto& p : store->params()) p->grad.Scale(scale);
  }
  return norm;
}

void Sgd::Step(ParameterStore* store) {
  ClipGlobalNorm(store, clip_norm_);
  for (const auto& p : store->params()) {
    p->value.Axpy(-lr_, p->grad);
  }
}

void Adam::Step(ParameterStore* store) {
  ClipGlobalNorm(store, clip_norm_);
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (const auto& p : store->params()) {
    auto& slot = slots_[p.get()];
    if (slot.m.empty()) {
      slot.m = Tensor(p->value.rows(), p->value.cols());
      slot.v = Tensor(p->value.rows(), p->value.cols());
    }
    float* m = slot.m.data();
    float* v = slot.v.data();
    const float* g = p->grad.data();
    float* w = p->value.data();
    for (size_t i = 0; i < p->value.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      float mhat = m[i] / bc1;
      float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace alicoco::nn
