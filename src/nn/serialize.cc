#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "common/check.h"
#include "common/string_util.h"

namespace alicoco::nn {
namespace {
constexpr uint32_t kMagic = 0xA11C0C05;

// Bounds on untrusted header fields: a corrupt or truncated file must fail
// with Status::Corruption, never drive an allocation or a loop off a
// garbage length.
constexpr uint32_t kMaxNameLen = 1u << 16;
constexpr uint32_t kMaxParams = 1u << 20;
constexpr uint32_t kMaxDim = 1u << 24;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
}  // namespace

Status SaveParameters(const ParameterStore& store, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  if (!WriteU32(f.get(), kMagic) ||
      !WriteU32(f.get(), static_cast<uint32_t>(store.params().size()))) {
    return Status::IOError("write failed: " + path);
  }
  for (const auto& p : store.params()) {
    ALICOCO_DCHECK(p != nullptr);
    ALICOCO_CHECK_LE(p->name.size(), kMaxNameLen)
        << "parameter name too long to serialize: " << p->name;
    ALICOCO_CHECK_EQ(static_cast<size_t>(p->value.rows()) *
                         static_cast<size_t>(p->value.cols()),
                     p->value.size())
        << "inconsistent tensor shape for parameter " << p->name;
    uint32_t name_len = static_cast<uint32_t>(p->name.size());
    if (!WriteU32(f.get(), name_len) ||
        std::fwrite(p->name.data(), 1, name_len, f.get()) != name_len ||
        !WriteU32(f.get(), static_cast<uint32_t>(p->value.rows())) ||
        !WriteU32(f.get(), static_cast<uint32_t>(p->value.cols())) ||
        std::fwrite(p->value.data(), sizeof(float), p->value.size(),
                    f.get()) != p->value.size()) {
      return Status::IOError("write failed: " + path);
    }
  }
  return Status::OK();
}

Status LoadParameters(ParameterStore* store, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  uint32_t magic = 0, count = 0;
  if (!ReadU32(f.get(), &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!ReadU32(f.get(), &count)) return Status::Corruption("truncated: " + path);
  if (count > kMaxParams) {
    return Status::Corruption(
        StringPrintf("implausible parameter count %u in %s", count,
                     path.c_str()));
  }
  if (count != store->params().size()) {
    return Status::InvalidArgument(StringPrintf(
        "parameter count mismatch: file has %u, store has %zu", count,
        store->params().size()));
  }
  std::string name;  // reused across tensors; assign() keeps the capacity
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0, rows = 0, cols = 0;
    if (!ReadU32(f.get(), &name_len)) {
      return Status::Corruption("truncated: " + path);
    }
    if (name_len == 0 || name_len > kMaxNameLen) {
      return Status::Corruption(
          StringPrintf("implausible name length %u in %s", name_len,
                       path.c_str()));
    }
    name.assign(name_len, '\0');
    if (std::fread(name.data(), 1, name_len, f.get()) != name_len ||
        !ReadU32(f.get(), &rows) || !ReadU32(f.get(), &cols)) {
      return Status::Corruption("truncated: " + path);
    }
    if (rows > kMaxDim || cols > kMaxDim) {
      return Status::Corruption(
          StringPrintf("implausible shape %ux%u for %s", rows, cols,
                       name.c_str()));
    }
    Parameter* p = store->Get(name);
    if (p == nullptr) {
      return Status::NotFound("unknown parameter in file: " + name);
    }
    if (p->value.rows() != static_cast<int>(rows) ||
        p->value.cols() != static_cast<int>(cols)) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    if (std::fread(p->value.data(), sizeof(float), p->value.size(),
                   f.get()) != p->value.size()) {
      return Status::Corruption("truncated weights for " + name);
    }
  }
  return Status::OK();
}

}  // namespace alicoco::nn
