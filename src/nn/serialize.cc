#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"
#include "nn/kernels.h"

namespace alicoco::nn {
namespace {
constexpr uint32_t kMagic = 0xA11C0C05;
constexpr uint32_t kQuantMagic = 0xA11C0C06;
constexpr uint32_t kQuantVersion = 1;

// Entry kind tags in the quantized format.
constexpr uint32_t kEntryFp32 = 0;
constexpr uint32_t kEntryQ8 = 1;
constexpr uint32_t kEntryFp16 = 2;

// Bounds on untrusted header fields: a corrupt or truncated file must fail
// with Status::Corruption, never drive an allocation or a loop off a
// garbage length.
constexpr uint32_t kMaxNameLen = 1u << 16;
constexpr uint32_t kMaxParams = 1u << 20;
constexpr uint32_t kMaxDim = 1u << 24;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
}  // namespace

Status SaveParameters(const ParameterStore& store, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  if (!WriteU32(f.get(), kMagic) ||
      !WriteU32(f.get(), static_cast<uint32_t>(store.params().size()))) {
    return Status::IOError("write failed: " + path);
  }
  for (const auto& p : store.params()) {
    ALICOCO_DCHECK(p != nullptr);
    ALICOCO_CHECK_LE(p->name.size(), kMaxNameLen)
        << "parameter name too long to serialize: " << p->name;
    ALICOCO_CHECK_EQ(static_cast<size_t>(p->value.rows()) *
                         static_cast<size_t>(p->value.cols()),
                     p->value.size())
        << "inconsistent tensor shape for parameter " << p->name;
    uint32_t name_len = static_cast<uint32_t>(p->name.size());
    if (!WriteU32(f.get(), name_len) ||
        std::fwrite(p->name.data(), 1, name_len, f.get()) != name_len ||
        !WriteU32(f.get(), static_cast<uint32_t>(p->value.rows())) ||
        !WriteU32(f.get(), static_cast<uint32_t>(p->value.cols())) ||
        std::fwrite(p->value.data(), sizeof(float), p->value.size(),
                    f.get()) != p->value.size()) {
      return Status::IOError("write failed: " + path);
    }
  }
  return Status::OK();
}

Status LoadParameters(ParameterStore* store, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  uint32_t magic = 0, count = 0;
  if (!ReadU32(f.get(), &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!ReadU32(f.get(), &count)) return Status::Corruption("truncated: " + path);
  if (count > kMaxParams) {
    return Status::Corruption(
        StringPrintf("implausible parameter count %u in %s", count,
                     path.c_str()));
  }
  if (count != store->params().size()) {
    return Status::InvalidArgument(StringPrintf(
        "parameter count mismatch: file has %u, store has %zu", count,
        store->params().size()));
  }
  std::string name;  // reused across tensors; assign() keeps the capacity
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0, rows = 0, cols = 0;
    if (!ReadU32(f.get(), &name_len)) {
      return Status::Corruption("truncated: " + path);
    }
    if (name_len == 0 || name_len > kMaxNameLen) {
      return Status::Corruption(
          StringPrintf("implausible name length %u in %s", name_len,
                       path.c_str()));
    }
    name.assign(name_len, '\0');
    if (std::fread(name.data(), 1, name_len, f.get()) != name_len ||
        !ReadU32(f.get(), &rows) || !ReadU32(f.get(), &cols)) {
      return Status::Corruption("truncated: " + path);
    }
    if (rows > kMaxDim || cols > kMaxDim) {
      return Status::Corruption(
          StringPrintf("implausible shape %ux%u for %s", rows, cols,
                       name.c_str()));
    }
    Parameter* p = store->Get(name);
    if (p == nullptr) {
      return Status::NotFound("unknown parameter in file: " + name);
    }
    if (p->value.rows() != static_cast<int>(rows) ||
        p->value.cols() != static_cast<int>(cols)) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    if (std::fread(p->value.data(), sizeof(float), p->value.size(),
                   f.get()) != p->value.size()) {
      return Status::Corruption("truncated weights for " + name);
    }
  }
  return Status::OK();
}

namespace {

bool WriteName(std::FILE* f, const std::string& name) {
  const uint32_t name_len = static_cast<uint32_t>(name.size());
  return WriteU32(f, name_len) &&
         std::fwrite(name.data(), 1, name_len, f) == name_len;
}

Status ReadName(std::FILE* f, const std::string& path, std::string* name) {
  uint32_t name_len = 0;
  if (!ReadU32(f, &name_len)) return Status::Corruption("truncated: " + path);
  if (name_len == 0 || name_len > kMaxNameLen) {
    return Status::Corruption(StringPrintf(
        "implausible name length %u in %s", name_len, path.c_str()));
  }
  name->assign(name_len, '\0');
  if (std::fread(name->data(), 1, name_len, f) != name_len) {
    return Status::Corruption("truncated: " + path);
  }
  return Status::OK();
}

Status ReadShape(std::FILE* f, const std::string& path,
                 const std::string& name, uint32_t* rows, uint32_t* cols) {
  if (!ReadU32(f, rows) || !ReadU32(f, cols)) {
    return Status::Corruption("truncated: " + path);
  }
  if (*rows > kMaxDim || *cols > kMaxDim) {
    return Status::Corruption(StringPrintf("implausible shape %ux%u for %s",
                                           *rows, *cols, name.c_str()));
  }
  return Status::OK();
}

}  // namespace

Status SaveQuantizedStore(const quant::QuantizedStore& store,
                          const std::string& path) {
  ALICOCO_CHECK(store.mode() != quant::QuantMode::kNone)
      << "refusing to save an fp32-mode quantized store";
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  const uint32_t count = static_cast<uint32_t>(store.quantized().size() +
                                               store.fp32().size());
  if (!WriteU32(f.get(), kQuantMagic) || !WriteU32(f.get(), kQuantVersion) ||
      !WriteU32(f.get(), static_cast<uint32_t>(store.mode())) ||
      !WriteU32(f.get(), count)) {
    return Status::IOError("write failed: " + path);
  }
  for (const auto& [name, t] : store.quantized()) {
    ALICOCO_CHECK_LE(name.size(), kMaxNameLen)
        << "tensor name too long to serialize: " << name;
    const uint32_t kind = t.mode() == quant::QuantMode::kInt8 ? kEntryQ8
                                                              : kEntryFp16;
    if (!WriteName(f.get(), name) || !WriteU32(f.get(), kind) ||
        !WriteU32(f.get(), static_cast<uint32_t>(t.rows())) ||
        !WriteU32(f.get(), static_cast<uint32_t>(t.cols()))) {
      return Status::IOError("write failed: " + path);
    }
    if (kind == kEntryQ8) {
      const auto& codes = t.q8_vector();
      const auto& scales = t.scales_vector();
      if (std::fwrite(codes.data(), sizeof(int8_t), codes.size(), f.get()) !=
              codes.size() ||
          std::fwrite(scales.data(), sizeof(float), scales.size(),
                      f.get()) != scales.size()) {
        return Status::IOError("write failed: " + path);
      }
    } else {
      const auto& codes = t.fp16_vector();
      if (std::fwrite(codes.data(), sizeof(uint16_t), codes.size(),
                      f.get()) != codes.size()) {
        return Status::IOError("write failed: " + path);
      }
    }
  }
  for (const auto& [name, t] : store.fp32()) {
    ALICOCO_CHECK_LE(name.size(), kMaxNameLen)
        << "tensor name too long to serialize: " << name;
    if (!WriteName(f.get(), name) || !WriteU32(f.get(), kEntryFp32) ||
        !WriteU32(f.get(), static_cast<uint32_t>(t.rows())) ||
        !WriteU32(f.get(), static_cast<uint32_t>(t.cols())) ||
        std::fwrite(t.data(), sizeof(float), t.size(), f.get()) !=
            t.size()) {
      return Status::IOError("write failed: " + path);
    }
  }
  return Status::OK();
}

Status LoadQuantizedStore(quant::QuantizedStore* store,
                          const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  uint32_t magic = 0, version = 0, mode_raw = 0, count = 0;
  if (!ReadU32(f.get(), &magic) || magic != kQuantMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!ReadU32(f.get(), &version) || !ReadU32(f.get(), &mode_raw) ||
      !ReadU32(f.get(), &count)) {
    return Status::Corruption("truncated: " + path);
  }
  if (version != kQuantVersion) {
    return Status::InvalidArgument(StringPrintf(
        "unsupported quantized format version %u in %s", version,
        path.c_str()));
  }
  if (mode_raw != static_cast<uint32_t>(quant::QuantMode::kInt8) &&
      mode_raw != static_cast<uint32_t>(quant::QuantMode::kFp16)) {
    return Status::Corruption(
        StringPrintf("bad quant mode %u in %s", mode_raw, path.c_str()));
  }
  if (count > kMaxParams) {
    return Status::Corruption(StringPrintf(
        "implausible tensor count %u in %s", count, path.c_str()));
  }
  quant::QuantizedStore loaded(static_cast<quant::QuantMode>(mode_raw));
  // Read buffers hoisted out of the entry loop. Each payload vector is
  // moved into the tensor it builds, so iterations start from an empty
  // vector and resize() allocates exactly once per entry.
  std::string name;
  std::vector<float> fp32_data;
  std::vector<int8_t> q8_codes;
  std::vector<float> q8_scales;
  std::vector<uint16_t> fp16_codes;
  for (uint32_t i = 0; i < count; ++i) {
    Status s = ReadName(f.get(), path, &name);
    if (!s.ok()) return s;
    uint32_t kind = 0, rows = 0, cols = 0;
    if (!ReadU32(f.get(), &kind)) {
      return Status::Corruption("truncated: " + path);
    }
    s = ReadShape(f.get(), path, name, &rows, &cols);
    if (!s.ok()) return s;
    const size_t elems = static_cast<size_t>(rows) * cols;
    if (kind == kEntryFp32) {
      fp32_data.resize(elems);
      if (std::fread(fp32_data.data(), sizeof(float), elems, f.get()) !=
          elems) {
        return Status::Corruption("truncated weights for " + name);
      }
      loaded.AddFp32(name, Tensor::FromVector(static_cast<int>(rows),
                                              static_cast<int>(cols),
                                              std::move(fp32_data)));
    } else if (kind == kEntryQ8) {
      if (mode_raw != static_cast<uint32_t>(quant::QuantMode::kInt8)) {
        return Status::Corruption("q8 entry in non-int8 store: " + name);
      }
      const size_t blocks = static_cast<size_t>(rows) *
                            kernels::Q8Blocks(static_cast<int>(cols));
      q8_codes.resize(blocks * kernels::kQ8Block);
      q8_scales.resize(blocks);
      if (std::fread(q8_codes.data(), sizeof(int8_t), q8_codes.size(),
                     f.get()) != q8_codes.size() ||
          std::fread(q8_scales.data(), sizeof(float), q8_scales.size(),
                     f.get()) != q8_scales.size()) {
        return Status::Corruption("truncated weights for " + name);
      }
      loaded.AddQuantized(
          name, quant::QuantizedTensor::FromQ8(static_cast<int>(rows),
                                               static_cast<int>(cols),
                                               std::move(q8_codes),
                                               std::move(q8_scales)));
    } else if (kind == kEntryFp16) {
      if (mode_raw != static_cast<uint32_t>(quant::QuantMode::kFp16)) {
        return Status::Corruption("fp16 entry in non-fp16 store: " + name);
      }
      fp16_codes.resize(elems);
      if (std::fread(fp16_codes.data(), sizeof(uint16_t), elems, f.get()) !=
          elems) {
        return Status::Corruption("truncated weights for " + name);
      }
      loaded.AddQuantized(
          name, quant::QuantizedTensor::FromFp16(static_cast<int>(rows),
                                                 static_cast<int>(cols),
                                                 std::move(fp16_codes)));
    } else {
      return Status::Corruption(StringPrintf(
          "unknown entry kind %u for %s in %s", kind, name.c_str(),
          path.c_str()));
    }
  }
  *store = std::move(loaded);
  return Status::OK();
}

}  // namespace alicoco::nn
