#include "nn/layers.h"

#include <cmath>

namespace alicoco::nn {

Linear::Linear(ParameterStore* store, const std::string& name, int in_dim,
               int out_dim, Rng* rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  w_ = store->Create(name + ".W", in_dim, out_dim,
                     ParameterStore::Init::kXavier, rng);
  b_ = store->Create(name + ".b", 1, out_dim, ParameterStore::Init::kZero,
                     nullptr);
}

Graph::Var Linear::Apply(Graph* g, Graph::Var x) const {
  return g->Affine(x, w_, b_);
}

Graph::Var Linear::ApplyTanh(Graph* g, Graph::Var x) const {
  return g->AffineTanh(x, w_, b_);
}

Graph::Var Linear::ApplyRelu(Graph* g, Graph::Var x) const {
  return g->AffineRelu(x, w_, b_);
}

Embedding::Embedding(ParameterStore* store, const std::string& name,
                     int vocab, int dim, Rng* rng)
    : vocab_(vocab), dim_(dim) {
  table_ = store->Create(name + ".table", vocab, dim,
                         ParameterStore::Init::kGaussian, rng, 0.08f);
}

Graph::Var Embedding::Lookup(Graph* g, const std::vector<int>& ids) const {
  return g->EmbeddingLookup(table_, ids);
}

void Embedding::LoadPretrained(const std::vector<float>& table) {
  ALICOCO_CHECK(table.size() == table_->value.size())
      << "pretrained table size mismatch";
  std::copy(table.begin(), table.end(), table_->value.data());
}

Conv1D::Conv1D(ParameterStore* store, const std::string& name, int in_dim,
               int filters, int window, Rng* rng)
    : window_(window), proj_(store, name, in_dim * window, filters, rng) {
  ALICOCO_CHECK(window >= 1 && window % 2 == 1) << "Conv1D window must be odd";
}

Graph::Var Conv1D::Apply(Graph* g, Graph::Var x) const {
  return proj_.ApplyRelu(g, g->ConcatWindow(x, window_));
}

SelfAttention::SelfAttention(ParameterStore* store, const std::string& name,
                             int dim, Rng* rng, bool residual)
    : dim_(dim),
      residual_(residual),
      q_(store, name + ".q", dim, dim, rng),
      k_(store, name + ".k", dim, dim, rng),
      v_(store, name + ".v", dim, dim, rng) {}

Graph::Var SelfAttention::Apply(Graph* g, Graph::Var x) const {
  Graph::Var q = q_.Apply(g, x);
  Graph::Var k = k_.Apply(g, x);
  Graph::Var v = v_.Apply(g, x);
  float scale = 1.0f / std::sqrt(static_cast<float>(dim_));
  Graph::Var scores = g->ScalarMul(g->MatMulTransB(q, k), scale);
  Graph::Var attended = g->MatMul(g->SoftmaxRows(scores), v);
  return residual_ ? g->Add(x, attended) : attended;
}

Mlp::Mlp(ParameterStore* store, const std::string& name,
         const std::vector<int>& dims, Rng* rng) {
  ALICOCO_CHECK(dims.size() >= 2) << "Mlp needs at least {in, out}";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(store, name + ".fc" + std::to_string(i), dims[i],
                         dims[i + 1], rng);
  }
}

Graph::Var Mlp::Apply(Graph* g, Graph::Var x) const {
  Graph::Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = i + 1 < layers_.size() ? layers_[i].ApplyTanh(g, h)
                               : layers_[i].Apply(g, h);
  }
  return h;
}

}  // namespace alicoco::nn
