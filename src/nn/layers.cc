#include "nn/layers.h"

#include <cmath>

namespace alicoco::nn {

Linear::Linear(ParameterStore* store, const std::string& name, int in_dim,
               int out_dim, Rng* rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  w_ = store->Create(name + ".W", in_dim, out_dim,
                     ParameterStore::Init::kXavier, rng);
  b_ = store->Create(name + ".b", 1, out_dim, ParameterStore::Init::kZero,
                     nullptr);
}

Graph::Var Linear::Apply(Graph* g, Graph::Var x) const {
  if (qw_ != nullptr) return g->AffineQuant(x, *qw_, b_);
  return g->Affine(x, w_, b_);
}

Graph::Var Linear::ApplyTanh(Graph* g, Graph::Var x) const {
  if (qw_ != nullptr) return g->AffineQuantTanh(x, *qw_, b_);
  return g->AffineTanh(x, w_, b_);
}

Graph::Var Linear::ApplyRelu(Graph* g, Graph::Var x) const {
  if (qw_ != nullptr) return g->AffineQuantRelu(x, *qw_, b_);
  return g->AffineRelu(x, w_, b_);
}

void Linear::AppendQuantPlan(quant::QuantPlan* plan) const {
  plan->push_back({w_, /*transpose=*/true});
}

void Linear::AttachQuantized(const quant::QuantizedStore& store) {
  const quant::QuantizedTensor* qw = store.FindQuantized(w_->name);
  ALICOCO_CHECK(qw != nullptr)
      << "quantized store has no tensor for " << w_->name;
  // Stored transposed: out x in.
  ALICOCO_CHECK(qw->rows() == out_dim_ && qw->cols() == in_dim_)
      << "quantized shape mismatch for " << w_->name << ": want "
      << out_dim_ << "x" << in_dim_ << " (transposed), got " << qw->rows()
      << "x" << qw->cols();
  qw_ = qw;
}

Embedding::Embedding(ParameterStore* store, const std::string& name,
                     int vocab, int dim, Rng* rng)
    : vocab_(vocab), dim_(dim) {
  table_ = store->Create(name + ".table", vocab, dim,
                         ParameterStore::Init::kGaussian, rng, 0.08f);
}

Graph::Var Embedding::Lookup(Graph* g, const std::vector<int>& ids) const {
  if (qt_ != nullptr) return g->EmbeddingLookupQuant(*qt_, ids);
  return g->EmbeddingLookup(table_, ids);
}

void Embedding::LoadPretrained(const std::vector<float>& table) {
  ALICOCO_CHECK(table.size() == table_->value.size())
      << "pretrained table size mismatch";
  std::copy(table.begin(), table.end(), table_->value.data());
}

void Embedding::AppendQuantPlan(quant::QuantPlan* plan) const {
  plan->push_back({table_, /*transpose=*/false});
}

void Embedding::AttachQuantized(const quant::QuantizedStore& store) {
  const quant::QuantizedTensor* qt = store.FindQuantized(table_->name);
  ALICOCO_CHECK(qt != nullptr)
      << "quantized store has no tensor for " << table_->name;
  ALICOCO_CHECK(qt->rows() == vocab_ && qt->cols() == dim_)
      << "quantized shape mismatch for " << table_->name << ": want "
      << vocab_ << "x" << dim_ << ", got " << qt->rows() << "x"
      << qt->cols();
  qt_ = qt;
}

Conv1D::Conv1D(ParameterStore* store, const std::string& name, int in_dim,
               int filters, int window, Rng* rng)
    : window_(window), proj_(store, name, in_dim * window, filters, rng) {
  ALICOCO_CHECK(window >= 1 && window % 2 == 1) << "Conv1D window must be odd";
}

Graph::Var Conv1D::Apply(Graph* g, Graph::Var x) const {
  return proj_.ApplyRelu(g, g->ConcatWindow(x, window_));
}

void Conv1D::AppendQuantPlan(quant::QuantPlan* plan) const {
  proj_.AppendQuantPlan(plan);
}

void Conv1D::AttachQuantized(const quant::QuantizedStore& store) {
  proj_.AttachQuantized(store);
}

SelfAttention::SelfAttention(ParameterStore* store, const std::string& name,
                             int dim, Rng* rng, bool residual)
    : dim_(dim),
      residual_(residual),
      q_(store, name + ".q", dim, dim, rng),
      k_(store, name + ".k", dim, dim, rng),
      v_(store, name + ".v", dim, dim, rng) {}

Graph::Var SelfAttention::Apply(Graph* g, Graph::Var x) const {
  Graph::Var q = q_.Apply(g, x);
  Graph::Var k = k_.Apply(g, x);
  Graph::Var v = v_.Apply(g, x);
  float scale = 1.0f / std::sqrt(static_cast<float>(dim_));
  Graph::Var scores = g->ScalarMul(g->MatMulTransB(q, k), scale);
  Graph::Var attended = g->MatMul(g->SoftmaxRows(scores), v);
  return residual_ ? g->Add(x, attended) : attended;
}

void SelfAttention::AppendQuantPlan(quant::QuantPlan* plan) const {
  q_.AppendQuantPlan(plan);
  k_.AppendQuantPlan(plan);
  v_.AppendQuantPlan(plan);
}

void SelfAttention::AttachQuantized(const quant::QuantizedStore& store) {
  q_.AttachQuantized(store);
  k_.AttachQuantized(store);
  v_.AttachQuantized(store);
}

void SelfAttention::DetachQuantized() {
  q_.DetachQuantized();
  k_.DetachQuantized();
  v_.DetachQuantized();
}

Mlp::Mlp(ParameterStore* store, const std::string& name,
         const std::vector<int>& dims, Rng* rng) {
  ALICOCO_CHECK(dims.size() >= 2) << "Mlp needs at least {in, out}";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(store, name + ".fc" + std::to_string(i), dims[i],
                         dims[i + 1], rng);
  }
}

Graph::Var Mlp::Apply(Graph* g, Graph::Var x) const {
  Graph::Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = i + 1 < layers_.size() ? layers_[i].ApplyTanh(g, h)
                               : layers_[i].Apply(g, h);
  }
  return h;
}

void Mlp::AppendQuantPlan(quant::QuantPlan* plan) const {
  for (const Linear& layer : layers_) layer.AppendQuantPlan(plan);
}

void Mlp::AttachQuantized(const quant::QuantizedStore& store) {
  for (Linear& layer : layers_) layer.AttachQuantized(store);
}

void Mlp::DetachQuantized() {
  for (Linear& layer : layers_) layer.DetachQuantized();
}

}  // namespace alicoco::nn
