#include "nn/parallel_train.h"

#include <algorithm>

namespace alicoco::nn {

Tensor* GradientBuffer::GradFor(Parameter* p) {
  auto it = grads_.find(p);
  if (it == grads_.end()) {
    it = grads_.emplace(p, Tensor(p->value.rows(), p->value.cols())).first;
  }
  return &it->second;
}

void GradientBuffer::ReduceInto() {
  for (auto& [p, t] : grads_) {
    p->grad.AddInPlace(t);
    t.Zero();
  }
}

float ParallelTrainer::AccumulateBatch(size_t count, const ExampleFn& fn) {
  if (count == 0) return 0.0f;
  const size_t workers = num_workers();
  if (workers <= 1 || count <= 1) {
    float total = 0.0f;
    for (size_t i = 0; i < count; ++i) {
      Graph g;  // sinkless: gradients land directly in Parameter::grad
      total += fn(&g, i);
    }
    return total;
  }

  const size_t shards = std::min(count, workers);
  if (buffers_.size() < shards) {
    buffers_ = std::vector<GradientBuffer>(shards);
  }
  const size_t per = (count + shards - 1) / shards;
  std::vector<float> losses(shards, 0.0f);
  for (size_t s = 0; s < shards; ++s) {
    const size_t lo = s * per;
    const size_t hi = std::min(count, lo + per);
    if (lo >= hi) break;
    pool_->Submit([this, s, lo, hi, &fn, &losses] {
      GradientBuffer* buf = &buffers_[s];
      float local = 0.0f;
      for (size_t i = lo; i < hi; ++i) {
        Graph g(buf);
        local += fn(&g, i);
      }
      losses[s] = local;
    });
  }
  pool_->Wait();

  float total = 0.0f;
  for (float l : losses) total += l;
  // Deterministic reduction: shard order, coordinating thread only.
  for (size_t s = 0; s < shards; ++s) buffers_[s].ReduceInto();
  return total;
}

}  // namespace alicoco::nn
