// AVX2 + FMA + F16C tier of the kernel dispatch table (see kernels.h).
// Compiled with -mavx2 -mfma -mf16c for this TU only; Table() gates on
// CPUID at runtime so the binary stays runnable on pre-AVX2 hardware.
// All memory access uses unaligned loads/stores (loadu/storeu discipline)
// — tensor buffers are plain std::vector allocations with no alignment
// guarantee beyond what the allocator gives.
#include "nn/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace alicoco::nn::kernels::avx2 {
namespace {

// ---- fp32 GEMM: C += A * B ----------------------------------------------
//
// Register tile: ROWS x 16 floats of C in ymm accumulators held across the
// whole k pass. ROWS=4 uses 8 accumulator registers + 2 B registers + 1
// broadcast, comfortably inside the 16 ymm registers.

template <int ROWS>
inline void GemmTile16(int k, const float* a, int lda, const float* b,
                       int ldb, float* c, int ldc) {
  __m256 acc0[ROWS], acc1[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    acc0[r] = _mm256_loadu_ps(c + r * ldc);
    acc1[r] = _mm256_loadu_ps(c + r * ldc + 8);
  }
  for (int p = 0; p < k; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + static_cast<long>(p) * ldb);
    const __m256 b1 = _mm256_loadu_ps(b + static_cast<long>(p) * ldb + 8);
    for (int r = 0; r < ROWS; ++r) {
      const __m256 av = _mm256_broadcast_ss(a + r * lda + p);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    _mm256_storeu_ps(c + r * ldc, acc0[r]);
    _mm256_storeu_ps(c + r * ldc + 8, acc1[r]);
  }
}

template <int ROWS>
inline void GemmTile8(int k, const float* a, int lda, const float* b,
                      int ldb, float* c, int ldc) {
  __m256 acc[ROWS];
  for (int r = 0; r < ROWS; ++r) acc[r] = _mm256_loadu_ps(c + r * ldc);
  for (int p = 0; p < k; ++p) {
    const __m256 bv = _mm256_loadu_ps(b + static_cast<long>(p) * ldb);
    for (int r = 0; r < ROWS; ++r) {
      acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + r * lda + p), bv,
                               acc[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r) _mm256_storeu_ps(c + r * ldc, acc[r]);
}

// Scalar tail columns (n % 8) for a block of ROWS rows.
inline void GemmTailCols(int rows, int k, int n0, int n, const float* a,
                         int lda, const float* b, int ldb, float* c,
                         int ldc) {
  for (int r = 0; r < rows; ++r) {
    for (int j = n0; j < n; ++j) {
      float acc = c[r * ldc + j];
      for (int p = 0; p < k; ++p) {
        acc += a[r * lda + p] * b[static_cast<long>(p) * ldb + j];
      }
      c[r * ldc + j] = acc;
    }
  }
}

template <int ROWS>
inline void GemmRowBlock(int k, int n, const float* a, int lda,
                         const float* b, int ldb, float* c, int ldc) {
  int j = 0;
  for (; j + 16 <= n; j += 16) {
    GemmTile16<ROWS>(k, a, lda, b + j, ldb, c + j, ldc);
  }
  if (j + 8 <= n) {
    GemmTile8<ROWS>(k, a, lda, b + j, ldb, c + j, ldc);
    j += 8;
  }
  if (j < n) GemmTailCols(ROWS, k, j, n, a, lda, b, ldb, c, ldc);
}

void GemmAccum(int m, int k, int n, const float* a, const float* b,
               float* c) {
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    GemmRowBlock<4>(k, n, a + static_cast<long>(i) * k, k, b, n,
                    c + static_cast<long>(i) * n, n);
  }
  switch (m - i) {
    case 3:
      GemmRowBlock<3>(k, n, a + static_cast<long>(i) * k, k, b, n,
                      c + static_cast<long>(i) * n, n);
      break;
    case 2:
      GemmRowBlock<2>(k, n, a + static_cast<long>(i) * k, k, b, n,
                      c + static_cast<long>(i) * n, n);
      break;
    case 1:
      GemmRowBlock<1>(k, n, a + static_cast<long>(i) * k, k, b, n,
                      c + static_cast<long>(i) * n, n);
      break;
    default:
      break;
  }
}

// ---- fp32 GEMM, B transposed: C[i][j] += dot(A row i, B row j) ----------

inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

void GemmTransBAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  for (int i = 0; i < m; ++i) {
    const float* ar = a + static_cast<long>(i) * k;
    float* cr = c + static_cast<long>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + static_cast<long>(j) * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      __m256 s0 = _mm256_setzero_ps();
      __m256 s1 = _mm256_setzero_ps();
      __m256 s2 = _mm256_setzero_ps();
      __m256 s3 = _mm256_setzero_ps();
      int p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 av = _mm256_loadu_ps(ar + p);
        s0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + p), s0);
        s1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + p), s1);
        s2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + p), s2);
        s3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + p), s3);
      }
      float acc0 = HSum(s0), acc1 = HSum(s1), acc2 = HSum(s2),
            acc3 = HSum(s3);
      for (; p < k; ++p) {
        const float av = ar[p];
        acc0 += av * b0[p];
        acc1 += av * b1[p];
        acc2 += av * b2[p];
        acc3 += av * b3[p];
      }
      cr[j] += acc0;
      cr[j + 1] += acc1;
      cr[j + 2] += acc2;
      cr[j + 3] += acc3;
    }
    for (; j < n; ++j) {
      const float* br = b + static_cast<long>(j) * k;
      __m256 s = _mm256_setzero_ps();
      int p = 0;
      for (; p + 8 <= k; p += 8) {
        s = _mm256_fmadd_ps(_mm256_loadu_ps(ar + p), _mm256_loadu_ps(br + p),
                            s);
      }
      float acc = HSum(s);
      for (; p < k; ++p) acc += ar[p] * br[p];
      cr[j] += acc;
    }
  }
}

// ---- fp32 GEMM, A transposed: C (k x n) += A^T * B ----------------------

void GemmTransAAccum(int m, int k, int n, const float* a, const float* b,
                     float* c) {
  for (int i = 0; i < m; ++i) {
    const float* ar = a + static_cast<long>(i) * k;
    const float* br = b + static_cast<long>(i) * n;
    for (int p = 0; p < k; ++p) {
      const __m256 av = _mm256_broadcast_ss(ar + p);
      float* cr = c + static_cast<long>(p) * n;
      int j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(
            cr + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(br + j),
                                    _mm256_loadu_ps(cr + j)));
      }
      const float avs = ar[p];
      for (; j < n; ++j) cr[j] += avs * br[j];
    }
  }
}

// ---- fused bias + activation --------------------------------------------

// Vectorized tanh via the rational polynomial from Eigen/Cephes
// (numerator degree 13 odd / denominator degree 6 even), accurate to a
// few ULP across the clamped range — the fused-op tests compare against
// std::tanh at 1e-6.
inline __m256 TanhPs(__m256 x) {
  const __m256 kClamp = _mm256_set1_ps(7.90531110763549805f);
  x = _mm256_max_ps(_mm256_min_ps(x, kClamp),
                    _mm256_sub_ps(_mm256_setzero_ps(), kClamp));
  const __m256 x2 = _mm256_mul_ps(x, x);

  __m256 p = _mm256_set1_ps(-2.76076847742355e-16f);
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(2.00018790482477e-13f));
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(-8.60467152213735e-11f));
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(5.12229709037114e-08f));
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(1.48572235717979e-05f));
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(6.37261928875436e-04f));
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(4.89352455891786e-03f));
  p = _mm256_mul_ps(p, x);

  __m256 q = _mm256_set1_ps(1.19825839466702e-06f);
  q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(1.18534705686654e-04f));
  q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(2.26843463243900e-03f));
  q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(4.89352518554385e-03f));

  return _mm256_div_ps(p, q);
}

void AddBias(int rows, int cols, const float* x, const float* bias,
             float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<long>(i) * cols;
    float* or_ = out + static_cast<long>(i) * cols;
    int j = 0;
    for (; j + 8 <= cols; j += 8) {
      _mm256_storeu_ps(or_ + j, _mm256_add_ps(_mm256_loadu_ps(xr + j),
                                              _mm256_loadu_ps(bias + j)));
    }
    for (; j < cols; ++j) or_[j] = xr[j] + bias[j];
  }
}

void AddBiasTanh(int rows, int cols, const float* x, const float* bias,
                 float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<long>(i) * cols;
    float* or_ = out + static_cast<long>(i) * cols;
    int j = 0;
    for (; j + 8 <= cols; j += 8) {
      _mm256_storeu_ps(or_ + j,
                       TanhPs(_mm256_add_ps(_mm256_loadu_ps(xr + j),
                                            _mm256_loadu_ps(bias + j))));
    }
    for (; j < cols; ++j) or_[j] = std::tanh(xr[j] + bias[j]);
  }
}

void AddBiasRelu(int rows, int cols, const float* x, const float* bias,
                 float* out) {
  const __m256 zero = _mm256_setzero_ps();
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<long>(i) * cols;
    float* or_ = out + static_cast<long>(i) * cols;
    int j = 0;
    for (; j + 8 <= cols; j += 8) {
      _mm256_storeu_ps(
          or_ + j, _mm256_max_ps(_mm256_add_ps(_mm256_loadu_ps(xr + j),
                                               _mm256_loadu_ps(bias + j)),
                                 zero));
    }
    for (; j < cols; ++j) {
      const float v = xr[j] + bias[j];
      or_[j] = v > 0.0f ? v : 0.0f;
    }
  }
}

// ---- quantized kernels ---------------------------------------------------

// 32-lane int8 dot product as int32x8. maddubs needs an unsigned lhs, so
// move A's sign onto B (sign(b, a) = b * signum(a), |a| stays in [0,127]);
// u8*s8 pair sums are then bounded by 2*127*127 = 32258 < 32767, so the
// int16 intermediate cannot saturate.
inline __m256i DotQ8Block(__m256i va, __m256i vb) {
  const __m256i ua = _mm256_sign_epi8(va, va);
  const __m256i sb = _mm256_sign_epi8(vb, va);
  const __m256i pairs = _mm256_maddubs_epi16(ua, sb);
  return _mm256_madd_epi16(pairs, _mm256_set1_epi16(1));
}

inline float HSumI32(__m256i v) {
  const __m128 f = _mm_cvtepi32_ps(_mm_add_epi32(
      _mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1)));
  __m128 s = _mm_add_ps(f, _mm_movehl_ps(f, f));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

void Q8GemmDotAccum(int m, int k, int n, const int8_t* aq,
                    const float* ascales, const int8_t* bq,
                    const float* bscales, float* c) {
  const int blocks = Q8Blocks(k);
  const long row_q = static_cast<long>(blocks) * kQ8Block;
  for (int i = 0; i < m; ++i) {
    const int8_t* ar = aq + i * row_q;
    const float* as = ascales + static_cast<long>(i) * blocks;
    float* cr = c + static_cast<long>(i) * n;
    for (int j = 0; j < n; ++j) {
      const int8_t* br = bq + j * row_q;
      const float* bs = bscales + static_cast<long>(j) * blocks;
      float acc = 0.0f;
      for (int blk = 0; blk < blocks; ++blk) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ar + blk * kQ8Block));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(br + blk * kQ8Block));
        acc += as[blk] * bs[blk] * HSumI32(DotQ8Block(va, vb));
      }
      cr[j] += acc;
    }
  }
}

void Fp16GemmTransBAccum(int m, int k, int n, const float* a,
                         const uint16_t* b, float* c) {
  for (int i = 0; i < m; ++i) {
    const float* ar = a + static_cast<long>(i) * k;
    float* cr = c + static_cast<long>(i) * n;
    for (int j = 0; j < n; ++j) {
      const uint16_t* br = b + static_cast<long>(j) * k;
      __m256 s = _mm256_setzero_ps();
      int p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 bw = _mm256_cvtph_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(br + p)));
        s = _mm256_fmadd_ps(_mm256_loadu_ps(ar + p), bw, s);
      }
      float acc = HSum(s);
      for (; p < k; ++p) {
        acc += ar[p] * _cvtsh_ss(br[p]);
      }
      cr[j] += acc;
    }
  }
}

void Fp32ToFp16(const float* src, uint16_t* dst, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm256_cvtps_ph(_mm256_loadu_ps(src + i),
                        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }
  for (; i < n; ++i) {
    dst[i] = _cvtss_sh(src[i], _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
}

void Fp16ToFp32(const uint16_t* src, float* dst, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_cvtph_ps(_mm_loadu_si128(
                         reinterpret_cast<const __m128i*>(src + i))));
  }
  for (; i < n; ++i) dst[i] = _cvtsh_ss(src[i]);
}

constexpr KernelDispatch kAvx2Table = {
    "avx2",
    GemmAccum,
    GemmTransBAccum,
    GemmTransAAccum,
    AddBias,
    AddBiasTanh,
    AddBiasRelu,
    Q8GemmDotAccum,
    Fp16GemmTransBAccum,
    Fp32ToFp16,
    Fp16ToFp32,
};

}  // namespace

const KernelDispatch* Table() {
  static const KernelDispatch* table = [] {
    const bool ok = __builtin_cpu_supports("avx2") &&
                    __builtin_cpu_supports("fma") &&
                    __builtin_cpu_supports("f16c");
    return ok ? &kAvx2Table : nullptr;
  }();
  return table;
}

}  // namespace alicoco::nn::kernels::avx2

#else  // !x86

namespace alicoco::nn::kernels::avx2 {

const KernelDispatch* Table() { return nullptr; }

}  // namespace alicoco::nn::kernels::avx2

#endif
