#include "nn/graph.h"

namespace alicoco::nn {

Parameter* ParameterStore::Create(const std::string& name, int rows, int cols,
                                  Init init, Rng* rng, float gaussian_stddev) {
  ALICOCO_CHECK(Get(name) == nullptr) << "duplicate parameter " << name;
  auto p = std::make_unique<Parameter>();
  p->name = name;
  switch (init) {
    case Init::kZero:
      p->value = Tensor(rows, cols);
      break;
    case Init::kXavier:
      ALICOCO_CHECK(rng != nullptr);
      p->value = Tensor::Xavier(rows, cols, rng);
      break;
    case Init::kGaussian:
      ALICOCO_CHECK(rng != nullptr);
      p->value = Tensor::Randn(rows, cols, gaussian_stddev, rng);
      break;
  }
  p->grad = Tensor(rows, cols);
  Parameter* raw = p.get();
  params_.push_back(std::move(p));
  return raw;
}

Parameter* ParameterStore::Get(const std::string& name) const {
  for (const auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

void ParameterStore::ZeroGrad() {
  for (auto& p : params_) p->grad.Zero();
}

size_t ParameterStore::TotalWeights() const {
  size_t total = 0;
  for (const auto& p : params_) total += p->value.size();
  return total;
}

Graph::Var Graph::NewNode(Tensor value, std::function<void()> backward) {
  auto node = std::make_unique<Node>();
  // Gradient buffers are materialized by Backward(); forward-only graphs
  // (prediction / scoring) never pay for them.
  node->value = std::move(value);
  node->backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return static_cast<Var>(nodes_.size() - 1);
}

Graph::Var Graph::Input(Tensor value) { return NewNode(std::move(value)); }

Graph::Var Graph::Use(Parameter* p) {
  ALICOCO_CHECK(p != nullptr);
  Var v = NewNode(p->value);
  nodes_[v]->backward = [this, v, p] {
    ParamGrad(p)->AddInPlace(nodes_[v]->grad);
  };
  return v;
}

Graph::Var Graph::Custom(
    Tensor value, std::function<void(const Tensor& out_grad)> backward) {
  Var v = NewNode(std::move(value));
  nodes_[v]->backward = [this, v, backward = std::move(backward)] {
    backward(nodes_[v]->grad);
  };
  return v;
}

void Graph::AccumulateGrad(Var v, const Tensor& g) {
  nodes_[v]->grad.AddInPlace(g);
}

void Graph::Backward(Var loss) {
  ALICOCO_CHECK(loss >= 0 && static_cast<size_t>(loss) < nodes_.size());
  const Tensor& lv = nodes_[loss]->value;
  ALICOCO_CHECK(lv.rows() == 1 && lv.cols() == 1)
      << "Backward requires a scalar loss";
  for (Var v = loss; v >= 0; --v) {
    Node* node = nodes_[v].get();
    if (node->grad.empty()) {
      node->grad = Tensor(node->value.rows(), node->value.cols());
    }
  }
  nodes_[loss]->grad.At(0, 0) = 1.0f;
  for (Var v = loss; v >= 0; --v) {
    if (nodes_[v]->backward) nodes_[v]->backward();
  }
}

}  // namespace alicoco::nn
