#include "nn/crf.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace alicoco::nn {
namespace {
constexpr double kNegInf = -1e30;

double LogSumExp(const std::vector<double>& v) {
  double mx = kNegInf;
  for (double x : v) mx = std::max(mx, x);
  if (mx <= kNegInf / 2) return kNegInf;
  double acc = 0.0;
  for (double x : v) acc += std::exp(x - mx);
  return mx + std::log(acc);
}
}  // namespace

LinearChainCrf::LinearChainCrf(ParameterStore* store, const std::string& name,
                               int num_labels, Rng* rng)
    : num_labels_(num_labels) {
  trans_ = store->Create(name + ".trans", num_labels, num_labels,
                         ParameterStore::Init::kGaussian, rng, 0.05f);
  start_ = store->Create(name + ".start", 1, num_labels,
                         ParameterStore::Init::kGaussian, rng, 0.05f);
  end_ = store->Create(name + ".end", 1, num_labels,
                       ParameterStore::Init::kGaussian, rng, 0.05f);
}

LinearChainCrf::Lattice LinearChainCrf::ForwardBackward(
    const Tensor& emissions,
    const std::vector<std::vector<int>>* allowed) const {
  // Scaled-domain forward-backward: exp(trans) is materialized once and the
  // per-step recurrences become matrix-vector products over it, so the
  // transcendental count drops from O(T*L^2) to O(T*L + L^2). Each step
  // keeps a log-domain shift (the running max) for numerical stability —
  // terms far below the shift underflow to zero exactly as the log-domain
  // LogSumExp ignored them.
  int t_len = emissions.rows();
  int l = num_labels_;
  ALICOCO_CHECK(t_len > 0 && emissions.cols() == l);
  const size_t ls = static_cast<size_t>(l);

  auto is_allowed = [&](int t, int j) {
    if (allowed == nullptr) return true;
    const auto& set = (*allowed)[static_cast<size_t>(t)];
    return std::find(set.begin(), set.end(), j) != set.end();
  };
  auto emit = [&](int t, int j) -> double {
    return is_allowed(t, j) ? static_cast<double>(emissions.At(t, j))
                            : kNegInf;
  };

  // exp_trans[i][j] = exp(trans[i][j]); row-major.
  std::vector<double> exp_trans(ls * ls);
  for (int i = 0; i < l; ++i) {
    for (int j = 0; j < l; ++j) {
      exp_trans[static_cast<size_t>(i) * ls + static_cast<size_t>(j)] =
          std::exp(static_cast<double>(trans_->value.At(i, j)));
    }
  }

  // alpha[t][j] (log domain), plus the scaled row u[t][j] =
  // exp(alpha[t][j] - shift_a[t]) reused by the recurrence and the
  // marginals.
  std::vector<std::vector<double>> alpha(
      static_cast<size_t>(t_len), std::vector<double>(ls, kNegInf));
  std::vector<std::vector<double>> beta = alpha;
  std::vector<std::vector<double>> ua = alpha;  // scaled alpha rows
  std::vector<std::vector<double>> ub = alpha;  // scaled beta+emit rows
  std::vector<double> shift_a(static_cast<size_t>(t_len), kNegInf);
  std::vector<double> shift_b(static_cast<size_t>(t_len), kNegInf);

  auto scale_row = [l](const std::vector<double>& logs, double* shift,
                       std::vector<double>* out) {
    double mx = kNegInf;
    for (int j = 0; j < l; ++j) mx = std::max(mx, logs[static_cast<size_t>(j)]);
    *shift = mx;
    if (mx <= kNegInf / 2) {
      std::fill(out->begin(), out->end(), 0.0);
      return;
    }
    for (int j = 0; j < l; ++j) {
      double x = logs[static_cast<size_t>(j)];
      (*out)[static_cast<size_t>(j)] = x <= kNegInf / 2 ? 0.0
                                                        : std::exp(x - mx);
    }
  };

  for (int j = 0; j < l; ++j) {
    alpha[0][static_cast<size_t>(j)] =
        static_cast<double>(start_->value.At(0, j)) + emit(0, j);
  }
  scale_row(alpha[0], &shift_a[0], &ua[0]);
  std::vector<double> scratch(ls);
  for (int t = 1; t < t_len; ++t) {
    const std::vector<double>& u = ua[static_cast<size_t>(t - 1)];
    const double shift = shift_a[static_cast<size_t>(t - 1)];
    // scratch[j] = sum_i u[i] * exp_trans[i][j]  (vector * matrix).
    std::fill(scratch.begin(), scratch.end(), 0.0);
    for (int i = 0; i < l; ++i) {
      const double ui = u[static_cast<size_t>(i)];
      if (ui == 0.0) continue;
      const double* __restrict er = exp_trans.data() +
                                    static_cast<size_t>(i) * ls;
      double* __restrict sr = scratch.data();
      for (int j = 0; j < l; ++j) sr[j] += ui * er[j];
    }
    for (int j = 0; j < l; ++j) {
      double ej = emit(t, j);
      double s = scratch[static_cast<size_t>(j)];
      alpha[static_cast<size_t>(t)][static_cast<size_t>(j)] =
          (ej <= kNegInf / 2 || s <= 0.0 || shift <= kNegInf / 2)
              ? kNegInf
              : shift + std::log(s) + ej;
    }
    scale_row(alpha[static_cast<size_t>(t)], &shift_a[static_cast<size_t>(t)],
              &ua[static_cast<size_t>(t)]);
  }
  for (int j = 0; j < l; ++j) {
    scratch[static_cast<size_t>(j)] =
        alpha[static_cast<size_t>(t_len - 1)][static_cast<size_t>(j)] +
        static_cast<double>(end_->value.At(0, j));
  }
  double log_z = LogSumExp(scratch);
  ALICOCO_CHECK(log_z > kNegInf / 2) << "CRF lattice has no allowed path";

  // Backward pass; ub[t][j] = exp(emit(t, j) + beta[t][j] - shift_b[t]).
  std::vector<double> logs(ls);
  for (int j = 0; j < l; ++j) {
    beta[static_cast<size_t>(t_len - 1)][static_cast<size_t>(j)] =
        static_cast<double>(end_->value.At(0, j));
    logs[static_cast<size_t>(j)] =
        beta[static_cast<size_t>(t_len - 1)][static_cast<size_t>(j)] +
        emit(t_len - 1, j);
  }
  scale_row(logs, &shift_b[static_cast<size_t>(t_len - 1)],
            &ub[static_cast<size_t>(t_len - 1)]);
  for (int t = t_len - 2; t >= 0; --t) {
    const std::vector<double>& w = ub[static_cast<size_t>(t + 1)];
    const double shift = shift_b[static_cast<size_t>(t + 1)];
    for (int i = 0; i < l; ++i) {
      const double* __restrict er = exp_trans.data() +
                                    static_cast<size_t>(i) * ls;
      const double* __restrict wr = w.data();
      double acc = 0.0;
      for (int j = 0; j < l; ++j) acc += er[j] * wr[j];
      beta[static_cast<size_t>(t)][static_cast<size_t>(i)] =
          (acc <= 0.0 || shift <= kNegInf / 2) ? kNegInf
                                               : shift + std::log(acc);
    }
    for (int j = 0; j < l; ++j) {
      logs[static_cast<size_t>(j)] =
          beta[static_cast<size_t>(t)][static_cast<size_t>(j)] + emit(t, j);
    }
    scale_row(logs, &shift_b[static_cast<size_t>(t)],
              &ub[static_cast<size_t>(t)]);
  }

  Lattice lat;
  lat.log_z = log_z;
  lat.unary = Tensor(t_len, l);
  lat.pair = Tensor(l, l);
  for (int t = 0; t < t_len; ++t) {
    for (int j = 0; j < l; ++j) {
      double lp = alpha[static_cast<size_t>(t)][static_cast<size_t>(j)] +
                  beta[static_cast<size_t>(t)][static_cast<size_t>(j)] - log_z;
      lat.unary.At(t, j) = lp <= kNegInf / 2
                               ? 0.0f
                               : static_cast<float>(std::exp(lp));
    }
  }
  // pair[i][j] += exp(alpha[t-1][i] + trans[i][j] + emit(t,j) + beta[t][j]
  //                   - log_z)
  //            = ua[t-1][i] * exp_trans[i][j] * ub[t][j] * scale_t:
  // a rank-1-weighted Hadamard accumulation, no transcendentals.
  for (int t = 1; t < t_len; ++t) {
    const double sa = shift_a[static_cast<size_t>(t - 1)];
    const double sb = shift_b[static_cast<size_t>(t)];
    if (sa <= kNegInf / 2 || sb <= kNegInf / 2) continue;
    const double scale_t = std::exp(sa + sb - log_z);
    const std::vector<double>& u = ua[static_cast<size_t>(t - 1)];
    const std::vector<double>& w = ub[static_cast<size_t>(t)];
    for (int i = 0; i < l; ++i) {
      const double uf = u[static_cast<size_t>(i)] * scale_t;
      if (uf == 0.0) continue;
      const double* __restrict er = exp_trans.data() +
                                    static_cast<size_t>(i) * ls;
      const double* __restrict wr = w.data();
      float* __restrict pr = lat.pair.Row(i);
      for (int j = 0; j < l; ++j) {
        pr[j] += static_cast<float>(uf * er[j] * wr[j]);
      }
    }
  }
  return lat;
}

Graph::Var LinearChainCrf::LatticeLoss(
    Graph* g, Graph::Var emissions,
    const std::vector<std::vector<int>>& numerator_sets) {
  const Tensor& e = g->Value(emissions);
  int t_len = e.rows();
  ALICOCO_CHECK(static_cast<int>(numerator_sets.size()) == t_len)
      << "numerator set size mismatch";
  Lattice full = ForwardBackward(e, nullptr);
  Lattice restricted = ForwardBackward(e, &numerator_sets);

  Tensor loss(1, 1);
  loss.At(0, 0) = static_cast<float>(full.log_z - restricted.log_z);

  // d loss / d emissions = unary_full - unary_restricted (x upstream grad);
  // same pattern for transitions, start, end.
  Tensor d_emit = full.unary;
  d_emit.Axpy(-1.0f, restricted.unary);
  Tensor d_trans = full.pair;
  d_trans.Axpy(-1.0f, restricted.pair);
  Tensor d_start(1, num_labels_);
  Tensor d_end(1, num_labels_);
  for (int j = 0; j < num_labels_; ++j) {
    d_start.At(0, j) = full.unary.At(0, j) - restricted.unary.At(0, j);
    d_end.At(0, j) =
        full.unary.At(t_len - 1, j) - restricted.unary.At(t_len - 1, j);
  }

  Parameter* trans = trans_;
  Parameter* start = start_;
  Parameter* end = end_;
  return g->Custom(
      std::move(loss),
      [g, emissions, trans, start, end, d_emit = std::move(d_emit),
       d_trans = std::move(d_trans), d_start = std::move(d_start),
       d_end = std::move(d_end)](const Tensor& out_grad) {
        float go = out_grad.At(0, 0);
        if (go == 0.0f) return;
        Tensor scaled = d_emit;
        scaled.Scale(go);
        g->AccumulateGrad(emissions, scaled);
        g->ParamGrad(trans)->Axpy(go, d_trans);
        g->ParamGrad(start)->Axpy(go, d_start);
        g->ParamGrad(end)->Axpy(go, d_end);
      });
}

Graph::Var LinearChainCrf::NegLogLikelihood(Graph* g, Graph::Var emissions,
                                            const std::vector<int>& gold) {
  std::vector<std::vector<int>> sets;
  sets.reserve(gold.size());
  for (int y : gold) {
    ALICOCO_CHECK(y >= 0 && y < num_labels_) << "gold label out of range";
    sets.push_back({y});
  }
  return LatticeLoss(g, emissions, sets);
}

Graph::Var LinearChainCrf::FuzzyNegLogLikelihood(
    Graph* g, Graph::Var emissions,
    const std::vector<std::vector<int>>& allowed) {
  for (const auto& set : allowed) {
    ALICOCO_CHECK(!set.empty()) << "fuzzy CRF requires non-empty label sets";
  }
  return LatticeLoss(g, emissions, allowed);
}

std::vector<int> LinearChainCrf::Viterbi(const Tensor& emissions) const {
  int t_len = emissions.rows();
  int l = num_labels_;
  ALICOCO_CHECK(t_len > 0 && emissions.cols() == l);
  std::vector<std::vector<double>> delta(
      static_cast<size_t>(t_len), std::vector<double>(static_cast<size_t>(l)));
  std::vector<std::vector<int>> back(
      static_cast<size_t>(t_len), std::vector<int>(static_cast<size_t>(l), 0));
  for (int j = 0; j < l; ++j) {
    delta[0][static_cast<size_t>(j)] =
        static_cast<double>(start_->value.At(0, j)) +
        static_cast<double>(emissions.At(0, j));
  }
  for (int t = 1; t < t_len; ++t) {
    for (int j = 0; j < l; ++j) {
      double best = kNegInf;
      int arg = 0;
      for (int i = 0; i < l; ++i) {
        double s = delta[static_cast<size_t>(t - 1)][static_cast<size_t>(i)] +
                   static_cast<double>(trans_->value.At(i, j));
        if (s > best) {
          best = s;
          arg = i;
        }
      }
      delta[static_cast<size_t>(t)][static_cast<size_t>(j)] =
          best + static_cast<double>(emissions.At(t, j));
      back[static_cast<size_t>(t)][static_cast<size_t>(j)] = arg;
    }
  }
  double best = kNegInf;
  int arg = 0;
  for (int j = 0; j < l; ++j) {
    double s = delta[static_cast<size_t>(t_len - 1)][static_cast<size_t>(j)] +
               static_cast<double>(end_->value.At(0, j));
    if (s > best) {
      best = s;
      arg = j;
    }
  }
  std::vector<int> path(static_cast<size_t>(t_len));
  path[static_cast<size_t>(t_len - 1)] = arg;
  for (int t = t_len - 1; t > 0; --t) {
    arg = back[static_cast<size_t>(t)][static_cast<size_t>(arg)];
    path[static_cast<size_t>(t - 1)] = arg;
  }
  return path;
}

}  // namespace alicoco::nn
