#include "nn/crf.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace alicoco::nn {
namespace {
constexpr double kNegInf = -1e30;

double LogSumExp(const std::vector<double>& v) {
  double mx = kNegInf;
  for (double x : v) mx = std::max(mx, x);
  if (mx <= kNegInf / 2) return kNegInf;
  double acc = 0.0;
  for (double x : v) acc += std::exp(x - mx);
  return mx + std::log(acc);
}
}  // namespace

LinearChainCrf::LinearChainCrf(ParameterStore* store, const std::string& name,
                               int num_labels, Rng* rng)
    : num_labels_(num_labels) {
  trans_ = store->Create(name + ".trans", num_labels, num_labels,
                         ParameterStore::Init::kGaussian, rng, 0.05f);
  start_ = store->Create(name + ".start", 1, num_labels,
                         ParameterStore::Init::kGaussian, rng, 0.05f);
  end_ = store->Create(name + ".end", 1, num_labels,
                       ParameterStore::Init::kGaussian, rng, 0.05f);
}

LinearChainCrf::Lattice LinearChainCrf::ForwardBackward(
    const Tensor& emissions,
    const std::vector<std::vector<int>>* allowed) const {
  int t_len = emissions.rows();
  int l = num_labels_;
  ALICOCO_CHECK(t_len > 0 && emissions.cols() == l);

  auto is_allowed = [&](int t, int j) {
    if (allowed == nullptr) return true;
    const auto& set = (*allowed)[static_cast<size_t>(t)];
    return std::find(set.begin(), set.end(), j) != set.end();
  };
  auto emit = [&](int t, int j) -> double {
    return is_allowed(t, j) ? static_cast<double>(emissions.At(t, j))
                            : kNegInf;
  };

  std::vector<std::vector<double>> alpha(
      static_cast<size_t>(t_len), std::vector<double>(static_cast<size_t>(l)));
  std::vector<std::vector<double>> beta = alpha;

  for (int j = 0; j < l; ++j) {
    alpha[0][static_cast<size_t>(j)] =
        static_cast<double>(start_->value.At(0, j)) + emit(0, j);
  }
  std::vector<double> scratch(static_cast<size_t>(l));
  for (int t = 1; t < t_len; ++t) {
    for (int j = 0; j < l; ++j) {
      double ej = emit(t, j);
      if (ej <= kNegInf / 2) {
        alpha[static_cast<size_t>(t)][static_cast<size_t>(j)] = kNegInf;
        continue;
      }
      for (int i = 0; i < l; ++i) {
        scratch[static_cast<size_t>(i)] =
            alpha[static_cast<size_t>(t - 1)][static_cast<size_t>(i)] +
            static_cast<double>(trans_->value.At(i, j));
      }
      alpha[static_cast<size_t>(t)][static_cast<size_t>(j)] =
          LogSumExp(scratch) + ej;
    }
  }
  for (int j = 0; j < l; ++j) {
    scratch[static_cast<size_t>(j)] =
        alpha[static_cast<size_t>(t_len - 1)][static_cast<size_t>(j)] +
        static_cast<double>(end_->value.At(0, j));
  }
  double log_z = LogSumExp(scratch);
  ALICOCO_CHECK(log_z > kNegInf / 2) << "CRF lattice has no allowed path";

  for (int j = 0; j < l; ++j) {
    beta[static_cast<size_t>(t_len - 1)][static_cast<size_t>(j)] =
        static_cast<double>(end_->value.At(0, j));
  }
  for (int t = t_len - 2; t >= 0; --t) {
    for (int i = 0; i < l; ++i) {
      for (int j = 0; j < l; ++j) {
        scratch[static_cast<size_t>(j)] =
            static_cast<double>(trans_->value.At(i, j)) + emit(t + 1, j) +
            beta[static_cast<size_t>(t + 1)][static_cast<size_t>(j)];
      }
      beta[static_cast<size_t>(t)][static_cast<size_t>(i)] =
          LogSumExp(scratch);
    }
  }

  Lattice lat;
  lat.log_z = log_z;
  lat.unary = Tensor(t_len, l);
  lat.pair = Tensor(l, l);
  for (int t = 0; t < t_len; ++t) {
    for (int j = 0; j < l; ++j) {
      double lp = alpha[static_cast<size_t>(t)][static_cast<size_t>(j)] +
                  beta[static_cast<size_t>(t)][static_cast<size_t>(j)] - log_z;
      lat.unary.At(t, j) = lp <= kNegInf / 2
                               ? 0.0f
                               : static_cast<float>(std::exp(lp));
    }
  }
  for (int t = 1; t < t_len; ++t) {
    for (int i = 0; i < l; ++i) {
      double ai = alpha[static_cast<size_t>(t - 1)][static_cast<size_t>(i)];
      if (ai <= kNegInf / 2) continue;
      for (int j = 0; j < l; ++j) {
        double ej = emit(t, j);
        if (ej <= kNegInf / 2) continue;
        double lp = ai + static_cast<double>(trans_->value.At(i, j)) + ej +
                    beta[static_cast<size_t>(t)][static_cast<size_t>(j)] -
                    log_z;
        if (lp > kNegInf / 2) {
          lat.pair.At(i, j) += static_cast<float>(std::exp(lp));
        }
      }
    }
  }
  return lat;
}

Graph::Var LinearChainCrf::LatticeLoss(
    Graph* g, Graph::Var emissions,
    const std::vector<std::vector<int>>& numerator_sets) {
  const Tensor& e = g->Value(emissions);
  int t_len = e.rows();
  ALICOCO_CHECK(static_cast<int>(numerator_sets.size()) == t_len)
      << "numerator set size mismatch";
  Lattice full = ForwardBackward(e, nullptr);
  Lattice restricted = ForwardBackward(e, &numerator_sets);

  Tensor loss(1, 1);
  loss.At(0, 0) = static_cast<float>(full.log_z - restricted.log_z);

  // d loss / d emissions = unary_full - unary_restricted (x upstream grad);
  // same pattern for transitions, start, end.
  Tensor d_emit = full.unary;
  d_emit.Axpy(-1.0f, restricted.unary);
  Tensor d_trans = full.pair;
  d_trans.Axpy(-1.0f, restricted.pair);
  Tensor d_start(1, num_labels_);
  Tensor d_end(1, num_labels_);
  for (int j = 0; j < num_labels_; ++j) {
    d_start.At(0, j) = full.unary.At(0, j) - restricted.unary.At(0, j);
    d_end.At(0, j) =
        full.unary.At(t_len - 1, j) - restricted.unary.At(t_len - 1, j);
  }

  Parameter* trans = trans_;
  Parameter* start = start_;
  Parameter* end = end_;
  return g->Custom(
      std::move(loss),
      [g, emissions, trans, start, end, d_emit = std::move(d_emit),
       d_trans = std::move(d_trans), d_start = std::move(d_start),
       d_end = std::move(d_end)](const Tensor& out_grad) {
        float go = out_grad.At(0, 0);
        if (go == 0.0f) return;
        Tensor scaled = d_emit;
        scaled.Scale(go);
        g->AccumulateGrad(emissions, scaled);
        trans->grad.Axpy(go, d_trans);
        start->grad.Axpy(go, d_start);
        end->grad.Axpy(go, d_end);
      });
}

Graph::Var LinearChainCrf::NegLogLikelihood(Graph* g, Graph::Var emissions,
                                            const std::vector<int>& gold) {
  std::vector<std::vector<int>> sets;
  sets.reserve(gold.size());
  for (int y : gold) {
    ALICOCO_CHECK(y >= 0 && y < num_labels_) << "gold label out of range";
    sets.push_back({y});
  }
  return LatticeLoss(g, emissions, sets);
}

Graph::Var LinearChainCrf::FuzzyNegLogLikelihood(
    Graph* g, Graph::Var emissions,
    const std::vector<std::vector<int>>& allowed) {
  for (const auto& set : allowed) {
    ALICOCO_CHECK(!set.empty()) << "fuzzy CRF requires non-empty label sets";
  }
  return LatticeLoss(g, emissions, allowed);
}

std::vector<int> LinearChainCrf::Viterbi(const Tensor& emissions) const {
  int t_len = emissions.rows();
  int l = num_labels_;
  ALICOCO_CHECK(t_len > 0 && emissions.cols() == l);
  std::vector<std::vector<double>> delta(
      static_cast<size_t>(t_len), std::vector<double>(static_cast<size_t>(l)));
  std::vector<std::vector<int>> back(
      static_cast<size_t>(t_len), std::vector<int>(static_cast<size_t>(l), 0));
  for (int j = 0; j < l; ++j) {
    delta[0][static_cast<size_t>(j)] =
        static_cast<double>(start_->value.At(0, j)) +
        static_cast<double>(emissions.At(0, j));
  }
  for (int t = 1; t < t_len; ++t) {
    for (int j = 0; j < l; ++j) {
      double best = kNegInf;
      int arg = 0;
      for (int i = 0; i < l; ++i) {
        double s = delta[static_cast<size_t>(t - 1)][static_cast<size_t>(i)] +
                   static_cast<double>(trans_->value.At(i, j));
        if (s > best) {
          best = s;
          arg = i;
        }
      }
      delta[static_cast<size_t>(t)][static_cast<size_t>(j)] =
          best + static_cast<double>(emissions.At(t, j));
      back[static_cast<size_t>(t)][static_cast<size_t>(j)] = arg;
    }
  }
  double best = kNegInf;
  int arg = 0;
  for (int j = 0; j < l; ++j) {
    double s = delta[static_cast<size_t>(t_len - 1)][static_cast<size_t>(j)] +
               static_cast<double>(end_->value.At(0, j));
    if (s > best) {
      best = s;
      arg = j;
    }
  }
  std::vector<int> path(static_cast<size_t>(t_len));
  path[static_cast<size_t>(t_len - 1)] = arg;
  for (int t = t_len - 1; t > 0; --t) {
    arg = back[static_cast<size_t>(t)][static_cast<size_t>(arg)];
    path[static_cast<size_t>(t - 1)] = arg;
  }
  return path;
}

}  // namespace alicoco::nn
