// Dense row-major float matrix — the value type of the autodiff graph.
//
// All models in this repo operate on small 2-D tensors (sequence length x
// feature dim, batch handled as an outer loop), so a matrix type suffices.

#ifndef ALICOCO_NN_TENSOR_H_
#define ALICOCO_NN_TENSOR_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace alicoco::nn {

/// 2-D float matrix, row-major, zero-initialized.
class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f) {
    ALICOCO_CHECK(rows >= 0 && cols >= 0);
  }

  /// Wraps an existing buffer; `data.size()` must equal rows*cols.
  static Tensor FromVector(int rows, int cols, std::vector<float> data);

  /// rows x cols of N(0, stddev) noise.
  static Tensor Randn(int rows, int cols, float stddev, Rng* rng);

  /// Xavier/Glorot uniform init for a fan_in x fan_out weight.
  static Tensor Xavier(int rows, int cols, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(int r, int c) {
    ALICOCO_DCHECK(InBounds(r, c)) << "At(" << r << ", " << c << ") on "
                                   << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    ALICOCO_DCHECK(InBounds(r, c)) << "At(" << r << ", " << c << ") on "
                                   << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float* Row(int r) {
    ALICOCO_DCHECK(r >= 0 && r < rows_) << "Row(" << r << ") of " << rows_;
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  const float* Row(int r) const {
    ALICOCO_DCHECK(r >= 0 && r < rows_) << "Row(" << r << ") of " << rows_;
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  bool SameShape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  /// this += other (shapes must match).
  void AddInPlace(const Tensor& other);

  /// this += scale * other.
  void Axpy(float scale, const Tensor& other);

  /// Scales all entries.
  void Scale(float s);

  /// Frobenius-norm squared.
  double SquaredNorm() const;

 private:
  bool InBounds(int r, int c) const {
    return r >= 0 && r < rows_ && c >= 0 && c < cols_;
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B (shapes validated).
Tensor MatMulValue(const Tensor& a, const Tensor& b);

/// C += A * B.
void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* c);

/// C += A * B^T.
void MatMulTransBAccum(const Tensor& a, const Tensor& b, Tensor* c);

/// C += A^T * B.
void MatMulTransAAccum(const Tensor& a, const Tensor& b, Tensor* c);

}  // namespace alicoco::nn

#endif  // ALICOCO_NN_TENSOR_H_
