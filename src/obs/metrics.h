// First-party metrics primitives: monotonic counters, gauges, and
// log-bucketed latency histograms, collected in a thread-safe Registry.
//
// The paper's production system "monitors dynamic-edge quality regularly"
// (AliCoCo Section 6); this layer is the repo's equivalent: every pipeline
// stage, serving path, and worker pool reports through one registry that
// the exporters (obs/exporters.h) turn into Prometheus text or the
// BENCH_pipeline.json profile. Instruments returned by a Registry are
// owned by it and remain valid for its lifetime, so hot paths hold the
// pointer and never re-resolve the name.
//
//   obs::Registry registry;
//   obs::Counter* mined = registry.GetCounter("pipeline.mining.accepted");
//   mined->Increment();
//   obs::Histogram* lat = registry.GetHistogram("serving.score_latency_us");
//   lat->Observe(ElapsedUs(...));
//   double p99 = lat->Quantile(0.99);

#ifndef ALICOCO_OBS_METRICS_H_
#define ALICOCO_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace alicoco::obs {

/// Monotonically increasing count (events, accepted concepts, edges).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() ALICOCO_EXCLUDES(mu_) { Add(1); }
  void Add(uint64_t delta) ALICOCO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    value_ += delta;
  }
  uint64_t value() const ALICOCO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  uint64_t value_ ALICOCO_GUARDED_BY(mu_) = 0;
};

/// Point-in-time level (queue depth, threshold, resident items).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) ALICOCO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    value_ = value;
    if (value > max_) max_ = value;
  }
  void Add(double delta) ALICOCO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    value_ += delta;
    if (value_ > max_) max_ = value_;
  }
  double value() const ALICOCO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }
  /// High-water mark across the gauge's lifetime (peak queue depth).
  double max() const ALICOCO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return max_;
  }

 private:
  mutable Mutex mu_;
  double value_ ALICOCO_GUARDED_BY(mu_) = 0;
  double max_ ALICOCO_GUARDED_BY(mu_) = 0;
};

/// Log-bucketed distribution, sized for latencies in microseconds but unit
/// agnostic. Bucket 0 holds [0, 1); bucket i >= 1 holds [2^(i-1), 2^i), so
/// 64 buckets cover anything a uint64 of microseconds can express.
/// Quantiles interpolate linearly inside the selected bucket and clamp to
/// the observed min/max, which keeps p50/p95/p99 within one power of two
/// of exact for arbitrary distributions and much closer for smooth ones.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value) ALICOCO_EXCLUDES(mu_);

  uint64_t count() const ALICOCO_EXCLUDES(mu_);
  double sum() const ALICOCO_EXCLUDES(mu_);
  /// 0 when empty.
  double min() const ALICOCO_EXCLUDES(mu_);
  double max() const ALICOCO_EXCLUDES(mu_);
  double mean() const ALICOCO_EXCLUDES(mu_);

  /// q in [0, 1] (clamped). Edge cases are explicit sentinels: an empty
  /// histogram returns NaN (there is no distribution to query — never a
  /// fake 0), a single-sample histogram returns that exact sample for
  /// every q (no bucket interpolation), and a NaN q returns NaN.
  double Quantile(double q) const ALICOCO_EXCLUDES(mu_);

  /// Consistent point-in-time copy for exporters.
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
  };
  Snapshot snapshot() const ALICOCO_EXCLUDES(mu_);

  /// Index of the bucket holding `value` (clamped to the valid range).
  static size_t BucketIndex(double value);
  /// Inclusive-exclusive upper bound of bucket `index` (2^index).
  static double BucketUpperBound(size_t index);

 private:
  static double QuantileFromSnapshot(const Snapshot& snap, double q);

  mutable Mutex mu_;
  std::array<uint64_t, kNumBuckets> buckets_ ALICOCO_GUARDED_BY(mu_){};
  uint64_t count_ ALICOCO_GUARDED_BY(mu_) = 0;
  double sum_ ALICOCO_GUARDED_BY(mu_) = 0;
  double min_ ALICOCO_GUARDED_BY(mu_) = 0;
  double max_ ALICOCO_GUARDED_BY(mu_) = 0;
};

/// Named instrument store. Get* registers on first use and returns the
/// same instrument for the same name thereafter; a name holds exactly one
/// instrument kind (re-requesting it as another kind is a programming
/// error and CHECK-fails). Instruments live as long as the registry.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name) ALICOCO_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) ALICOCO_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) ALICOCO_EXCLUDES(mu_);

  /// Registered names in sorted order, for exporters.
  std::vector<std::string> CounterNames() const ALICOCO_EXCLUDES(mu_);
  std::vector<std::string> GaugeNames() const ALICOCO_EXCLUDES(mu_);
  std::vector<std::string> HistogramNames() const ALICOCO_EXCLUDES(mu_);

  /// Lookup without registration; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const
      ALICOCO_EXCLUDES(mu_);
  const Gauge* FindGauge(const std::string& name) const ALICOCO_EXCLUDES(mu_);
  const Histogram* FindHistogram(const std::string& name) const
      ALICOCO_EXCLUDES(mu_);

  /// Process-wide registry the serving paths default to.
  static Registry& Default();

 private:
  bool NameTaken(const std::string& name) const ALICOCO_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      ALICOCO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      ALICOCO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      ALICOCO_GUARDED_BY(mu_);
};

}  // namespace alicoco::obs

#endif  // ALICOCO_OBS_METRICS_H_
