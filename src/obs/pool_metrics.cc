#include "obs/pool_metrics.h"

#include "common/check.h"

namespace alicoco::obs {

ThreadPoolMetrics::ThreadPoolMetrics(Registry* registry,
                                     const std::string& prefix) {
  ALICOCO_CHECK(registry != nullptr);
  queue_depth_ = registry->GetGauge(prefix + ".queue_depth");
  queue_wait_us_ = registry->GetHistogram(prefix + ".queue_wait_us");
  task_run_us_ = registry->GetHistogram(prefix + ".task_run_us");
  tasks_completed_ = registry->GetCounter(prefix + ".tasks_completed");
}

void ThreadPoolMetrics::OnQueueDepth(size_t depth) {
  queue_depth_->Set(static_cast<double>(depth));
}

void ThreadPoolMetrics::OnTaskDone(double queue_wait_us, double run_us) {
  queue_wait_us_->Observe(queue_wait_us);
  task_run_us_->Observe(run_us);
  tasks_completed_->Increment();
}

}  // namespace alicoco::obs
