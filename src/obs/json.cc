#include "obs/json.h"

#include <cctype>
#include <string_view>

namespace alicoco::obs {
namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    ALICOCO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::Corruption("JSON parse error at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    // A profile document is a few levels deep; a crafted file of nothing
    // but '[' must hit a corruption error, not exhaust the stack.
    if (depth_ >= kMaxDepth) return Error("nesting too deep");
    char c = text_[pos_];
    if (c == '{' || c == '[') {
      ++depth_;
      Result<JsonValue> out = c == '{' ? ParseObject() : ParseArray();
      --depth_;
      return out;
    }
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f' || c == 'n') return ParseKeyword();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return out;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      ALICOCO_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Error("expected ':' after key");
      ALICOCO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.object.emplace_back(std::move(key.str), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return out;
    for (;;) {
      ALICOCO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.str.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.str.push_back(esc);
          break;
        case 'n':
          out.str.push_back('\n');
          break;
        case 't':
          out.str.push_back('\t');
          break;
        case 'r':
          out.str.push_back('\r');
          break;
        case 'b':
          out.str.push_back('\b');
          break;
        case 'f':
          out.str.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // Profile strings are ASCII; anything else degrades to '?'.
          out.str.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseKeyword() {
    auto match = [&](const char* word) {
      size_t len = std::string_view(word).size();
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    JsonValue out;
    if (match("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return out;
    }
    if (match("false")) {
      out.kind = JsonValue::Kind::kBool;
      return out;
    }
    if (match("null")) return out;
    return Error("unknown keyword");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return Error("expected a number");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    try {
      out.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      // stod throws on out-of-range exponents like 1e999999999; a corrupt
      // profile must parse-fail, not unwind through the caller.
      return Error("number out of range");
    }
    return out;
  }

  static constexpr int kMaxDepth = 64;

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

Result<double> JsonRequireNumber(const JsonValue& object,
                                 const std::string& key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return Status::Corruption("missing numeric field '" + key + "'");
  }
  return v->number;
}

Result<std::string> JsonRequireString(const JsonValue& object,
                                      const std::string& key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return Status::Corruption("missing string field '" + key + "'");
  }
  return v->str;
}

}  // namespace alicoco::obs
