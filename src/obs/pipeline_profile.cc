#include "obs/pipeline_profile.h"

#include <algorithm>
#include <cctype>
#include <memory>

#include "common/string_util.h"
#include "obs/exporters.h"

namespace alicoco::obs {
namespace {

constexpr char kSchemaId[] = "alicoco.bench_pipeline.v1";
constexpr char kStagePrefix[] = "pipeline.";
constexpr char kRootSpan[] = "pipeline.build";

std::string FormatDouble(double v) { return StringPrintf("%.6g", v); }

// ---- minimal JSON reader -------------------------------------------------
// Just enough of RFC 8259 for the profile schema: objects, arrays,
// strings, numbers, true/false/null. No unicode escapes beyond \uXXXX
// pass-through needs; profile strings are ASCII by construction.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    ALICOCO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::Corruption("JSON parse error at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f' || c == 'n') return ParseKeyword();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return out;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      ALICOCO_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Error("expected ':' after key");
      ALICOCO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.object.emplace_back(std::move(key.str), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return out;
    for (;;) {
      ALICOCO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.str.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.str.push_back(esc);
          break;
        case 'n':
          out.str.push_back('\n');
          break;
        case 't':
          out.str.push_back('\t');
          break;
        case 'r':
          out.str.push_back('\r');
          break;
        case 'b':
          out.str.push_back('\b');
          break;
        case 'f':
          out.str.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // Profile strings are ASCII; anything else degrades to '?'.
          out.str.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseKeyword() {
    auto match = [&](const char* word) {
      size_t len = std::string_view(word).size();
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    JsonValue out;
    if (match("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return out;
    }
    if (match("false")) {
      out.kind = JsonValue::Kind::kBool;
      return out;
    }
    if (match("null")) return out;
    return Error("unknown keyword");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return Error("expected a number");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<double> RequireNumber(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return Status::Corruption("missing numeric field '" + key + "'");
  }
  return v->number;
}

Result<std::string> RequireString(const JsonValue& object,
                                  const std::string& key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return Status::Corruption("missing string field '" + key + "'");
  }
  return v->str;
}

}  // namespace

const StageProfile* PipelineProfile::FindStage(const std::string& name) const {
  for (const StageProfile& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

std::string PipelineProfile::ToJson() const {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"" + std::string(kSchemaId) + "\",\n";
  out += "  \"world\": \"" + JsonEscape(world) + "\",\n";
  out += "  \"total_ms\": " + FormatDouble(total_ms) + ",\n";
  out += "  \"stages\": [\n";
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageProfile& stage = stages[i];
    out += "    {\"name\": \"" + JsonEscape(stage.name) + "\", \"wall_ms\": " +
           FormatDouble(stage.wall_ms) + ", \"counters\": {";
    size_t n = 0;
    for (const auto& [key, value] : stage.counters) {
      if (n++ != 0) out += ", ";
      out += "\"" + JsonEscape(key) + "\": " + FormatDouble(value);
    }
    out += "}}";
    if (i + 1 != stages.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

Result<PipelineProfile> PipelineProfile::FromJson(const std::string& text) {
  ALICOCO_ASSIGN_OR_RETURN(JsonValue root, JsonParser(text).Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::Corruption("profile root must be a JSON object");
  }
  ALICOCO_ASSIGN_OR_RETURN(std::string schema, RequireString(root, "schema"));
  if (schema != kSchemaId) {
    return Status::Corruption("unknown profile schema '" + schema + "'");
  }
  PipelineProfile profile;
  ALICOCO_ASSIGN_OR_RETURN(profile.world, RequireString(root, "world"));
  ALICOCO_ASSIGN_OR_RETURN(profile.total_ms,
                           RequireNumber(root, "total_ms"));
  const JsonValue* stages = root.Find("stages");
  if (stages == nullptr || stages->kind != JsonValue::Kind::kArray) {
    return Status::Corruption("missing 'stages' array");
  }
  for (const JsonValue& entry : stages->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return Status::Corruption("stage entries must be objects");
    }
    StageProfile stage;
    ALICOCO_ASSIGN_OR_RETURN(stage.name, RequireString(entry, "name"));
    ALICOCO_ASSIGN_OR_RETURN(stage.wall_ms, RequireNumber(entry, "wall_ms"));
    const JsonValue* counters = entry.Find("counters");
    if (counters != nullptr) {
      if (counters->kind != JsonValue::Kind::kObject) {
        return Status::Corruption("stage 'counters' must be an object");
      }
      for (const auto& [key, value] : counters->object) {
        if (value.kind != JsonValue::Kind::kNumber) {
          return Status::Corruption("counter '" + key + "' must be numeric");
        }
        stage.counters[key] = value.number;
      }
    }
    profile.stages.push_back(std::move(stage));
  }
  return profile;
}

PipelineProfile BuildPipelineProfile(const std::vector<SpanRecord>& spans,
                                     const Registry& registry) {
  std::vector<SpanRecord> ordered = spans;
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.id < b.id;
            });

  PipelineProfile profile;
  auto counters_for = [&](const std::string& stage) {
    std::map<std::string, double> out;
    std::string prefix = std::string(kStagePrefix) + stage + ".";
    for (const std::string& name : registry.CounterNames()) {
      if (!StartsWith(name, prefix)) continue;
      out[name.substr(prefix.size())] =
          static_cast<double>(registry.FindCounter(name)->value());
    }
    for (const std::string& name : registry.GaugeNames()) {
      if (!StartsWith(name, prefix)) continue;
      out[name.substr(prefix.size())] = registry.FindGauge(name)->value();
    }
    return out;
  };

  // Stages are the direct children of the root `pipeline.build` span;
  // deeper spans (e.g. `pipeline.mining.epoch`) are detail, not stages.
  uint64_t root_id = 0;
  bool has_root = false;
  for (const SpanRecord& span : ordered) {
    if (span.name == kRootSpan) {
      root_id = span.id;
      has_root = true;
      profile.total_ms = static_cast<double>(span.duration_us) / 1000.0;
      break;
    }
  }

  for (const SpanRecord& span : ordered) {
    if (!StartsWith(span.name, kStagePrefix)) continue;
    if (span.name == kRootSpan) continue;
    if (has_root ? span.parent_id != root_id : span.parent_id != 0) continue;
    std::string stage_name =
        span.name.substr(std::string_view(kStagePrefix).size());
    StageProfile stage;
    stage.name = stage_name;
    stage.wall_ms = static_cast<double>(span.duration_us) / 1000.0;
    stage.counters = counters_for(stage_name);
    profile.stages.push_back(std::move(stage));
  }
  if (profile.total_ms == 0) {
    for (const StageProfile& stage : profile.stages) {
      profile.total_ms += stage.wall_ms;
    }
  }
  return profile;
}

std::vector<std::string> CompareToBaseline(const PipelineProfile& baseline,
                                           const PipelineProfile& current,
                                           double max_ratio, double slack_ms) {
  std::vector<std::string> regressions;
  for (const StageProfile& base_stage : baseline.stages) {
    const StageProfile* cur = current.FindStage(base_stage.name);
    if (cur == nullptr) {
      regressions.push_back("stage '" + base_stage.name +
                            "' missing from the current profile");
      continue;
    }
    double limit = base_stage.wall_ms * max_ratio + slack_ms;
    if (cur->wall_ms > limit) {
      regressions.push_back(StringPrintf(
          "stage '%s' regressed: %.1fms > limit %.1fms (baseline %.1fms x "
          "%.2g + %.0fms slack)",
          base_stage.name.c_str(), cur->wall_ms, limit, base_stage.wall_ms,
          max_ratio, slack_ms));
    }
  }
  return regressions;
}

}  // namespace alicoco::obs
