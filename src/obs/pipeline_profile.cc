#include "obs/pipeline_profile.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/exporters.h"
#include "obs/json.h"

namespace alicoco::obs {
namespace {

constexpr char kSchemaId[] = "alicoco.bench_pipeline.v1";
constexpr char kStagePrefix[] = "pipeline.";
constexpr char kRootSpan[] = "pipeline.build";

std::string FormatDouble(double v) { return StringPrintf("%.6g", v); }

}  // namespace

const StageProfile* PipelineProfile::FindStage(const std::string& name) const {
  for (const StageProfile& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

std::string PipelineProfile::ToJson() const {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"" + std::string(kSchemaId) + "\",\n";
  out += "  \"world\": \"" + JsonEscape(world) + "\",\n";
  out += "  \"total_ms\": " + FormatDouble(total_ms) + ",\n";
  out += "  \"stages\": [\n";
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageProfile& stage = stages[i];
    out += "    {\"name\": \"" + JsonEscape(stage.name) + "\", \"wall_ms\": " +
           FormatDouble(stage.wall_ms) + ", \"counters\": {";
    size_t n = 0;
    for (const auto& [key, value] : stage.counters) {
      if (n++ != 0) out += ", ";
      out += "\"" + JsonEscape(key) + "\": " + FormatDouble(value);
    }
    out += "}}";
    if (i + 1 != stages.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

Result<PipelineProfile> PipelineProfile::FromJson(const std::string& text) {
  ALICOCO_ASSIGN_OR_RETURN(JsonValue root, ParseJson(text));
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::Corruption("profile root must be a JSON object");
  }
  ALICOCO_ASSIGN_OR_RETURN(std::string schema,
                           JsonRequireString(root, "schema"));
  if (schema != kSchemaId) {
    return Status::Corruption("unknown profile schema '" + schema + "'");
  }
  PipelineProfile profile;
  ALICOCO_ASSIGN_OR_RETURN(profile.world, JsonRequireString(root, "world"));
  ALICOCO_ASSIGN_OR_RETURN(profile.total_ms,
                           JsonRequireNumber(root, "total_ms"));
  const JsonValue* stages = root.Find("stages");
  if (stages == nullptr || stages->kind != JsonValue::Kind::kArray) {
    return Status::Corruption("missing 'stages' array");
  }
  // Plausibility caps: a real pipeline has a handful of stages and a few
  // counters each; a profile claiming thousands is corrupt input, not a
  // request to build an arbitrarily large report.
  constexpr size_t kMaxStages = 1024;
  constexpr size_t kMaxCountersPerStage = 4096;
  if (stages->array.size() > kMaxStages) {
    return Status::Corruption("implausible stage count in profile");
  }
  for (const JsonValue& entry : stages->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return Status::Corruption("stage entries must be objects");
    }
    StageProfile stage;
    ALICOCO_ASSIGN_OR_RETURN(stage.name, JsonRequireString(entry, "name"));
    ALICOCO_ASSIGN_OR_RETURN(stage.wall_ms,
                             JsonRequireNumber(entry, "wall_ms"));
    const JsonValue* counters = entry.Find("counters");
    if (counters != nullptr) {
      if (counters->kind != JsonValue::Kind::kObject) {
        return Status::Corruption("stage 'counters' must be an object");
      }
      if (counters->object.size() > kMaxCountersPerStage) {
        return Status::Corruption("implausible counter count in profile");
      }
      for (const auto& [key, value] : counters->object) {
        if (value.kind != JsonValue::Kind::kNumber) {
          return Status::Corruption("counter '" + key + "' must be numeric");
        }
        stage.counters[key] = value.number;
      }
    }
    profile.stages.push_back(std::move(stage));
  }
  return profile;
}

PipelineProfile BuildPipelineProfile(const std::vector<SpanRecord>& spans,
                                     const Registry& registry) {
  std::vector<SpanRecord> ordered = spans;
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.id < b.id;
            });

  PipelineProfile profile;
  auto counters_for = [&](const std::string& stage) {
    std::map<std::string, double> out;
    std::string prefix = std::string(kStagePrefix) + stage + ".";
    for (const std::string& name : registry.CounterNames()) {
      if (!StartsWith(name, prefix)) continue;
      out[name.substr(prefix.size())] =
          static_cast<double>(registry.FindCounter(name)->value());
    }
    for (const std::string& name : registry.GaugeNames()) {
      if (!StartsWith(name, prefix)) continue;
      out[name.substr(prefix.size())] = registry.FindGauge(name)->value();
    }
    return out;
  };

  // Stages are the direct children of the root `pipeline.build` span;
  // deeper spans (e.g. `pipeline.mining.epoch`) are detail, not stages.
  uint64_t root_id = 0;
  bool has_root = false;
  for (const SpanRecord& span : ordered) {
    if (span.name == kRootSpan) {
      root_id = span.id;
      has_root = true;
      profile.total_ms = static_cast<double>(span.duration_us) / 1000.0;
      break;
    }
  }

  for (const SpanRecord& span : ordered) {
    if (!StartsWith(span.name, kStagePrefix)) continue;
    if (span.name == kRootSpan) continue;
    if (has_root ? span.parent_id != root_id : span.parent_id != 0) continue;
    std::string stage_name =
        span.name.substr(std::string_view(kStagePrefix).size());
    StageProfile stage;
    stage.name = stage_name;
    stage.wall_ms = static_cast<double>(span.duration_us) / 1000.0;
    stage.counters = counters_for(stage_name);
    profile.stages.push_back(std::move(stage));
  }
  if (profile.total_ms == 0) {
    for (const StageProfile& stage : profile.stages) {
      profile.total_ms += stage.wall_ms;
    }
  }
  return profile;
}

std::vector<std::string> CompareToBaseline(const PipelineProfile& baseline,
                                           const PipelineProfile& current,
                                           double max_ratio, double slack_ms) {
  std::vector<std::string> regressions;
  for (const StageProfile& base_stage : baseline.stages) {
    const StageProfile* cur = current.FindStage(base_stage.name);
    if (cur == nullptr) {
      regressions.push_back("stage '" + base_stage.name +
                            "' missing from the current profile");
      continue;
    }
    double limit = base_stage.wall_ms * max_ratio + slack_ms;
    if (cur->wall_ms > limit) {
      regressions.push_back(StringPrintf(
          "stage '%s' regressed: %.1fms > limit %.1fms (baseline %.1fms x "
          "%.2g + %.0fms slack)",
          base_stage.name.c_str(), cur->wall_ms, limit, base_stage.wall_ms,
          max_ratio, slack_ms));
    }
  }
  return regressions;
}

}  // namespace alicoco::obs
