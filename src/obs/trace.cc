#include "obs/trace.h"

#include <chrono>

#include "common/string_util.h"

namespace alicoco::obs {
namespace {

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Innermost open span on this thread. Spans form a per-thread stack via
// their enclosing_ links; a new span walks it to the nearest open span of
// the SAME tracer for its parent, so two interleaved tracers (e.g. a bench
// harness timer wrapping an instrumented pipeline run) never leak ids into
// each other's traces, yet keep their own chains intact across the
// interleaving.
thread_local const ScopedSpan* tls_innermost_span = nullptr;

}  // namespace

Tracer::Tracer() : clock_(&SteadyNowUs) {}

Tracer::Tracer(Clock clock) : clock_(std::move(clock)) {}

std::vector<SpanRecord> Tracer::Records() const {
  MutexLock lock(mu_);
  return finished_;
}

std::vector<SpanRecord> Tracer::Drain() {
  MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  out.swap(finished_);
  return out;
}

size_t Tracer::size() const {
  MutexLock lock(mu_);
  return finished_.size();
}

uint64_t Tracer::NextId() {
  MutexLock lock(mu_);
  return next_id_++;
}

void Tracer::SetSpanListener(SpanListener listener) {
  listener_ = std::move(listener);
}

void Tracer::Record(SpanRecord record) {
  // The listener runs before the record is moved into the collection and
  // outside the lock: a slow listener must not extend the critical
  // section the contention accounting is watching.
  if (listener_) listener_(record);
  MutexLock lock(mu_);
  finished_.push_back(std::move(record));
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name) : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  record_.id = tracer_->NextId();
  for (const ScopedSpan* open = tls_innermost_span; open != nullptr;
       open = open->enclosing_) {
    if (open->tracer_ == tracer_) {
      record_.parent_id = open->record_.id;
      break;
    }
  }
  record_.name = std::move(name);
  record_.start_us = tracer_->NowUs();
  enclosing_ = tls_innermost_span;
  tls_innermost_span = this;
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  record_.duration_us = tracer_->NowUs() - record_.start_us;
  tls_innermost_span = enclosing_;
  tracer_->Record(std::move(record_));
}

void ScopedSpan::AddAttribute(const std::string& key,
                              const std::string& value) {
  if (tracer_ == nullptr) return;
  record_.attributes.emplace_back(key, value);
}

void ScopedSpan::AddAttribute(const std::string& key, uint64_t value) {
  AddAttribute(key, std::to_string(value));
}

void ScopedSpan::AddAttribute(const std::string& key, double value) {
  AddAttribute(key, StringPrintf("%.6g", value));
}

uint64_t ScopedSpan::ElapsedUs() const {
  if (tracer_ == nullptr) return 0;
  return tracer_->NowUs() - record_.start_us;
}

}  // namespace alicoco::obs
