// Minimal JSON reader shared by the profile schemas.
//
// Just enough of RFC 8259 for the BENCH_*.json formats: objects, arrays,
// strings, numbers, true/false/null. Key order is preserved, duplicate
// keys keep their first occurrence in Find, and unknown fields are the
// caller's business to ignore — which is what lets the schemas grow
// without breaking committed baselines. Writing stays with each schema
// (obs/pipeline_profile.h, obs/prof/bench_profile.h); only reading is
// shared here.

#ifndef ALICOCO_OBS_JSON_H_
#define ALICOCO_OBS_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace alicoco::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses `text` as one JSON document; Corruption status on any syntax
/// error, with the byte offset in the message.
[[nodiscard]] Result<JsonValue> ParseJson(const std::string& text);

/// Field accessors for schema readers: Corruption when the key is absent
/// or holds the wrong kind.
[[nodiscard]] Result<double> JsonRequireNumber(const JsonValue& object,
                                               const std::string& key);
[[nodiscard]] Result<std::string> JsonRequireString(const JsonValue& object,
                                                    const std::string& key);

}  // namespace alicoco::obs

#endif  // ALICOCO_OBS_JSON_H_
