// Always-on flight recorder: a bounded ring of recent events (spans, log
// lines, free-form markers) that can be dumped when the process dies.
//
// The black-box model: recording is cheap and constant-cost, the ring
// overwrites its oldest entries forever, and nothing is written anywhere
// until a CHECK failure or fatal signal asks "what just happened?" — at
// which point the last N events go to a JSONL file. The crash path must
// be async-signal-safe, so each event is formatted into a fixed-size
// JSONL line at record time (snprintf in normal context); the dump is
// then nothing but open() + write() + fsync() over prebuilt bytes.
//
// Slot protocol (single-writer-per-slot variant of the sample ring):
// head_.fetch_add hands each writer a unique slot; the writer invalidates
// the slot's seq to 0, copies the line, then release-stores seq = pos+1.
// A snapshot reader accepts a slot only when it reads the same valid seq
// before and after copying the text, so torn writes are discarded rather
// than emitted. The crash dump runs wait-free: it never loops on a slot,
// it just skips ones mid-write.
//
//   FlightRecorder recorder(1024);
//   recorder.InstallCrashDump("crash_flight.jsonl");  // CHECK + signals
//   recorder.Record("stage mining begin");
//   tracer.SetSpanListener(MakeSpanFlightListener(&recorder));
//   Logger::AddSink(new FlightRecorderLogSink(&recorder));  // tee
//
// One recorder per process may install the crash dump; the handlers keep
// a raw pointer, so that recorder must outlive the process (make it a
// main()-scope local or a leaked singleton, not a temporary).

#ifndef ALICOCO_OBS_PROF_FLIGHT_RECORDER_H_
#define ALICOCO_OBS_PROF_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "obs/trace.h"

namespace alicoco::obs::prof {

class FlightRecorder {
 public:
  /// Payload bytes kept per event; longer lines are truncated with a
  /// trailing ellipsis marker inside the JSON string.
  static constexpr size_t kLineBytes = 224;

  /// `capacity` events are retained (rounded up to a power of two).
  explicit FlightRecorder(size_t capacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event of `kind` ("span", "log", "mark", ...) with a
  /// human-readable detail string. Formats the JSONL line here, in normal
  /// context; thread-safe, lock-free, never blocks, never allocates
  /// beyond the snprintf stack buffer.
  void Record(std::string_view kind, std::string_view detail);

  /// Shorthand for free-form markers: Record("mark", detail).
  void Record(std::string_view detail) { Record("mark", detail); }

  /// Events recorded since construction (monotonic; ring keeps the tail).
  uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Copies out the retained events, oldest first. Skips slots that are
  /// mid-write. Normal-context only (allocates).
  std::vector<std::string> Snapshot() const;

  /// Writes the snapshot as JSONL to `path` (truncates). Normal-context
  /// convenience wrapper over Snapshot.
  [[nodiscard]] Status DumpJsonl(const std::string& path) const;

  /// Async-signal-safe dump to an already-open fd: raw open/write only,
  /// no allocation, no locks. Returns bytes written.
  size_t DumpToFd(int fd) const;

  /// Registers this recorder as the process crash dumper: on CHECK
  /// failure (common/check.h handler) or SIGSEGV/SIGBUS/SIGABRT/SIGFPE,
  /// the ring is dumped to `path` before the process dies. CHECK-fails
  /// if another recorder already installed itself.
  void InstallCrashDump(const std::string& path);

  /// Test hook: drops the process-wide crash-dump registration.
  static void UninstallCrashDumpForTest();

 private:
  /// Payload words per slot. The line bytes live in relaxed atomics so
  /// the seqlock protocol (invalidate, write, publish / read, re-check)
  /// is race-free under the C++ memory model: a torn read is *rejected*
  /// by the seq double-check, but the word accesses themselves must be
  /// atomic for the rejection to be well-defined (and TSan-clean).
  static constexpr size_t kLineWords = kLineBytes / sizeof(uint64_t);
  static_assert(kLineBytes % sizeof(uint64_t) == 0,
                "line buffer must be word-copyable");

  struct Slot {
    std::atomic<uint64_t> seq{0};  ///< 0 = empty/mid-write, else pos+1
    /// NUL-terminated JSONL (no newline), 8 bytes per word.
    std::atomic<uint64_t> line[kLineWords];
  };

  /// Relaxed word copy of a slot's line into a caller buffer of
  /// kLineBytes; pair with the acquire fence + seq re-check.
  static void LoadLine(const Slot& slot, char* dst);

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};
};

/// LogSink tee: forwards every log record into the recorder (install it
/// alongside the normal sinks; it does not replace them).
class FlightRecorderLogSink : public LogSink {
 public:
  explicit FlightRecorderLogSink(FlightRecorder* recorder)
      : recorder_(recorder) {}
  void Write(const LogRecord& record) override;

 private:
  FlightRecorder* const recorder_;
};

/// Span listener for Tracer::SetSpanListener: records each finished span
/// as a "span" event (name, duration, parent).
Tracer::SpanListener MakeSpanFlightListener(FlightRecorder* recorder);

}  // namespace alicoco::obs::prof

#endif  // ALICOCO_OBS_PROF_FLIGHT_RECORDER_H_
