// LockStatsSink that folds named-mutex contention into the obs Registry.
//
// Every named Mutex/CondVar event becomes per-mutex instruments using the
// exporter's label syntax (`lock.wait_us{mutex=thread_pool.mu}` etc.), so
// contention shows up next to the pipeline's own metrics in the same
// Prometheus scrape / JSON dump. In parallel, process totals accumulate
// in plain atomics for the stage-attribution deltas in bench_profile —
// reading a registry histogram takes its lock, reading an atomic does
// not, and the attribution path runs between pipeline stages where we
// want zero perturbation.
//
// Re-entrancy: this sink is called from inside Mutex::lock on *named*
// mutexes, so everything it touches must synchronize only with unnamed
// ones. Registry instruments and the map mutex below are unnamed by
// construction; instrumenting them would recurse (see common/lock_stats.h
// for the rule, and the mutex-name-literal lint rule for enforcement of
// naming style).

#ifndef ALICOCO_OBS_PROF_LOCK_METRICS_H_
#define ALICOCO_OBS_PROF_LOCK_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/lock_stats.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace alicoco::obs::prof {

class LockContentionMetrics : public LockStatsSink {
 public:
  /// `registry` must outlive the sink. Instruments are created lazily on
  /// the first event for each mutex name.
  explicit LockContentionMetrics(Registry* registry);

  void OnAcquire(const char* name, uint64_t wait_us,
                 bool contended) override;
  void OnRelease(const char* name, uint64_t hold_us) override;
  void OnCondVarWait(const char* name, uint64_t wait_us) override;

  /// Process-wide totals across all named mutexes, for cheap deltas.
  uint64_t total_acquires() const {
    return total_acquires_.load(std::memory_order_relaxed);
  }
  uint64_t total_contended() const {
    return total_contended_.load(std::memory_order_relaxed);
  }
  uint64_t total_wait_us() const {
    return total_wait_us_.load(std::memory_order_relaxed);
  }
  uint64_t total_cv_wait_us() const {
    return total_cv_wait_us_.load(std::memory_order_relaxed);
  }

 private:
  struct PerMutex {
    Counter* acquires = nullptr;
    Counter* contended = nullptr;
    Histogram* wait_us = nullptr;
    Histogram* hold_us = nullptr;
    Histogram* cv_wait_us = nullptr;
  };

  const PerMutex& InstrumentsFor(const char* name) ALICOCO_EXCLUDES(mu_);

  Registry* const registry_;
  // Unnamed on purpose — held inside named-mutex lock paths (see above).
  mutable Mutex mu_;
  // Keyed by pointer identity first: mutex names are string literals with
  // static storage, so the common case is one map probe, no string
  // compare, no allocation. The string map handles distinct literals
  // with equal text (several ThreadPools share "thread_pool.mu").
  std::map<const char*, const PerMutex*> by_ptr_ ALICOCO_GUARDED_BY(mu_);
  std::map<std::string, PerMutex> by_name_ ALICOCO_GUARDED_BY(mu_);

  std::atomic<uint64_t> total_acquires_{0};
  std::atomic<uint64_t> total_contended_{0};
  std::atomic<uint64_t> total_wait_us_{0};
  std::atomic<uint64_t> total_cv_wait_us_{0};
};

}  // namespace alicoco::obs::prof

#endif  // ALICOCO_OBS_PROF_LOCK_METRICS_H_
