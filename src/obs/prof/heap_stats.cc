#include "obs/prof/heap_stats.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define ALICOCO_PROF_HAVE_GETRUSAGE 1
#else
#define ALICOCO_PROF_HAVE_GETRUSAGE 0
#endif

namespace alicoco::obs::prof {

namespace internal {
constinit std::atomic<uint64_t> g_heap_allocs{0};
constinit std::atomic<uint64_t> g_heap_frees{0};
constinit std::atomic<uint64_t> g_heap_alloc_bytes{0};
constinit std::atomic<uint64_t> g_heap_free_bytes{0};
constinit std::atomic<bool> g_heap_tracking{false};
constinit std::atomic<bool> g_heap_hook_linked{false};
}  // namespace internal

HeapCounters HeapCountersNow() {
  HeapCounters out;
  out.allocs = internal::g_heap_allocs.load(std::memory_order_relaxed);
  out.frees = internal::g_heap_frees.load(std::memory_order_relaxed);
  out.alloc_bytes =
      internal::g_heap_alloc_bytes.load(std::memory_order_relaxed);
  out.free_bytes = internal::g_heap_free_bytes.load(std::memory_order_relaxed);
  return out;
}

bool HeapHookLinked() {
  return internal::g_heap_hook_linked.load(std::memory_order_relaxed);
}

void SetHeapTrackingEnabled(bool enabled) {
  internal::g_heap_tracking.store(enabled, std::memory_order_relaxed);
}

bool HeapTrackingEnabled() {
  return internal::g_heap_tracking.load(std::memory_order_relaxed);
}

uint64_t PeakRssBytes() {
#if ALICOCO_PROF_HAVE_GETRUSAGE
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace alicoco::obs::prof
