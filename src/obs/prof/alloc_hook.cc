// Global operator new/delete override feeding obs/prof/heap_stats.h.
//
// Built as a CMake OBJECT library (alicoco_alloc_hook) and added to the
// source list of binaries that opt in; an ordinary static library would
// let the linker dead-strip this TU because nothing references it by
// name. Binaries without these objects get the default operators and the
// counters stay at zero.
//
// Replacement rules honored here (C++17 [new.delete]):
//  - the nothrow forms forward to the throwing form and translate
//    bad_alloc to nullptr, so counting lives in exactly two functions;
//  - sized delete records freed bytes, unsized delete only the count;
//  - aligned variants are separate signatures and must all be replaced
//    once any of them is.
//
// The counting path is a relaxed flag test plus relaxed fetch_adds —
// malloc itself dwarfs it. No alicoco headers beyond heap_stats.h: this
// TU runs before main and inside every allocation, including ones made
// by static initializers of other TUs.

#include <cstdlib>
#include <new>

#include "obs/prof/heap_stats.h"

namespace {

using alicoco::obs::prof::internal::g_heap_alloc_bytes;
using alicoco::obs::prof::internal::g_heap_allocs;
using alicoco::obs::prof::internal::g_heap_free_bytes;
using alicoco::obs::prof::internal::g_heap_frees;
using alicoco::obs::prof::internal::g_heap_hook_linked;
using alicoco::obs::prof::internal::g_heap_tracking;

struct HookLinkedMarker {
  HookLinkedMarker() {
    g_heap_hook_linked.store(true, std::memory_order_relaxed);
  }
};
HookLinkedMarker g_marker;

inline void CountAlloc(std::size_t size) {
  if (!g_heap_tracking.load(std::memory_order_relaxed)) return;
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
}

inline void CountFree(std::size_t size) {
  if (!g_heap_tracking.load(std::memory_order_relaxed)) return;
  g_heap_frees.fetch_add(1, std::memory_order_relaxed);
  if (size != 0) {
    g_heap_free_bytes.fetch_add(size, std::memory_order_relaxed);
  }
}

void* AllocateOrThrow(std::size_t size) {
  if (size == 0) size = 1;
  for (;;) {
    void* ptr = std::malloc(size);
    if (ptr != nullptr) {
      CountAlloc(size);
      return ptr;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* AllocateAlignedOrThrow(std::size_t size, std::align_val_t align) {
  if (size == 0) size = 1;
  // C11 aligned_alloc wants size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  size = (size + a - 1) / a * a;
  for (;;) {
    void* ptr = std::aligned_alloc(a, size);
    if (ptr != nullptr) {
      CountAlloc(size);
      return ptr;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

void* operator new(std::size_t size) { return AllocateOrThrow(size); }

void* operator new[](std::size_t size) { return AllocateOrThrow(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return AllocateOrThrow(size);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return AllocateOrThrow(size);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return AllocateAlignedOrThrow(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return AllocateAlignedOrThrow(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return AllocateAlignedOrThrow(size, align);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return AllocateAlignedOrThrow(size, align);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}

void operator delete(void* ptr) noexcept {
  if (ptr != nullptr) CountFree(0);
  std::free(ptr);
}

void operator delete[](void* ptr) noexcept {
  if (ptr != nullptr) CountFree(0);
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t size) noexcept {
  if (ptr != nullptr) CountFree(size);
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t size) noexcept {
  if (ptr != nullptr) CountFree(size);
  std::free(ptr);
}

void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  if (ptr != nullptr) CountFree(0);
  std::free(ptr);
}

void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  if (ptr != nullptr) CountFree(0);
  std::free(ptr);
}

void operator delete(void* ptr, std::align_val_t) noexcept {
  if (ptr != nullptr) CountFree(0);
  std::free(ptr);
}

void operator delete[](void* ptr, std::align_val_t) noexcept {
  if (ptr != nullptr) CountFree(0);
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t size, std::align_val_t) noexcept {
  if (ptr != nullptr) CountFree(size);
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t size, std::align_val_t) noexcept {
  if (ptr != nullptr) CountFree(size);
  std::free(ptr);
}

void operator delete(void* ptr, const std::nothrow_t&,
                     std::align_val_t) noexcept {
  if (ptr != nullptr) CountFree(0);
  std::free(ptr);
}

void operator delete[](void* ptr, const std::nothrow_t&,
                       std::align_val_t) noexcept {
  if (ptr != nullptr) CountFree(0);
  std::free(ptr);
}

namespace alicoco::obs::prof {

// Observable allocation probes for tests and the obs_report overhead
// measurement. They live in this TU — the one sanctioned home of raw
// new/delete expressions — so callers stay RAII-clean, and they are
// out-of-line with volatile pointers so no optimizer may elide the
// allocation (new/delete pairs are legally removable since C++14).

void HeapProbeAlloc(std::size_t bytes) {
  char* volatile p = new char[bytes];
  delete[] p;
}

void HeapProbeAllocAligned(std::size_t bytes) {
  struct alignas(64) Wide {
    char data[64];
  };
  std::size_t count = (bytes + sizeof(Wide) - 1) / sizeof(Wide);
  if (count == 0) count = 1;
  Wide* volatile p = new Wide[count];
  delete[] p;
}

void HeapProbeMalloc(std::size_t bytes) {
  void* volatile p = std::malloc(bytes);
  std::free(p);
}

}  // namespace alicoco::obs::prof
