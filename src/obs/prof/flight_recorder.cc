#include "obs/prof/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/lock_stats.h"
#include "common/string_util.h"

namespace alicoco::obs::prof {
namespace {

// Crash-dump registration. The handlers run with the world on fire, so
// everything they need is preallocated here: the recorder pointer and a
// fixed copy of the output path.
constinit std::atomic<FlightRecorder*> g_crash_recorder{nullptr};
constinit char g_crash_path[512] = {};
constinit std::atomic<bool> g_crash_dumped{false};

const int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL};

// Async-signal-safe: open + write of prebuilt bytes only.
void DumpOnce() {
  if (g_crash_dumped.exchange(true, std::memory_order_acq_rel)) return;
  FlightRecorder* recorder = g_crash_recorder.load(std::memory_order_acquire);
  if (recorder == nullptr || g_crash_path[0] == '\0') return;
  int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  recorder->DumpToFd(fd);
  ::fsync(fd);
  ::close(fd);
}

void FatalSignalHandler(int signo) {
  DumpOnce();
  // Restore default disposition and re-raise so the process still dies
  // with the original signal (core dumps, exit codes, CI diagnostics).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

// Runs in normal context (CheckFailure's destructor), so recording the
// message before dumping is allowed.
void CheckFailureDump(const char* message) {
  FlightRecorder* recorder = g_crash_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) recorder->Record("check", message);
  DumpOnce();
}

// Minimal JSON string escape into a bounded buffer. Returns bytes
// written (excluding NUL); stops early when out of room.
size_t JsonEscapeInto(std::string_view in, char* out, size_t out_size) {
  size_t w = 0;
  auto put = [&](char c) {
    if (w + 1 < out_size) out[w++] = c;
  };
  for (char c : in) {
    switch (c) {
      case '"':
        put('\\');
        put('"');
        break;
      case '\\':
        put('\\');
        put('\\');
        break;
      case '\n':
        put('\\');
        put('n');
        break;
      case '\t':
        put('\\');
        put('t');
        break;
      case '\r':
        put('\\');
        put('r');
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          put('?');  // other control chars: not worth 6-byte escapes here
        } else {
          put(c);
        }
    }
  }
  out[w] = '\0';
  return w;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity) {
  size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
  for (size_t i = 0; i < cap; ++i) {
    slots_[i].line[0].store(0, std::memory_order_relaxed);
  }
}

void FlightRecorder::LoadLine(const Slot& slot, char* dst) {
  uint64_t words[kLineWords];
  for (size_t w = 0; w < kLineWords; ++w) {
    words[w] = slot.line[w].load(std::memory_order_relaxed);
  }
  std::memcpy(dst, words, kLineBytes);
}

FlightRecorder::~FlightRecorder() {
  // Tear down the crash registration if it points at us; handlers must
  // never chase a dangling recorder.
  FlightRecorder* self = this;
  g_crash_recorder.compare_exchange_strong(self, nullptr,
                                           std::memory_order_acq_rel);
}

void FlightRecorder::Record(std::string_view kind, std::string_view detail) {
  const uint64_t pos = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[pos & mask_];

  // Seqlock write side. Invalidate first so a concurrent
  // Snapshot/DumpToFd never emits a half-overwritten line; the release
  // fence orders the invalidation before the payload words (a reader
  // that sees any new word also sees seq==0), and the release store of
  // pos+1 publishes the completed line.
  slot.seq.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);

  char kind_buf[16];
  char detail_buf[kLineBytes];
  JsonEscapeInto(kind, kind_buf, sizeof(kind_buf));
  const size_t detail_room = kLineBytes - 64;  // header + slack
  size_t written = JsonEscapeInto(detail, detail_buf, detail_room);
  if (written + 1 >= detail_room && detail.size() > written) {
    // Mark truncation visibly; the buffer has room by construction.
    std::memcpy(detail_buf + written - 3, "...", 4);
  }
  char formatted[kLineBytes];
  std::snprintf(formatted, kLineBytes,
                "{\"seq\":%llu,\"t_us\":%llu,\"kind\":\"%s\",\"detail\":\"%s\"}",
                static_cast<unsigned long long>(pos),
                static_cast<unsigned long long>(LockStatsNowUs()), kind_buf,
                detail_buf);
  uint64_t words[kLineWords];
  std::memcpy(words, formatted, kLineBytes);
  for (size_t w = 0; w < kLineWords; ++w) {
    slot.line[w].store(words[w], std::memory_order_relaxed);
  }

  slot.seq.store(pos + 1, std::memory_order_release);
}

std::vector<std::string> FlightRecorder::Snapshot() const {
  std::vector<std::string> out;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t cap = mask_ + 1;
  const uint64_t begin = head > cap ? head - cap : 0;
  out.reserve(static_cast<size_t>(head - begin));
  for (uint64_t pos = begin; pos < head; ++pos) {
    const Slot& slot = slots_[pos & mask_];
    uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != pos + 1) continue;  // overwritten or mid-write
    char local[kLineBytes];
    LoadLine(slot, local);
    // The acquire fence orders the word loads before the re-check: a
    // torn copy cannot slip past an unchanged seq.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != pos + 1) continue;
    local[kLineBytes - 1] = '\0';
    out.emplace_back(local);
  }
  return out;
}

Status FlightRecorder::DumpJsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  for (const std::string& line : Snapshot()) {
    out << line << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

size_t FlightRecorder::DumpToFd(int fd) const {
  size_t total = 0;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t cap = mask_ + 1;
  const uint64_t begin = head > cap ? head - cap : 0;
  for (uint64_t pos = begin; pos < head; ++pos) {
    const Slot& slot = slots_[pos & mask_];
    uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != pos + 1) continue;
    char local[kLineBytes + 1];
    LoadLine(slot, local);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != pos + 1) continue;
    local[kLineBytes] = '\0';
    size_t len = 0;
    while (len < kLineBytes && local[len] != '\0') ++len;
    local[len] = '\n';
    ssize_t n = ::write(fd, local, len + 1);
    if (n > 0) total += static_cast<size_t>(n);
  }
  return total;
}

void FlightRecorder::InstallCrashDump(const std::string& path) {
  ALICOCO_CHECK(path.size() + 1 < sizeof(g_crash_path))
      << "crash dump path too long";
  FlightRecorder* expected = nullptr;
  ALICOCO_CHECK(g_crash_recorder.compare_exchange_strong(expected, this))
      << "a FlightRecorder crash dump is already installed";
  std::memcpy(g_crash_path, path.c_str(), path.size() + 1);
  g_crash_dumped.store(false, std::memory_order_release);

  SetCheckFailureHandler(&CheckFailureDump);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = FatalSignalHandler;
  sigemptyset(&action.sa_mask);
  for (int signo : kFatalSignals) {
    sigaction(signo, &action, nullptr);
  }
}

void FlightRecorder::UninstallCrashDumpForTest() {
  g_crash_recorder.store(nullptr, std::memory_order_release);
  g_crash_path[0] = '\0';
  g_crash_dumped.store(false, std::memory_order_release);
  SetCheckFailureHandler(nullptr);
  for (int signo : kFatalSignals) {
    ::signal(signo, SIG_DFL);
  }
}

void FlightRecorderLogSink::Write(const LogRecord& record) {
  recorder_->Record(
      "log", StringPrintf("%s:%d %s", record.file, record.line,
                          record.message.c_str()));
}

Tracer::SpanListener MakeSpanFlightListener(FlightRecorder* recorder) {
  return [recorder](const SpanRecord& span) {
    recorder->Record(
        "span", StringPrintf("%s dur_us=%llu parent=%llu", span.name.c_str(),
                             static_cast<unsigned long long>(span.duration_us),
                             static_cast<unsigned long long>(span.parent_id)));
  };
}

}  // namespace alicoco::obs::prof
