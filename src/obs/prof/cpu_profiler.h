// Sampling CPU profiler: SIGPROF-driven stack capture into a lock-free
// ring, offline symbolization, collapsed-stack and top-N reports.
//
// How it works (DESIGN.md §6): Start() arms ITIMER_PROF at `sample_hz`;
// the kernel delivers SIGPROF to whichever thread is burning CPU, and the
// handler captures a backtrace() into a SampleRing slot — the handler
// touches only pre-allocated memory and atomics, so it is async-signal-
// safe (backtrace itself is warmed up once in Start before the handler
// can run). Stop() disarms the timer, restores the previous handler,
// waits for in-flight handlers to retire, and drains the ring. All
// symbolization (backtrace_symbols + demangling) happens offline in
// TakeProfile(), never in the signal path.
//
//   prof::CpuProfiler profiler;
//   ALICOCO_CHECK(profiler.Start({}).ok());
//   ... workload ...
//   ALICOCO_CHECK(profiler.Stop().ok());
//   prof::CpuProfile profile = profiler.TakeProfile();
//   WriteFile("profile.collapsed", profile.ToCollapsed());  // flamegraph
//   std::fputs(profile.TopNText(10).c_str(), stdout);
//
// One profiler may be active per process (ITIMER_PROF is process-wide);
// Start CHECK-fails on a second concurrent activation. On platforms
// without glibc's <execinfo.h> Start returns NotImplemented and everything
// else degrades to empty output.

#ifndef ALICOCO_OBS_PROF_CPU_PROFILER_H_
#define ALICOCO_OBS_PROF_CPU_PROFILER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/prof/sample_ring.h"

namespace alicoco::obs::prof {

struct CpuProfilerOptions {
  /// SIGPROF delivery rate in CPU-time Hz. An off-round prime-ish default
  /// avoids lockstep with periodic workloads.
  int sample_hz = 197;
  /// Ring capacity in samples (rounded up to a power of two). 8192 at
  /// 197Hz is over 40 CPU-seconds of headroom between drains.
  size_t ring_capacity = 8192;
};

/// Aggregated, symbolized result of one profiling session.
struct CpuProfile {
  uint64_t samples = 0;          ///< stacks captured
  uint64_t dropped = 0;          ///< lost to a full ring
  uint64_t truncated_frames = 0; ///< stacks deeper than the frame budget
  /// Symbolized stacks, root-to-leaf, with sample counts.
  std::map<std::vector<std::string>, uint64_t> stacks;

  /// Brendan-Gregg collapsed format, one `root;child;leaf count` line per
  /// stack, highest count first (ties lexicographic) — feed to
  /// flamegraph.pl or speedscope as-is.
  std::string ToCollapsed() const;
  /// Human-readable top-N functions by self (leaf) samples, with
  /// inclusive counts alongside.
  std::string TopNText(size_t n) const;
};

class CpuProfiler {
 public:
  CpuProfiler();
  /// Must be stopped before destruction; the destructor CHECKs.
  ~CpuProfiler();

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  /// Arms the profiler. InvalidArgument on a bad rate, Internal on
  /// sigaction/setitimer failure, NotImplemented where backtrace() is
  /// unavailable. CHECK-fails if any CpuProfiler is already running.
  [[nodiscard]] Status Start(const CpuProfilerOptions& options);

  /// Disarms, quiesces the handler, drains remaining samples. Idempotent.
  [[nodiscard]] Status Stop();

  bool running() const;

  /// Samples captured so far (approximate while running).
  uint64_t ApproxSamples() const;

  /// Symbolizes and aggregates everything captured since Start. Call
  /// after Stop; clears the accumulated raw stacks.
  CpuProfile TakeProfile();

  /// Maximum frames kept per sample; deeper stacks are truncated at the
  /// root end (the leaf frames are the ones attribution needs).
  static constexpr size_t kMaxFrames = 48;

  struct RawSample {
    int32_t depth = 0;
    void* frames[kMaxFrames] = {};
  };

 private:
  friend void CpuProfilerSignalHandler(int);
  void HandleSignal();  // async-signal-safe
  void DrainRing();

  std::unique_ptr<SampleRing<RawSample>> ring_;
  std::vector<RawSample> collected_;
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> truncated_{0};
  uint64_t dropped_at_stop_ = 0;
  bool running_ = false;
  // Saved handler/timer state lives in the .cc (platform types).
  struct PlatformState;
  std::unique_ptr<PlatformState> platform_;
};

}  // namespace alicoco::obs::prof

#endif  // ALICOCO_OBS_PROF_CPU_PROFILER_H_
