// Process-wide heap attribution counters fed by an opt-in global
// operator new/delete override (alloc_hook.cc).
//
// The hook is an OBJECT library linked only into binaries that opt in
// (bench/obs_report, the obs tests) — production tools pay nothing, not
// even the branch. Within a hooked binary the counters start disabled;
// SetHeapTrackingEnabled(true) flips one relaxed atomic that every
// allocation checks. The counters are cumulative and monotonic (frees
// are counted separately, never subtracted), so per-stage attribution is
// a simple before/after delta: the pipeline runs its stages sequentially
// on the main thread, and worker allocations inside a stage land in that
// stage's window, which is exactly the attribution we want.
//
//   SetHeapTrackingEnabled(true);
//   HeapCounters before = HeapCountersNow();
//   ... stage ...
//   HeapCounters after = HeapCountersNow();
//   uint64_t stage_bytes = after.alloc_bytes - before.alloc_bytes;
//
// Sized deletes report exact byte counts; unsized deletes are counted
// but contribute 0 bytes freed, so `alloc_bytes - free_bytes` is an
// upper bound on live bytes, not an exact figure. Peak footprint comes
// from the kernel instead: PeakRssBytes() reads getrusage(ru_maxrss).

#ifndef ALICOCO_OBS_PROF_HEAP_STATS_H_
#define ALICOCO_OBS_PROF_HEAP_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace alicoco::obs::prof {

namespace internal {
// Bumped by alloc_hook.cc when tracking is enabled. constinit so the
// hook is safe during static initialization of other TUs.
extern std::atomic<uint64_t> g_heap_allocs;
extern std::atomic<uint64_t> g_heap_frees;
extern std::atomic<uint64_t> g_heap_alloc_bytes;
extern std::atomic<uint64_t> g_heap_free_bytes;
extern std::atomic<bool> g_heap_tracking;
// Set once by the hook TU's initializer; lets callers distinguish "no
// allocations" from "hook not linked in".
extern std::atomic<bool> g_heap_hook_linked;
}  // namespace internal

struct HeapCounters {
  uint64_t allocs = 0;       ///< operator new calls
  uint64_t frees = 0;        ///< operator delete calls
  uint64_t alloc_bytes = 0;  ///< bytes requested from operator new
  uint64_t free_bytes = 0;   ///< bytes from sized deletes only
};

/// Snapshot of the cumulative counters. All zeros when the hook is not
/// linked or tracking was never enabled.
HeapCounters HeapCountersNow();

/// True when alloc_hook.cc is linked into this binary.
bool HeapHookLinked();

/// Turns counting on/off; counters are not reset. Callable whether or
/// not the hook is linked (a no-op without it).
void SetHeapTrackingEnabled(bool enabled);
bool HeapTrackingEnabled();

/// RAII enable/restore, for tests.
class ScopedHeapTracking {
 public:
  ScopedHeapTracking() : prev_(HeapTrackingEnabled()) {
    SetHeapTrackingEnabled(true);
  }
  ~ScopedHeapTracking() { SetHeapTrackingEnabled(prev_); }
  ScopedHeapTracking(const ScopedHeapTracking&) = delete;
  ScopedHeapTracking& operator=(const ScopedHeapTracking&) = delete;

 private:
  bool prev_;
};

/// Lifetime peak resident set size of this process in bytes, from
/// getrusage; 0 where unavailable. Kernel-truth complement to the
/// allocator counters (includes code, stacks, arena slack).
uint64_t PeakRssBytes();

/// Observable allocation probes, defined in alloc_hook.cc (link error
/// without the hook — probing an unhooked binary is a bug). Each performs
/// one un-elidable allocate/free pair: through operator new[]/delete[]
/// (`HeapProbeAlloc`), through the over-aligned operator set
/// (`HeapProbeAllocAligned`, 64-byte alignment), or through plain
/// malloc/free bypassing the hook (`HeapProbeMalloc`, the subtraction
/// baseline for overhead measurement).
void HeapProbeAlloc(std::size_t bytes);
void HeapProbeAllocAligned(std::size_t bytes);
void HeapProbeMalloc(std::size_t bytes);

}  // namespace alicoco::obs::prof

#endif  // ALICOCO_OBS_PROF_HEAP_STATS_H_
