#include "obs/prof/lock_metrics.h"

#include "common/check.h"

namespace alicoco::obs::prof {

LockContentionMetrics::LockContentionMetrics(Registry* registry)
    : registry_(registry) {
  ALICOCO_CHECK(registry != nullptr);
}

const LockContentionMetrics::PerMutex& LockContentionMetrics::InstrumentsFor(
    const char* name) {
  MutexLock lock(mu_);
  auto ptr_it = by_ptr_.find(name);
  if (ptr_it != by_ptr_.end()) return *ptr_it->second;

  auto [name_it, inserted] = by_name_.try_emplace(std::string(name));
  PerMutex& per = name_it->second;
  if (inserted) {
    const std::string label = std::string("{mutex=") + name + "}";
    per.acquires = registry_->GetCounter("lock.acquires" + label);
    per.contended = registry_->GetCounter("lock.contended" + label);
    per.wait_us = registry_->GetHistogram("lock.wait_us" + label);
    per.hold_us = registry_->GetHistogram("lock.hold_us" + label);
    per.cv_wait_us = registry_->GetHistogram("lock.cv_wait_us" + label);
  }
  by_ptr_.emplace(name, &per);
  return per;
}

void LockContentionMetrics::OnAcquire(const char* name, uint64_t wait_us,
                                      bool contended) {
  const PerMutex& per = InstrumentsFor(name);
  per.acquires->Increment();
  total_acquires_.fetch_add(1, std::memory_order_relaxed);
  if (contended) {
    per.contended->Increment();
    per.wait_us->Observe(static_cast<double>(wait_us));
    total_contended_.fetch_add(1, std::memory_order_relaxed);
    total_wait_us_.fetch_add(wait_us, std::memory_order_relaxed);
  }
}

void LockContentionMetrics::OnRelease(const char* name, uint64_t hold_us) {
  InstrumentsFor(name).hold_us->Observe(static_cast<double>(hold_us));
}

void LockContentionMetrics::OnCondVarWait(const char* name, uint64_t wait_us) {
  InstrumentsFor(name).cv_wait_us->Observe(static_cast<double>(wait_us));
  total_cv_wait_us_.fetch_add(wait_us, std::memory_order_relaxed);
}

}  // namespace alicoco::obs::prof
