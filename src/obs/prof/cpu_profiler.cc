#include "obs/prof/cpu_profiler.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/string_util.h"

#if defined(__GLIBC__)
#include <cxxabi.h>
#include <execinfo.h>
#include <sys/time.h>
#define ALICOCO_PROF_HAVE_BACKTRACE 1
#else
#define ALICOCO_PROF_HAVE_BACKTRACE 0
#endif

namespace alicoco::obs::prof {
namespace {

// Process-wide handler state. `g_active` is the single rendezvous point
// between Start/Stop and the signal handler; `g_in_handler` counts
// handlers that loaded a non-null g_active and are still executing, so
// Stop can quiesce before tearing the ring down.
std::atomic<CpuProfiler*> g_active{nullptr};
std::atomic<int> g_in_handler{0};

}  // namespace

void CpuProfilerSignalHandler(int /*signo*/) {
  // Async-signal-safe: atomics and backtrace() into a stack buffer only.
  g_in_handler.fetch_add(1, std::memory_order_acq_rel);
  CpuProfiler* profiler = g_active.load(std::memory_order_acquire);
  if (profiler != nullptr) {
    const int saved_errno = errno;
    profiler->HandleSignal();
    errno = saved_errno;
  }
  g_in_handler.fetch_sub(1, std::memory_order_acq_rel);
}

#if ALICOCO_PROF_HAVE_BACKTRACE

struct CpuProfiler::PlatformState {
  struct sigaction saved_action;
  struct itimerval saved_timer;
};

void CpuProfiler::HandleSignal() {
  RawSample sample;
  // One extra slot so "filled the buffer" is distinguishable from
  // "exactly fit": backtrace gives no truncation signal of its own.
  void* frames[kMaxFrames + 1];
  int depth = backtrace(frames, static_cast<int>(kMaxFrames) + 1);
  if (depth <= 0) return;
  if (depth > static_cast<int>(kMaxFrames)) {
    truncated_.fetch_add(1, std::memory_order_relaxed);
    depth = static_cast<int>(kMaxFrames);
  }
  sample.depth = depth;
  std::memcpy(sample.frames, frames,
              static_cast<size_t>(depth) * sizeof(void*));
  if (ring_->TryPush(sample)) {
    samples_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status CpuProfiler::Start(const CpuProfilerOptions& options) {
  ALICOCO_CHECK(!running_) << "CpuProfiler::Start while already running";
  if (options.sample_hz <= 0 || options.sample_hz > 10000) {
    return Status::InvalidArgument(
        StringPrintf("sample_hz %d outside (0, 10000]", options.sample_hz));
  }
  if (options.ring_capacity == 0) {
    return Status::InvalidArgument("ring_capacity must be positive");
  }

  ring_ = std::make_unique<SampleRing<RawSample>>(options.ring_capacity);
  collected_.clear();
  samples_.store(0, std::memory_order_relaxed);
  truncated_.store(0, std::memory_order_relaxed);
  dropped_at_stop_ = 0;
  platform_ = std::make_unique<PlatformState>();

  // Warm up backtrace: its first call may dlopen libgcc, which allocates
  // and locks — unacceptable inside the handler, fine here.
  void* warmup[4];
  (void)backtrace(warmup, 4);

  CpuProfiler* expected = nullptr;
  ALICOCO_CHECK(g_active.compare_exchange_strong(expected, this))
      << "another CpuProfiler is already active in this process";

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CpuProfilerSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &action, &platform_->saved_action) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    return Status::Internal(StringPrintf("sigaction(SIGPROF) failed: %s",
                                         std::strerror(errno)));
  }

  struct itimerval timer;
  const long interval_us = 1000000L / options.sample_hz;
  timer.it_interval.tv_sec = interval_us / 1000000L;
  timer.it_interval.tv_usec = interval_us % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, &platform_->saved_timer) != 0) {
    sigaction(SIGPROF, &platform_->saved_action, nullptr);
    g_active.store(nullptr, std::memory_order_release);
    return Status::Internal(StringPrintf("setitimer(ITIMER_PROF) failed: %s",
                                         std::strerror(errno)));
  }

  running_ = true;
  return Status::OK();
}

Status CpuProfiler::Stop() {
  if (!running_) return Status::OK();

  // Teardown order matters: disarm the timer (no new signals queue up),
  // restore the old disposition, clear g_active (handlers already past
  // their g_active load still hold a valid pointer), then wait for those
  // stragglers before touching the ring from this thread.
  struct itimerval disarm;
  std::memset(&disarm, 0, sizeof(disarm));
  if (setitimer(ITIMER_PROF, &disarm, nullptr) != 0) {
    return Status::Internal(StringPrintf("setitimer disarm failed: %s",
                                         std::strerror(errno)));
  }
  sigaction(SIGPROF, &platform_->saved_action, nullptr);
  g_active.store(nullptr, std::memory_order_release);
  while (g_in_handler.load(std::memory_order_acquire) != 0) {
    // Handlers run for microseconds; a plain spin outlives them all.
  }

  DrainRing();
  dropped_at_stop_ = ring_->dropped();
  running_ = false;
  return Status::OK();
}

#else  // !ALICOCO_PROF_HAVE_BACKTRACE

struct CpuProfiler::PlatformState {};

void CpuProfiler::HandleSignal() {}

Status CpuProfiler::Start(const CpuProfilerOptions& options) {
  (void)options;
  return Status::NotImplemented(
      "CpuProfiler requires glibc backtrace() support");
}

Status CpuProfiler::Stop() { return Status::OK(); }

#endif  // ALICOCO_PROF_HAVE_BACKTRACE

CpuProfiler::CpuProfiler() = default;

CpuProfiler::~CpuProfiler() {
  ALICOCO_CHECK(!running_) << "CpuProfiler destroyed while running";
}

bool CpuProfiler::running() const { return running_; }

uint64_t CpuProfiler::ApproxSamples() const {
  return samples_.load(std::memory_order_relaxed);
}

void CpuProfiler::DrainRing() {
  RawSample sample;
  while (ring_ != nullptr && ring_->TryPop(&sample)) {
    collected_.push_back(sample);
  }
}

namespace {

// backtrace_symbols lines look like `binary(_ZN7alicoco3FooEv+0x1c)
// [0x55...]`; pull out and demangle the mangled name, falling back to
// the raw frame text when the symbol table has nothing.
std::string SymbolizeFrame(const char* raw) {
  std::string text(raw == nullptr ? "??" : raw);
  size_t open = text.find('(');
  size_t plus = text.find('+', open == std::string::npos ? 0 : open);
  if (open != std::string::npos && plus != std::string::npos && plus > open + 1) {
    std::string mangled = text.substr(open + 1, plus - open - 1);
#if ALICOCO_PROF_HAVE_BACKTRACE
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);
      return out;
    }
    if (demangled != nullptr) std::free(demangled);
#endif
    return mangled;  // a C symbol, already readable
  }
  // No symbol: keep just the address token so collapsed lines stay short.
  size_t bracket = text.find('[');
  if (bracket != std::string::npos) {
    std::string addr = text.substr(bracket + 1);
    if (!addr.empty() && addr.back() == ']') addr.pop_back();
    return addr;
  }
  return text;
}

bool IsProfilerInternalFrame(const std::string& symbol) {
  return symbol.find("CpuProfilerSignalHandler") != std::string::npos ||
         symbol.find("HandleSignal") != std::string::npos ||
         symbol.find("killpg") != std::string::npos ||  // glibc sigreturn alias
         symbol.find("__restore_rt") != std::string::npos;
}

}  // namespace

CpuProfile CpuProfiler::TakeProfile() {
  DrainRing();
  CpuProfile profile;
  profile.samples = samples_.load(std::memory_order_relaxed);
  profile.dropped =
      running_ ? (ring_ != nullptr ? ring_->dropped() : 0) : dropped_at_stop_;
  profile.truncated_frames = truncated_.load(std::memory_order_relaxed);

#if ALICOCO_PROF_HAVE_BACKTRACE
  // Symbolize each distinct address once; samples repeat hot addresses
  // thousands of times and __cxa_demangle is not cheap.
  std::map<void*, std::string> symbol_cache;
  for (const RawSample& sample : collected_) {
    std::vector<std::string> stack;
    stack.reserve(static_cast<size_t>(sample.depth));
    // Frames arrive leaf-first; emit root-first for collapsed output.
    for (int i = sample.depth - 1; i >= 0; --i) {
      void* addr = sample.frames[i];
      auto it = symbol_cache.find(addr);
      if (it == symbol_cache.end()) {
        void* one[1] = {addr};
        char** names = backtrace_symbols(one, 1);
        std::string symbol =
            names != nullptr ? SymbolizeFrame(names[0]) : std::string("??");
        std::free(names);
        it = symbol_cache.emplace(addr, std::move(symbol)).first;
      }
      stack.push_back(it->second);
    }
    // Trim the handler frames off the leaf end; they are measurement
    // machinery, not workload. The machinery is not always the exact
    // leaf: sanitizer builds intercept backtrace(), leaving an unnamed
    // runtime frame leafward of the handler. So cut at the rootmost
    // recognized machinery frame and drop everything leafward of it.
    // The signal trampoline (__restore_rt) sits immediately rootward of
    // the handler and is not visible to dladdr in every libc; when the
    // cut frame was the handler itself (not a named trampoline alias),
    // an unresolved hex frame now at the leaf is that trampoline — drop
    // exactly that one too. Raw-address leaves in the workload itself
    // (no machinery found) are kept.
    bool cut_at_handler = false;
    for (size_t frame = 0; frame < stack.size(); ++frame) {
      if (IsProfilerInternalFrame(stack[frame])) {
        cut_at_handler =
            stack[frame].find("__restore_rt") == std::string::npos &&
            stack[frame].find("killpg") == std::string::npos;
        stack.erase(stack.begin() + static_cast<ptrdiff_t>(frame),
                    stack.end());
        break;
      }
    }
    if (cut_at_handler && !stack.empty() &&
        stack.back().compare(0, 2, "0x") == 0) {
      stack.pop_back();
    }
    if (stack.empty()) stack.push_back("??");
    ++profile.stacks[std::move(stack)];
  }
#endif
  collected_.clear();
  return profile;
}

std::string CpuProfile::ToCollapsed() const {
  struct Line {
    std::string text;
    uint64_t count;
  };
  std::vector<Line> lines;
  lines.reserve(stacks.size());
  for (const auto& [stack, count] : stacks) {
    std::string joined;
    for (size_t i = 0; i < stack.size(); ++i) {
      if (i != 0) joined += ';';
      // Collapsed format reserves ';' as the frame separator.
      for (char c : stack[i]) joined += (c == ';' ? ':' : c);
    }
    lines.push_back({std::move(joined), count});
  }
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.text < b.text;
  });
  std::string out;
  for (const Line& line : lines) {
    out += line.text;
    out += ' ';
    out += std::to_string(line.count);
    out += '\n';
  }
  return out;
}

std::string CpuProfile::TopNText(size_t n) const {
  std::map<std::string, std::pair<uint64_t, uint64_t>> by_fn;  // self, incl
  for (const auto& [stack, count] : stacks) {
    if (!stack.empty()) by_fn[stack.back()].first += count;
    // A function recursing within one stack still gets one inclusive hit.
    std::vector<std::string> seen;
    for (const std::string& frame : stack) {
      if (std::find(seen.begin(), seen.end(), frame) != seen.end()) continue;
      seen.push_back(frame);
      by_fn[frame].second += count;
    }
  }
  std::vector<std::pair<std::string, std::pair<uint64_t, uint64_t>>> rows(
      by_fn.begin(), by_fn.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.first != b.second.first) {
      return a.second.first > b.second.first;
    }
    return a.first < b.first;
  });
  if (rows.size() > n) rows.resize(n);

  std::string out = StringPrintf("CPU profile: %llu samples (%llu dropped)\n",
                                 static_cast<unsigned long long>(samples),
                                 static_cast<unsigned long long>(dropped));
  out += StringPrintf("%8s %8s  %s\n", "self", "incl", "function");
  for (const auto& [name, counts] : rows) {
    out += StringPrintf("%8llu %8llu  %s\n",
                        static_cast<unsigned long long>(counts.first),
                        static_cast<unsigned long long>(counts.second),
                        name.c_str());
  }
  return out;
}

}  // namespace alicoco::obs::prof
