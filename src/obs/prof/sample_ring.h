// Bounded lock-free MPMC ring (Vyukov-style sequenced slots) sized for
// the profiling tier's hot producers.
//
// The SIGPROF handler is a producer, so TryPush must be async-signal-safe:
// it uses only atomic loads, a CAS, and a trivially-copyable value write —
// no locks, no allocation, no syscalls. A full ring drops the sample (and
// counts the drop) rather than ever blocking; losing a sample under burst
// is the correct profiler behavior, losing the signal handler is not.
//
// Protocol: each slot carries a sequence number. seq == pos means "free
// for the producer claiming position pos"; seq == pos + 1 means "filled,
// ready for the consumer at pos"; after consumption seq becomes
// pos + capacity, handing the slot to the producer one lap ahead. A
// producer suspended between claiming and publishing (e.g. a thread
// preempted inside a signal handler) makes the consumer see that slot as
// "not ready yet" — TryPop returns false and the caller retries later,
// which is exactly the drain loop's shape.
//
// T must be trivially copyable; the slots are stored inline.

#ifndef ALICOCO_OBS_PROF_SAMPLE_RING_H_
#define ALICOCO_OBS_PROF_SAMPLE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/check.h"

namespace alicoco::obs::prof {

template <typename T>
class SampleRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SampleRing slots are raw copies");

 public:
  /// Capacity is rounded up to a power of two, minimum 2. Allocation
  /// happens here, never on the push path.
  explicit SampleRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  SampleRing(const SampleRing&) = delete;
  SampleRing& operator=(const SampleRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Async-signal-safe. False (and a drop count) when the ring is full.
  bool TryPush(const T& value) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      uint64_t seq = slot.seq.load(std::memory_order_acquire);
      int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = value;
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed pos; retry with the new claim point.
      } else if (dif < 0) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;  // full: the consumer is a whole lap behind
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// False when empty (or when the next slot's producer has not yet
  /// published — the caller just retries on its next drain pass).
  bool TryPop(T* out) {
    ALICOCO_DCHECK(out != nullptr);
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      uint64_t seq = slot.seq.load(std::memory_order_acquire);
      int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          *out = slot.value;
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty or unpublished
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Samples rejected because the ring was full.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  ///< next producer position
  alignas(64) std::atomic<uint64_t> tail_{0};  ///< next consumer position
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace alicoco::obs::prof

#endif  // ALICOCO_OBS_PROF_SAMPLE_RING_H_
