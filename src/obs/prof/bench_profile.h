// BENCH_profile.json (schema alicoco.bench_profile.v1): per-stage
// attribution of pipeline wall time to cpu / lock-wait / queue-wait /
// allocation, plus the measured disabled-mode instrumentation overhead.
//
// Where the numbers come from (the attribution model, DESIGN.md §6):
//   wall_ms       steady-clock span of the stage on the driving thread.
//   cpu_ms        CLOCK_PROCESS_CPUTIME_ID delta — CPU burned by the
//                 whole process during the stage, workers included, so
//                 cpu_ms > wall_ms means the stage parallelized.
//   lock_wait_ms  delta of LockContentionMetrics' process totals: time
//                 threads spent blocked acquiring named mutexes.
//   queue_wait_ms delta of the worker pool's queue_wait_us histogram
//                 sum: task-in-queue latency before a worker picked
//                 it up.
//   alloc_mb /    delta of the heap hook counters: bytes and calls
//   allocs        requested from operator new during the stage.
// Stages run sequentially, so process-wide deltas attribute cleanly to
// the stage that was active; worker-thread costs land in the stage that
// scheduled them, which is the attribution a stage owner wants.
//
// The overhead block answers "what does shipping the instrumentation
// cost when it is idle?": per-operation deltas measured by paired
// microloops (min over repetitions), multiplied by the run's real
// operation counts, expressed as a percentage of total wall time.
// bench/obs_report gates this under 1%.

#ifndef ALICOCO_OBS_PROF_BENCH_PROFILE_H_
#define ALICOCO_OBS_PROF_BENCH_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/prof/heap_stats.h"
#include "obs/prof/lock_metrics.h"

namespace alicoco::obs::prof {

struct StageAttribution {
  std::string name;
  double wall_ms = 0;
  double cpu_ms = 0;
  double lock_wait_ms = 0;
  double queue_wait_ms = 0;
  double alloc_mb = 0;
  uint64_t allocs = 0;
};

/// Idle-cost proof for the always-compiled-in instrumentation.
struct DisabledOverhead {
  double per_lock_ns = 0;   ///< named-mutex-no-sink minus plain mutex
  double per_alloc_ns = 0;  ///< hook-disabled new/delete minus baseline
  uint64_t lock_ops = 0;    ///< named-mutex acquisitions in the run
  uint64_t alloc_ops = 0;   ///< operator new calls in the run
  double pct_of_total = 0;  ///< projected idle cost / total wall time
};

struct BenchProfile {
  static constexpr char kSchemaId[] = "alicoco.bench_profile.v1";

  std::string world;
  double total_ms = 0;
  double total_cpu_ms = 0;
  double peak_rss_mb = 0;
  bool heap_tracked = false;  ///< alloc numbers are real, not zeros
  std::vector<StageAttribution> stages;
  DisabledOverhead overhead;

  const StageAttribution* FindStage(const std::string& name) const;
  std::string ToJson() const;
  static Result<BenchProfile> FromJson(const std::string& text);
};

/// Regression gate mirroring obs::CompareToBaseline, but on cpu_ms — the
/// attribution signal this schema exists for (wall time is already gated
/// by the pipeline profile). Also flags stages missing from `current`.
std::vector<std::string> CompareBenchProfile(const BenchProfile& baseline,
                                             const BenchProfile& current,
                                             double max_ratio,
                                             double slack_ms);

/// Snapshots the attribution sources at stage boundaries. Drive it from
/// PipelineConfig::stage_profiler: the builder calls BeginStage at each
/// stage start and Finish after the last one; each BeginStage closes the
/// stage before it. Single-threaded use by the pipeline driver thread.
class StageProfiler {
 public:
  /// Any of the sources may be null; the matching columns read 0.
  /// `queue_wait_histogram` names a registry histogram whose sum is
  /// cumulative queue-wait microseconds (the ThreadPoolMetrics one).
  StageProfiler(const LockContentionMetrics* lock_metrics,
                const Registry* registry,
                std::string queue_wait_histogram);

  void BeginStage(const std::string& name);
  /// Closes the currently open stage, if any.
  void Finish();

  /// Finished stages, in execution order. Call after Finish.
  std::vector<StageAttribution> TakeStages();

 private:
  struct Cut {
    uint64_t wall_us = 0;
    uint64_t cpu_us = 0;
    uint64_t lock_wait_us = 0;
    uint64_t cv_wait_us = 0;
    double queue_wait_us_sum = 0;
    HeapCounters heap;
  };
  Cut TakeCut() const;
  void CloseStage(const Cut& now);

  const LockContentionMetrics* const lock_metrics_;
  const Registry* const registry_;
  const std::string queue_wait_histogram_;

  bool open_ = false;
  std::string open_name_;
  Cut open_cut_;
  std::vector<StageAttribution> stages_;
};

}  // namespace alicoco::obs::prof

#endif  // ALICOCO_OBS_PROF_BENCH_PROFILE_H_
