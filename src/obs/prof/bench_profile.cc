#include "obs/prof/bench_profile.h"

#include <time.h>

#include <chrono>

#include "common/string_util.h"
#include "obs/exporters.h"
#include "obs/json.h"

namespace alicoco::obs::prof {
namespace {

std::string FormatDouble(double v) { return StringPrintf("%.6g", v); }

uint64_t WallNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Process CPU time (all threads), in microseconds. This is what makes
// cpu_ms attribute worker effort to the stage that scheduled it.
uint64_t ProcessCpuNowUs() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000ULL +
         static_cast<uint64_t>(ts.tv_nsec) / 1000ULL;
#else
  return 0;
#endif
}

}  // namespace

const StageAttribution* BenchProfile::FindStage(
    const std::string& name) const {
  for (const StageAttribution& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

std::string BenchProfile::ToJson() const {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"" + std::string(kSchemaId) + "\",\n";
  out += "  \"world\": \"" + JsonEscape(world) + "\",\n";
  out += "  \"total_ms\": " + FormatDouble(total_ms) + ",\n";
  out += "  \"total_cpu_ms\": " + FormatDouble(total_cpu_ms) + ",\n";
  out += "  \"peak_rss_mb\": " + FormatDouble(peak_rss_mb) + ",\n";
  out += std::string("  \"heap_tracked\": ") +
         (heap_tracked ? "true" : "false") + ",\n";
  out += "  \"stages\": [\n";
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageAttribution& s = stages[i];
    out += "    {\"name\": \"" + JsonEscape(s.name) + "\"";
    out += ", \"wall_ms\": " + FormatDouble(s.wall_ms);
    out += ", \"cpu_ms\": " + FormatDouble(s.cpu_ms);
    out += ", \"lock_wait_ms\": " + FormatDouble(s.lock_wait_ms);
    out += ", \"queue_wait_ms\": " + FormatDouble(s.queue_wait_ms);
    out += ", \"alloc_mb\": " + FormatDouble(s.alloc_mb);
    out += ", \"allocs\": " + std::to_string(s.allocs);
    out += "}";
    if (i + 1 != stages.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"overhead\": {";
  out += "\"per_lock_ns\": " + FormatDouble(overhead.per_lock_ns);
  out += ", \"per_alloc_ns\": " + FormatDouble(overhead.per_alloc_ns);
  out += ", \"lock_ops\": " + std::to_string(overhead.lock_ops);
  out += ", \"alloc_ops\": " + std::to_string(overhead.alloc_ops);
  out += ", \"pct_of_total\": " + FormatDouble(overhead.pct_of_total);
  out += "}\n";
  out += "}\n";
  return out;
}

Result<BenchProfile> BenchProfile::FromJson(const std::string& text) {
  ALICOCO_ASSIGN_OR_RETURN(JsonValue root, ParseJson(text));
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::Corruption("profile root must be a JSON object");
  }
  ALICOCO_ASSIGN_OR_RETURN(std::string schema,
                           JsonRequireString(root, "schema"));
  if (schema != kSchemaId) {
    return Status::Corruption("unknown profile schema '" + schema + "'");
  }
  BenchProfile profile;
  ALICOCO_ASSIGN_OR_RETURN(profile.world, JsonRequireString(root, "world"));
  ALICOCO_ASSIGN_OR_RETURN(profile.total_ms,
                           JsonRequireNumber(root, "total_ms"));
  ALICOCO_ASSIGN_OR_RETURN(profile.total_cpu_ms,
                           JsonRequireNumber(root, "total_cpu_ms"));
  ALICOCO_ASSIGN_OR_RETURN(profile.peak_rss_mb,
                           JsonRequireNumber(root, "peak_rss_mb"));
  const JsonValue* tracked = root.Find("heap_tracked");
  profile.heap_tracked =
      tracked != nullptr && tracked->kind == JsonValue::Kind::kBool &&
      tracked->boolean;

  const JsonValue* stages = root.Find("stages");
  if (stages == nullptr || stages->kind != JsonValue::Kind::kArray) {
    return Status::Corruption("missing 'stages' array");
  }
  for (const JsonValue& entry : stages->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return Status::Corruption("stage entries must be objects");
    }
    StageAttribution s;
    ALICOCO_ASSIGN_OR_RETURN(s.name, JsonRequireString(entry, "name"));
    ALICOCO_ASSIGN_OR_RETURN(s.wall_ms, JsonRequireNumber(entry, "wall_ms"));
    ALICOCO_ASSIGN_OR_RETURN(s.cpu_ms, JsonRequireNumber(entry, "cpu_ms"));
    ALICOCO_ASSIGN_OR_RETURN(s.lock_wait_ms,
                             JsonRequireNumber(entry, "lock_wait_ms"));
    ALICOCO_ASSIGN_OR_RETURN(s.queue_wait_ms,
                             JsonRequireNumber(entry, "queue_wait_ms"));
    ALICOCO_ASSIGN_OR_RETURN(s.alloc_mb, JsonRequireNumber(entry, "alloc_mb"));
    ALICOCO_ASSIGN_OR_RETURN(double allocs, JsonRequireNumber(entry, "allocs"));
    s.allocs = static_cast<uint64_t>(allocs);
    profile.stages.push_back(std::move(s));
  }

  const JsonValue* overhead = root.Find("overhead");
  if (overhead != nullptr) {
    if (overhead->kind != JsonValue::Kind::kObject) {
      return Status::Corruption("'overhead' must be an object");
    }
    ALICOCO_ASSIGN_OR_RETURN(profile.overhead.per_lock_ns,
                             JsonRequireNumber(*overhead, "per_lock_ns"));
    ALICOCO_ASSIGN_OR_RETURN(profile.overhead.per_alloc_ns,
                             JsonRequireNumber(*overhead, "per_alloc_ns"));
    ALICOCO_ASSIGN_OR_RETURN(double lock_ops,
                             JsonRequireNumber(*overhead, "lock_ops"));
    ALICOCO_ASSIGN_OR_RETURN(double alloc_ops,
                             JsonRequireNumber(*overhead, "alloc_ops"));
    profile.overhead.lock_ops = static_cast<uint64_t>(lock_ops);
    profile.overhead.alloc_ops = static_cast<uint64_t>(alloc_ops);
    ALICOCO_ASSIGN_OR_RETURN(profile.overhead.pct_of_total,
                             JsonRequireNumber(*overhead, "pct_of_total"));
  }
  return profile;
}

std::vector<std::string> CompareBenchProfile(const BenchProfile& baseline,
                                             const BenchProfile& current,
                                             double max_ratio,
                                             double slack_ms) {
  std::vector<std::string> regressions;
  for (const StageAttribution& base_stage : baseline.stages) {
    const StageAttribution* cur = current.FindStage(base_stage.name);
    if (cur == nullptr) {
      regressions.push_back("stage '" + base_stage.name +
                            "' missing from the current profile");
      continue;
    }
    double limit = base_stage.cpu_ms * max_ratio + slack_ms;
    if (cur->cpu_ms > limit) {
      regressions.push_back(StringPrintf(
          "stage '%s' cpu regressed: %.1fms > limit %.1fms (baseline "
          "%.1fms x %.2g + %.0fms slack)",
          base_stage.name.c_str(), cur->cpu_ms, limit, base_stage.cpu_ms,
          max_ratio, slack_ms));
    }
  }
  return regressions;
}

StageProfiler::StageProfiler(const LockContentionMetrics* lock_metrics,
                             const Registry* registry,
                             std::string queue_wait_histogram)
    : lock_metrics_(lock_metrics),
      registry_(registry),
      queue_wait_histogram_(std::move(queue_wait_histogram)) {}

StageProfiler::Cut StageProfiler::TakeCut() const {
  Cut cut;
  cut.wall_us = WallNowUs();
  cut.cpu_us = ProcessCpuNowUs();
  if (lock_metrics_ != nullptr) {
    cut.lock_wait_us = lock_metrics_->total_wait_us();
    cut.cv_wait_us = lock_metrics_->total_cv_wait_us();
  }
  if (registry_ != nullptr && !queue_wait_histogram_.empty()) {
    const Histogram* h = registry_->FindHistogram(queue_wait_histogram_);
    if (h != nullptr) cut.queue_wait_us_sum = h->sum();
  }
  cut.heap = HeapCountersNow();
  return cut;
}

void StageProfiler::CloseStage(const Cut& now) {
  StageAttribution s;
  s.name = open_name_;
  s.wall_ms = static_cast<double>(now.wall_us - open_cut_.wall_us) / 1000.0;
  s.cpu_ms = static_cast<double>(now.cpu_us - open_cut_.cpu_us) / 1000.0;
  s.lock_wait_ms =
      static_cast<double>(now.lock_wait_us - open_cut_.lock_wait_us) / 1000.0;
  s.queue_wait_ms =
      (now.queue_wait_us_sum - open_cut_.queue_wait_us_sum) / 1000.0;
  s.alloc_mb =
      static_cast<double>(now.heap.alloc_bytes - open_cut_.heap.alloc_bytes) /
      (1024.0 * 1024.0);
  s.allocs = now.heap.allocs - open_cut_.heap.allocs;
  stages_.push_back(std::move(s));
  open_ = false;
}

void StageProfiler::BeginStage(const std::string& name) {
  Cut now = TakeCut();
  if (open_) CloseStage(now);
  open_ = true;
  open_name_ = name;
  open_cut_ = now;
}

void StageProfiler::Finish() {
  if (!open_) return;
  CloseStage(TakeCut());
}

std::vector<StageAttribution> StageProfiler::TakeStages() {
  return std::move(stages_);
}

}  // namespace alicoco::obs::prof
