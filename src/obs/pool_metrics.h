// ThreadPoolObserver -> metrics registry adapter: queue-depth gauge (with
// high-water mark), queue-wait and task-run latency histograms, and a
// completed-task counter, all under one name prefix.
//
//   obs::ThreadPoolMetrics pool_metrics(&registry, "pipeline.scorer_pool");
//   ThreadPool pool(8);
//   pool.SetObserver(&pool_metrics);
//   ... registry now carries pipeline.scorer_pool.queue_depth,
//       .queue_wait_us, .task_run_us, .tasks_completed

#ifndef ALICOCO_OBS_POOL_METRICS_H_
#define ALICOCO_OBS_POOL_METRICS_H_

#include <string>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace alicoco::obs {

class ThreadPoolMetrics : public ThreadPoolObserver {
 public:
  /// Instruments under `<prefix>.queue_depth` etc.; `registry` must
  /// outlive this adapter, and the adapter must outlive (or be detached
  /// from) the pool it observes.
  ThreadPoolMetrics(Registry* registry, const std::string& prefix);

  void OnQueueDepth(size_t depth) override;
  void OnTaskDone(double queue_wait_us, double run_us) override;

 private:
  Gauge* queue_depth_;
  Histogram* queue_wait_us_;
  Histogram* task_run_us_;
  Counter* tasks_completed_;
};

}  // namespace alicoco::obs

#endif  // ALICOCO_OBS_POOL_METRICS_H_
