// Export surfaces for the observability layer.
//
// Two wire formats plus a log sink, so one output directory can hold the
// full picture of a run:
//
//   metrics.prom  — Prometheus text exposition of a Registry snapshot
//   trace.jsonl   — one JSON object per finished span, id order
//   build.log     — Logger records routed through obs::FileLogSink
//
// Both exporters are deterministic for a deterministic input: metrics are
// emitted in sorted-name order, spans in id order, and all doubles with
// "%.6g", so golden tests can compare byte-for-byte.

#ifndef ALICOCO_OBS_EXPORTERS_H_
#define ALICOCO_OBS_EXPORTERS_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alicoco::obs {

/// Prometheus text exposition (v0.0.4 style) of everything in `registry`.
/// Metric names are sanitized ('.', '-' -> '_'); counters get a `_total`
/// suffix; histograms expand to `_bucket{le=...}` / `_sum` / `_count`
/// lines plus p50/p95/p99 `{quantile=...}` gauges.
std::string ExportPrometheusText(const Registry& registry);

/// One JSON object per span, sorted by span id:
///   {"span_id":3,"parent_id":1,"name":"pipeline.mining",
///    "start_us":120,"duration_us":980,"attributes":{"epochs":"2"}}
std::string ExportTraceJsonl(const std::vector<SpanRecord>& spans);

/// JSON string-escaping helper shared by the exporters.
std::string JsonEscape(const std::string& s);

/// Thread-safe Logger sink appending canonical lines to one file. Install
/// with Logger::SetSink and keep alive until logging ends (unset the sink
/// before destroying it).
class FileLogSink : public LogSink {
 public:
  /// Truncates `path`; check ok() before installing.
  explicit FileLogSink(const std::string& path);
  ~FileLogSink() override;

  /// IOError when the file could not be opened.
  Status status() const;

  void Write(const LogRecord& record) override ALICOCO_EXCLUDES(mu_);

 private:
  Mutex mu_{"obs.log_sink.mu"};
  std::ofstream out_ ALICOCO_GUARDED_BY(mu_);
  Status status_;
};

}  // namespace alicoco::obs

#endif  // ALICOCO_OBS_EXPORTERS_H_
