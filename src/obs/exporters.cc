#include "obs/exporters.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace alicoco::obs {
namespace {

/// Prometheus metric names: [a-zA-Z0-9_:], and the first character must
/// not be a digit. Everything else maps to '_'; a leading digit (or an
/// empty name) gets a '_' prefix rather than silently corrupting the
/// exposition format.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

/// Label names are narrower than metric names: no ':' allowed.
std::string SanitizeLabelName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

/// Label values may be any UTF-8, but backslash, double-quote and
/// newline must be escaped per the exposition format.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Registry names may carry labels inline: `base{key=value,...}` (the
/// profiling tier names per-mutex instruments this way). Values are
/// taken verbatim up to ',' or '}' — no quoting in the registry syntax.
struct ParsedName {
  std::string base;
  std::vector<std::pair<std::string, std::string>> labels;
};

ParsedName ParseName(const std::string& name) {
  ParsedName out;
  size_t open = name.find('{');
  if (open == std::string::npos || name.back() != '}') {
    out.base = name;
    return out;
  }
  out.base = name.substr(0, open);
  std::string body = name.substr(open + 1, name.size() - open - 2);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    std::string item = body.substr(pos, comma - pos);
    size_t eq = item.find('=');
    if (eq != std::string::npos) {
      out.labels.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    } else if (!item.empty()) {
      out.labels.emplace_back(item, "");
    }
    pos = comma + 1;
  }
  return out;
}

/// Renders `{a="1",b="2"}` (optionally with one extra pair appended) or
/// the empty string when there is nothing to render.
std::string RenderLabels(const ParsedName& parsed,
                         const std::string& extra_key = "",
                         const std::string& extra_value = "") {
  if (parsed.labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : parsed.labels) {
    if (!first) out += ",";
    first = false;
    out += SanitizeLabelName(key) + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + EscapeLabelValue(extra_value) + "\"";
  }
  out += "}";
  return out;
}

/// Prometheus spells non-values "NaN" (capital N's); %g would print
/// "nan" or "-nan" depending on the libc.
std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  return StringPrintf("%.6g", v);
}

/// One TYPE line per metric family: labeled series of the same base
/// (`lock_wait_us{mutex="a"}`, `{mutex="b"}`) share a single header.
void AppendTypeLine(const std::string& metric, const char* type,
                    std::set<std::string>* seen, std::string* out) {
  if (!seen->insert(metric).second) return;
  out->append("# TYPE " + metric + " " + type + "\n");
}

void AppendHistogram(const ParsedName& parsed, const Histogram& histogram,
                     std::set<std::string>* seen_types, std::string* out) {
  Histogram::Snapshot snap = histogram.snapshot();
  const std::string name = SanitizeName(parsed.base);
  const std::string labels = RenderLabels(parsed);
  AppendTypeLine(name, "histogram", seen_types, out);
  uint64_t cumulative = 0;
  size_t last_nonzero = 0;
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] != 0) last_nonzero = i;
  }
  for (size_t i = 0; i <= last_nonzero; ++i) {
    cumulative += snap.buckets[i];
    out->append(name + "_bucket" +
                RenderLabels(parsed, "le",
                             FormatDouble(Histogram::BucketUpperBound(i))) +
                " " + std::to_string(cumulative) + "\n");
  }
  out->append(name + "_bucket" + RenderLabels(parsed, "le", "+Inf") + " " +
              std::to_string(snap.count) + "\n");
  out->append(name + "_sum" + labels + " " + FormatDouble(snap.sum) + "\n");
  out->append(name + "_count" + labels + " " + std::to_string(snap.count) +
              "\n");
  for (double q : {0.5, 0.95, 0.99}) {
    out->append(name + RenderLabels(parsed, "quantile", FormatDouble(q)) +
                " " + FormatDouble(histogram.Quantile(q)) + "\n");
  }
}

}  // namespace

std::string ExportPrometheusText(const Registry& registry) {
  std::string out;
  std::set<std::string> seen_types;
  for (const std::string& name : registry.CounterNames()) {
    const Counter* counter = registry.FindCounter(name);
    if (counter == nullptr) continue;  // raced removal cannot happen; belt
    ParsedName parsed = ParseName(name);
    std::string metric = SanitizeName(parsed.base) + "_total";
    AppendTypeLine(metric, "counter", &seen_types, &out);
    out.append(metric + RenderLabels(parsed) + " " +
               std::to_string(counter->value()) + "\n");
  }
  for (const std::string& name : registry.GaugeNames()) {
    const Gauge* gauge = registry.FindGauge(name);
    if (gauge == nullptr) continue;
    ParsedName parsed = ParseName(name);
    std::string metric = SanitizeName(parsed.base);
    std::string labels = RenderLabels(parsed);
    AppendTypeLine(metric, "gauge", &seen_types, &out);
    out.append(metric + labels + " " + FormatDouble(gauge->value()) + "\n");
    out.append(metric + "_max" + labels + " " + FormatDouble(gauge->max()) +
               "\n");
  }
  for (const std::string& name : registry.HistogramNames()) {
    const Histogram* histogram = registry.FindHistogram(name);
    if (histogram == nullptr) continue;
    AppendHistogram(ParseName(name), *histogram, &seen_types, &out);
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ExportTraceJsonl(const std::vector<SpanRecord>& spans) {
  // Sort through an index so the records themselves are never copied.
  std::vector<const SpanRecord*> order;
  order.reserve(spans.size());
  for (const SpanRecord& s : spans) order.push_back(&s);
  std::sort(order.begin(), order.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->id < b->id;
            });
  std::string out;
  for (const SpanRecord* span_ptr : order) {
    const SpanRecord& span = *span_ptr;
    out.append(StringPrintf(
        "{\"span_id\":%llu,\"parent_id\":%llu,\"name\":\"%s\","
        "\"start_us\":%llu,\"duration_us\":%llu,\"attributes\":{",
        static_cast<unsigned long long>(span.id),
        static_cast<unsigned long long>(span.parent_id),
        JsonEscape(span.name).c_str(),
        static_cast<unsigned long long>(span.start_us),
        static_cast<unsigned long long>(span.duration_us)));
    for (size_t i = 0; i < span.attributes.size(); ++i) {
      if (i != 0) out.push_back(',');
      out.append("\"" + JsonEscape(span.attributes[i].first) + "\":\"" +
                 JsonEscape(span.attributes[i].second) + "\"");
    }
    out.append("}}\n");
  }
  return out;
}

FileLogSink::FileLogSink(const std::string& path) : out_(path) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open log file: " + path);
  }
}

FileLogSink::~FileLogSink() = default;

Status FileLogSink::status() const { return status_; }

void FileLogSink::Write(const LogRecord& record) {
  // Format outside the critical section: the lock only needs to cover the
  // stream write, not the string assembly, and Write is called from every
  // logging thread at once.
  const std::string line = Logger::FormatRecord(record);
  MutexLock lock(mu_);
  if (!out_.is_open()) return;
  out_ << line << "\n";
  out_.flush();
}

}  // namespace alicoco::obs
