#include "obs/exporters.h"

#include <algorithm>

#include "common/string_util.h"

namespace alicoco::obs {
namespace {

/// Prometheus metric names: [a-zA-Z0-9_:]; we map everything else to '_'.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string FormatDouble(double v) { return StringPrintf("%.6g", v); }

void AppendHistogram(const std::string& name, const Histogram& histogram,
                     std::string* out) {
  Histogram::Snapshot snap = histogram.snapshot();
  out->append("# TYPE " + name + " histogram\n");
  uint64_t cumulative = 0;
  size_t last_nonzero = 0;
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] != 0) last_nonzero = i;
  }
  for (size_t i = 0; i <= last_nonzero; ++i) {
    cumulative += snap.buckets[i];
    out->append(name + "_bucket{le=\"" +
                FormatDouble(Histogram::BucketUpperBound(i)) + "\"} " +
                std::to_string(cumulative) + "\n");
  }
  out->append(name + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) +
              "\n");
  out->append(name + "_sum " + FormatDouble(snap.sum) + "\n");
  out->append(name + "_count " + std::to_string(snap.count) + "\n");
  for (double q : {0.5, 0.95, 0.99}) {
    out->append(name + "{quantile=\"" + FormatDouble(q) + "\"} " +
                FormatDouble(histogram.Quantile(q)) + "\n");
  }
}

}  // namespace

std::string ExportPrometheusText(const Registry& registry) {
  std::string out;
  for (const std::string& name : registry.CounterNames()) {
    const Counter* counter = registry.FindCounter(name);
    if (counter == nullptr) continue;  // raced removal cannot happen; belt
    std::string metric = SanitizeName(name) + "_total";
    out.append("# TYPE " + metric + " counter\n");
    out.append(metric + " " + std::to_string(counter->value()) + "\n");
  }
  for (const std::string& name : registry.GaugeNames()) {
    const Gauge* gauge = registry.FindGauge(name);
    if (gauge == nullptr) continue;
    std::string metric = SanitizeName(name);
    out.append("# TYPE " + metric + " gauge\n");
    out.append(metric + " " + FormatDouble(gauge->value()) + "\n");
    out.append(metric + "_max " + FormatDouble(gauge->max()) + "\n");
  }
  for (const std::string& name : registry.HistogramNames()) {
    const Histogram* histogram = registry.FindHistogram(name);
    if (histogram == nullptr) continue;
    AppendHistogram(SanitizeName(name), *histogram, &out);
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ExportTraceJsonl(const std::vector<SpanRecord>& spans) {
  // Sort through an index so the records themselves are never copied.
  std::vector<const SpanRecord*> order;
  order.reserve(spans.size());
  for (const SpanRecord& s : spans) order.push_back(&s);
  std::sort(order.begin(), order.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->id < b->id;
            });
  std::string out;
  for (const SpanRecord* span_ptr : order) {
    const SpanRecord& span = *span_ptr;
    out.append(StringPrintf(
        "{\"span_id\":%llu,\"parent_id\":%llu,\"name\":\"%s\","
        "\"start_us\":%llu,\"duration_us\":%llu,\"attributes\":{",
        static_cast<unsigned long long>(span.id),
        static_cast<unsigned long long>(span.parent_id),
        JsonEscape(span.name).c_str(),
        static_cast<unsigned long long>(span.start_us),
        static_cast<unsigned long long>(span.duration_us)));
    for (size_t i = 0; i < span.attributes.size(); ++i) {
      if (i != 0) out.push_back(',');
      out.append("\"" + JsonEscape(span.attributes[i].first) + "\":\"" +
                 JsonEscape(span.attributes[i].second) + "\"");
    }
    out.append("}}\n");
  }
  return out;
}

FileLogSink::FileLogSink(const std::string& path) : out_(path) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open log file: " + path);
  }
}

FileLogSink::~FileLogSink() = default;

Status FileLogSink::status() const { return status_; }

void FileLogSink::Write(const LogRecord& record) {
  // Format outside the critical section: the lock only needs to cover the
  // stream write, not the string assembly, and Write is called from every
  // logging thread at once.
  const std::string line = Logger::FormatRecord(record);
  MutexLock lock(mu_);
  if (!out_.is_open()) return;
  out_ << line << "\n";
  out_.flush();
}

}  // namespace alicoco::obs
