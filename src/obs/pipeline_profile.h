// The BENCH_pipeline.json profile: the repo's perf-trajectory file format.
//
// obs_report runs the bench world through the seven-stage builder and
// serializes one PipelineProfile per run; the checked-in BENCH_pipeline.json
// at the repo root is the committed baseline that tools/ci.sh compares
// fresh runs against (a stage slower than baseline * max_ratio + slack_ms
// fails the gate). Future perf PRs append to this trajectory by
// regenerating the baseline after a verified improvement.
//
// Schema (alicoco.bench_pipeline.v1):
//
//   {
//     "schema": "alicoco.bench_pipeline.v1",
//     "world": "bench",
//     "total_ms": 2345.6,
//     "stages": [
//       {"name": "mining", "wall_ms": 123.4,
//        "counters": {"candidates": 321, "accepted": 42}},
//       ...
//     ]
//   }
//
// Stage order is execution order. Counters are doubles (counts, rates,
// thresholds). Parsing accepts any field order and ignores unknown keys,
// so the format can grow without breaking old readers.

#ifndef ALICOCO_OBS_PIPELINE_PROFILE_H_
#define ALICOCO_OBS_PIPELINE_PROFILE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alicoco::obs {

/// One pipeline stage's measured run.
struct StageProfile {
  std::string name;
  double wall_ms = 0;
  std::map<std::string, double> counters;  ///< sorted for stable output
};

struct PipelineProfile {
  std::string world = "bench";
  double total_ms = 0;
  std::vector<StageProfile> stages;

  const StageProfile* FindStage(const std::string& name) const;

  std::string ToJson() const;
  [[nodiscard]] static Result<PipelineProfile> FromJson(
      const std::string& text);
};

/// Assembles a profile from one instrumented builder run: every
/// `pipeline.<stage>` span that is a direct child of the `pipeline.build`
/// root (which provides total_ms) becomes a stage in span-id order,
/// carrying every Counter and Gauge in `registry` whose name starts with
/// `pipeline.<stage>.`. Deeper spans (e.g. `pipeline.mining.epoch`) are
/// trace detail, not stages.
PipelineProfile BuildPipelineProfile(const std::vector<SpanRecord>& spans,
                                     const Registry& registry);

/// Regression gate: returns one human-readable line per baseline stage
/// whose current wall time exceeds `baseline * max_ratio + slack_ms`, or
/// that is missing from `current` entirely. Empty result = gate passes.
/// The slack term absorbs CI noise on stages whose absolute time is tiny.
std::vector<std::string> CompareToBaseline(const PipelineProfile& baseline,
                                           const PipelineProfile& current,
                                           double max_ratio, double slack_ms);

}  // namespace alicoco::obs

#endif  // ALICOCO_OBS_PIPELINE_PROFILE_H_
