#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace alicoco::obs {

void Histogram::Observe(double value) {
  if (value < 0 || !std::isfinite(value)) value = 0;
  size_t bucket = BucketIndex(value);
  MutexLock lock(mu_);
  ++buckets_[bucket];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

uint64_t Histogram::count() const {
  MutexLock lock(mu_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lock(mu_);
  return sum_;
}

double Histogram::min() const {
  MutexLock lock(mu_);
  return min_;
}

double Histogram::max() const {
  MutexLock lock(mu_);
  return max_;
}

double Histogram::mean() const {
  MutexLock lock(mu_);
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

Histogram::Snapshot Histogram::snapshot() const {
  MutexLock lock(mu_);
  Snapshot snap;
  snap.buckets = buckets_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

double Histogram::Quantile(double q) const {
  return QuantileFromSnapshot(snapshot(), q);
}

size_t Histogram::BucketIndex(double value) {
  if (value < 1) return 0;
  // Bucket i >= 1 holds [2^(i-1), 2^i): exponent+1 of the floored log2.
  int exponent = std::ilogb(value);
  size_t index = static_cast<size_t>(exponent) + 1;
  return std::min(index, kNumBuckets - 1);
}

double Histogram::BucketUpperBound(size_t index) {
  return std::ldexp(1.0, static_cast<int>(index));
}

double Histogram::QuantileFromSnapshot(const Snapshot& snap, double q) {
  // Documented sentinels: an empty histogram has no quantiles at all
  // (NaN, so a 0 can never masquerade as "we measured zero latency"),
  // and a single sample IS every quantile — interpolation across its
  // power-of-two bucket would report a value nobody observed.
  if (snap.count == 0) return std::numeric_limits<double>::quiet_NaN();
  if (snap.count == 1) return snap.min;
  if (std::isnan(q)) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank position, then linear interpolation inside the bucket.
  double rank = q * static_cast<double>(snap.count - 1);
  uint64_t target = static_cast<uint64_t>(rank);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = snap.buckets[i];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket <= target) {
      cumulative += in_bucket;
      continue;
    }
    double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
    double upper = BucketUpperBound(i);
    double within = (rank - static_cast<double>(cumulative)) /
                    static_cast<double>(in_bucket);
    double estimate = lower + (upper - lower) * within;
    return std::clamp(estimate, snap.min, snap.max);
  }
  return snap.max;
}

bool Registry::NameTaken(const std::string& name) const {
  return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
         histograms_.count(name) != 0;
}

Counter* Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  ALICOCO_CHECK(!NameTaken(name))
      << "metric '" << name << "' already registered as another kind";
  return counters_.emplace(name, std::make_unique<Counter>())
      .first->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  ALICOCO_CHECK(!NameTaken(name))
      << "metric '" << name << "' already registered as another kind";
  return gauges_.emplace(name, std::make_unique<Gauge>()).first->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  ALICOCO_CHECK(!NameTaken(name))
      << "metric '" << name << "' already registered as another kind";
  return histograms_.emplace(name, std::make_unique<Histogram>())
      .first->second.get();
}

namespace {
template <typename Map>
std::vector<std::string> SortedKeys(const Map& map) {
  std::vector<std::string> names;
  names.reserve(map.size());
  for (const auto& [name, unused] : map) names.push_back(name);
  return names;  // std::map iterates in key order already
}
}  // namespace

std::vector<std::string> Registry::CounterNames() const {
  MutexLock lock(mu_);
  return SortedKeys(counters_);
}

std::vector<std::string> Registry::GaugeNames() const {
  MutexLock lock(mu_);
  return SortedKeys(gauges_);
}

std::vector<std::string> Registry::HistogramNames() const {
  MutexLock lock(mu_);
  return SortedKeys(histograms_);
}

const Counter* Registry::FindCounter(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

Registry& Registry::Default() {
  static Registry instance;
  return instance;
}

}  // namespace alicoco::obs
