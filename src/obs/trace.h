// Dapper-style span tracing for the builder pipeline and serving paths.
//
// A Tracer collects finished SpanRecords; a ScopedSpan is the RAII handle
// that opens a span on construction and records it on destruction.
// Parent/child relationships are tracked per thread: a span started while
// another span from the same tracer is open on the same thread becomes its
// child, so nested pipeline stages show up as a tree in the JSONL export.
//
//   obs::Tracer tracer;
//   {
//     obs::ScopedSpan build(&tracer, "pipeline.build");
//     {
//       obs::ScopedSpan stage(&tracer, "pipeline.mining");
//       stage.AddAttribute("epochs", "2");
//     }  // recorded with build's id as parent
//   }
//
// The clock is injectable (microsecond ticks, monotonic) so exporter
// goldens are deterministic; the default reads steady_clock. A null
// tracer pointer turns every ScopedSpan operation into a no-op, which is
// how uninstrumented pipeline runs stay zero-cost.

#ifndef ALICOCO_OBS_TRACE_H_
#define ALICOCO_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace alicoco::obs {

/// One finished span. Ids are 1-based and unique per tracer; parent_id 0
/// means a root span.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  std::string name;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  /// Insertion-ordered key/value annotations (counts, thresholds, ...).
  std::vector<std::pair<std::string, std::string>> attributes;
};

class ScopedSpan;

/// Thread-safe span collector.
class Tracer {
 public:
  /// Monotonic microsecond clock.
  using Clock = std::function<uint64_t()>;

  Tracer();                       ///< steady_clock-backed
  explicit Tracer(Clock clock);   ///< injectable for deterministic tests

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Finished spans in completion order.
  std::vector<SpanRecord> Records() const ALICOCO_EXCLUDES(mu_);
  /// Returns the finished spans and clears the collection.
  std::vector<SpanRecord> Drain() ALICOCO_EXCLUDES(mu_);
  size_t size() const ALICOCO_EXCLUDES(mu_);

  uint64_t NowUs() const { return clock_(); }

  /// Observer invoked (outside the tracer lock, on the closing thread)
  /// for every finished span, in addition to normal collection — the
  /// flight recorder uses this to keep a ring of recent spans. Set before
  /// spans start closing and keep the callee alive until tracing ends;
  /// the listener must be thread-safe.
  using SpanListener = std::function<void(const SpanRecord&)>;
  void SetSpanListener(SpanListener listener);

 private:
  friend class ScopedSpan;

  uint64_t NextId() ALICOCO_EXCLUDES(mu_);
  void Record(SpanRecord record) ALICOCO_EXCLUDES(mu_);

  Clock clock_;
  // Named: every span open/close crosses this lock, so profiled runs
  // surface tracer contention alongside the pool's.
  mutable Mutex mu_{"obs.tracer.mu"};
  std::vector<SpanRecord> finished_ ALICOCO_GUARDED_BY(mu_);
  uint64_t next_id_ ALICOCO_GUARDED_BY(mu_) = 1;
  SpanListener listener_;  // written once before tracing, then read-only
};

/// RAII span handle. Not copyable or movable: a span is opened and closed
/// in one lexical scope, which is what makes the per-thread parent chain
/// well-formed. Tolerates a null tracer (every method is then a no-op).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddAttribute(const std::string& key, const std::string& value);
  void AddAttribute(const std::string& key, uint64_t value);
  void AddAttribute(const std::string& key, double value);

  /// Microseconds since the span opened (0 with a null tracer).
  uint64_t ElapsedUs() const;

  uint64_t id() const { return record_.id; }
  uint64_t parent_id() const { return record_.parent_id; }

 private:
  Tracer* tracer_;  // null = disabled
  SpanRecord record_;
  // Next-outer open span on this thread (any tracer), forming the
  // per-thread stack the parent lookup walks; restored as the innermost
  // span on close. Null-tracer spans stay off the stack entirely.
  const ScopedSpan* enclosing_ = nullptr;
};

}  // namespace alicoco::obs

#endif  // ALICOCO_OBS_TRACE_H_
