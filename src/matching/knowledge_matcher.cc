#include "matching/knowledge_matcher.h"

#include "common/logging.h"
#include "matching/match_pyramid.h"

namespace alicoco::matching {

KnowledgeMatcher::KnowledgeMatcher(const KnowledgeMatcherConfig& config,
                                   const KnowledgeResources& resources,
                                   const text::SkipgramModel* embeddings,
                                   const text::Vocabulary* corpus_vocab)
    : NeuralMatcherBase(config.base, embeddings, corpus_vocab),
      kcfg_(config),
      res_(resources) {
  ALICOCO_CHECK(res_.pos_tagger != nullptr) << "POS tagger required";
  ALICOCO_CHECK_GT(kcfg_.cnn_filters, 0);
  ALICOCO_CHECK_GT(kcfg_.cnn_window, 0);
  ALICOCO_CHECK_GT(kcfg_.pos_dim, 0);
  ALICOCO_CHECK_GT(kcfg_.pyramid_layers, 0);
  ALICOCO_CHECK_GT(kcfg_.pool_grid, 0);
  if (kcfg_.use_knowledge) {
    ALICOCO_CHECK(res_.gloss_encoder != nullptr && res_.gloss_lookup &&
                  res_.concept_classes && res_.num_classes > 0)
        << "use_knowledge requires gloss and class resources";
  }
}

void KnowledgeMatcher::BuildModel() {
  int d = config_.embed_dim;
  int f = kcfg_.cnn_filters;
  emb_ = MakeEmbedding("emb");
  pos_emb_ = std::make_unique<nn::Embedding>(
      &store_, "pos_emb", text::kNumPosTags, kcfg_.pos_dim, &init_rng_);
  int in_dim = d + kcfg_.pos_dim;
  concept_cnn_ = std::make_unique<nn::Conv1D>(&store_, "concept_cnn", in_dim,
                                              f, kcfg_.cnn_window,
                                              &init_rng_);
  item_cnn_ = std::make_unique<nn::Conv1D>(&store_, "item_cnn", in_dim, f,
                                           kcfg_.cnn_window, &init_rng_);
  att_w1_ = std::make_unique<nn::Linear>(&store_, "att_w1", f, f, &init_rng_);
  att_w2_ = std::make_unique<nn::Linear>(&store_, "att_w2", f, f, &init_rng_);
  att_v_ = store_.Create("att_v", f, 1, nn::ParameterStore::Init::kXavier,
                         &init_rng_);
  if (kcfg_.use_knowledge) {
    gloss_proj_ = std::make_unique<nn::Linear>(
        &store_, "gloss_proj", res_.gloss_encoder->dim(), d, &init_rng_);
    class_emb_ = std::make_unique<nn::Embedding>(
        &store_, "class_emb", res_.num_classes, d, &init_rng_);
  }
  for (int k = 0; k < kcfg_.pyramid_layers; ++k) {
    // Near-identity init: layer 0 starts as a plain dot-product matrix (the
    // MatchPyramid interaction); later layers perturb it so the K layers
    // learn distinct similarity facets.
    nn::Parameter* wk = store_.Create("pyramid" + std::to_string(k), d, d,
                                      nn::ParameterStore::Init::kGaussian,
                                      &init_rng_, 0.02f * (k + 1));
    for (int j = 0; j < d; ++j) wk->value.At(j, j) += 1.0f;
    pyramid_.push_back(wk);
  }
  int grid_feats = kcfg_.pool_grid * kcfg_.pool_grid + 4;
  pyramid_mlp_ = std::make_unique<nn::Mlp>(
      &store_, "pyramid_mlp",
      std::vector<int>{kcfg_.pyramid_layers * grid_feats, config_.hidden},
      &init_rng_);
  int head_in = config_.hidden + (kcfg_.use_attention_channel ? 3 * f : 0);
  head_ = std::make_unique<nn::Mlp>(
      &store_, "head", std::vector<int>{head_in, config_.hidden, 1},
      &init_rng_);
}

void KnowledgeMatcher::CollectQuantPlan(nn::quant::QuantPlan* plan) const {
  emb_->AppendQuantPlan(plan);
  pos_emb_->AppendQuantPlan(plan);
  concept_cnn_->AppendQuantPlan(plan);
  item_cnn_->AppendQuantPlan(plan);
  att_w1_->AppendQuantPlan(plan);
  att_w2_->AppendQuantPlan(plan);
  if (kcfg_.use_knowledge) {
    gloss_proj_->AppendQuantPlan(plan);
    class_emb_->AppendQuantPlan(plan);
  }
  // The bilinear pyramid maps feed kw * Wk, so they quantize transposed
  // like Linear weights. att_v_ (f x 1) stays fp32 passthrough.
  for (const nn::Parameter* wk : pyramid_) {
    plan->push_back({wk, /*transpose=*/true});
  }
  pyramid_mlp_->AppendQuantPlan(plan);
  head_->AppendQuantPlan(plan);
}

void KnowledgeMatcher::AttachQuantizedWeights(
    const nn::quant::QuantizedStore& store) {
  emb_->AttachQuantized(store);
  pos_emb_->AttachQuantized(store);
  concept_cnn_->AttachQuantized(store);
  item_cnn_->AttachQuantized(store);
  att_w1_->AttachQuantized(store);
  att_w2_->AttachQuantized(store);
  if (kcfg_.use_knowledge) {
    gloss_proj_->AttachQuantized(store);
    class_emb_->AttachQuantized(store);
  }
  pyramid_q_.clear();
  pyramid_q_.reserve(pyramid_.size());
  for (const nn::Parameter* wk : pyramid_) {
    const nn::quant::QuantizedTensor* q = store.FindQuantized(wk->name);
    ALICOCO_CHECK(q != nullptr)
        << "quantized store has no tensor for " << wk->name;
    ALICOCO_CHECK(q->rows() == wk->value.cols() &&
                  q->cols() == wk->value.rows())
        << "quantized shape mismatch for " << wk->name;
    pyramid_q_.push_back(q);
  }
  pyramid_mlp_->AttachQuantized(store);
  head_->AttachQuantized(store);
}

void KnowledgeMatcher::DetachQuantizedWeights() {
  emb_->DetachQuantized();
  pos_emb_->DetachQuantized();
  concept_cnn_->DetachQuantized();
  item_cnn_->DetachQuantized();
  if (gloss_proj_ != nullptr) gloss_proj_->DetachQuantized();
  if (class_emb_ != nullptr) class_emb_->DetachQuantized();
  att_w1_->DetachQuantized();
  att_w2_->DetachQuantized();
  pyramid_q_.clear();
  pyramid_mlp_->DetachQuantized();
  head_->DetachQuantized();
}

nn::Graph::Var KnowledgeMatcher::Logit(nn::Graph* g,
                                       const std::vector<int>& concept_ids,
                                       const std::vector<int>& item_ids,
                                       bool train, Rng* rng) const {
  auto encode_side = [&](const std::vector<int>& ids,
                         const nn::Conv1D& cnn) {
    std::vector<int> pos_ids;
    pos_ids.reserve(ids.size());
    for (int id : ids) {
      pos_ids.push_back(
          static_cast<int>(res_.pos_tagger->Tag(vocab_.Token(id))));
    }
    nn::Graph::Var words = emb_->Lookup(g, ids);
    nn::Graph::Var pos = pos_emb_->Lookup(g, pos_ids);
    nn::Graph::Var x = g->ConcatCols({words, pos});
    x = g->Dropout(x, 0.1f, train, rng);
    return cnn.Apply(g, x);
  };

  nn::Graph::Var w_enc = encode_side(concept_ids, *concept_cnn_);  // m x f
  nn::Graph::Var t_enc = encode_side(item_ids, *item_cnn_);        // l x f

  // Two-way additive attention (Eq. 11-14).
  nn::Graph::Var att = g->AdditiveAttention(att_w1_->Apply(g, w_enc),
                                            att_w2_->Apply(g, t_enc),
                                            g->Use(att_v_));  // m x l
  nn::Graph::Var alpha_w =
      g->SoftmaxRows(g->Transpose(g->SumCols(att)));  // 1 x m
  nn::Graph::Var alpha_t = g->SoftmaxRows(g->SumRows(att));  // 1 x l
  nn::Graph::Var c = g->MatMul(alpha_w, w_enc);  // 1 x f
  nn::Graph::Var i = g->MatMul(alpha_t, t_enc);  // 1 x f

  // Knowledge sequence kw: concept word embeddings, plus gloss vectors and
  // linked-class embeddings when knowledge is on (Eq. 15-16).
  std::vector<nn::Graph::Var> kw_parts = {emb_->Lookup(g, concept_ids)};
  if (kcfg_.use_knowledge) {
    std::vector<std::string> tokens = vocab_.Decode(concept_ids);
    nn::Tensor gloss_mat(static_cast<int>(tokens.size()),
                         res_.gloss_encoder->dim());
    for (size_t w = 0; w < tokens.size(); ++w) {
      auto gloss = res_.gloss_lookup(tokens[w]);
      if (gloss.empty()) continue;
      auto vec = res_.gloss_encoder->Encode(gloss);
      ALICOCO_DCHECK_EQ(vec.size(),
                        static_cast<size_t>(res_.gloss_encoder->dim()));
      for (int k = 0; k < res_.gloss_encoder->dim(); ++k) {
        gloss_mat.At(static_cast<int>(w), k) = vec[static_cast<size_t>(k)];
      }
    }
    kw_parts.push_back(
        g->Tanh(gloss_proj_->Apply(g, g->Input(std::move(gloss_mat)))));
    std::vector<int> classes = res_.concept_classes(tokens);
    if (!classes.empty()) {
      for (int& cid : classes) {
        ALICOCO_CHECK(cid >= 0 && cid < res_.num_classes);
      }
      kw_parts.push_back(class_emb_->Lookup(g, classes));
    }
  }
  nn::Graph::Var kw = g->ConcatRows(kw_parts);          // (m+g+m') x d
  nn::Graph::Var t_words = emb_->Lookup(g, item_ids);   // l x d

  // K-layer bilinear matching pyramid (Eq. 16-17): per layer, a dynamic
  // grid pool plus best-alignment statistics (the paper's per-layer CNN +
  // max-pooling): max/mean of each side's best-match scores.
  std::vector<nn::Graph::Var> layer_feats;
  layer_feats.reserve(pyramid_.size());
  for (size_t k = 0; k < pyramid_.size(); ++k) {
    nn::Graph::Var proj =
        pyramid_q_.empty() ? g->MatMul(kw, g->Use(pyramid_[k]))
                           : g->MatMulQuant(kw, *pyramid_q_[k]);
    nn::Graph::Var match = g->MatMulTransB(proj, t_words);
    nn::Graph::Var col_best = g->MaxRows(match);                // 1 x l
    nn::Graph::Var row_best = g->MaxRows(g->Transpose(match));  // 1 x m'
    nn::Graph::Var stats = g->ConcatCols(
        {g->MaxRows(g->Transpose(col_best)),   // best overall (cols)
         g->MeanRows(g->Transpose(col_best)),  // mean col best
         g->MaxRows(g->Transpose(row_best)),   // best overall (rows)
         g->MeanRows(g->Transpose(row_best))});
    layer_feats.push_back(
        g->ConcatCols({DynamicGridPool(g, match, kcfg_.pool_grid), stats}));
  }
  nn::Graph::Var ci =
      g->Tanh(pyramid_mlp_->Apply(g, g->ConcatCols(layer_feats)));

  // Final score (Eq. 18); the elementwise product gives the MLP a direct
  // similarity channel between the attended representations.
  if (!kcfg_.use_attention_channel) return head_->Apply(g, ci);
  return head_->Apply(g, g->ConcatCols({c, i, g->Mul(c, i), ci}));
}

}  // namespace alicoco::matching
