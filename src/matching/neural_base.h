// Shared machinery for the trainable matchers: vocabulary construction over
// the dataset, pretrained-initialized embedding tables, and the BCE
// training loop.

#ifndef ALICOCO_MATCHING_NEURAL_BASE_H_
#define ALICOCO_MATCHING_NEURAL_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "matching/dataset.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/quant.h"
#include "obs/metrics.h"
#include "text/skipgram.h"
#include "text/vocabulary.h"

namespace alicoco::matching {

/// Hyperparameters shared by the neural matchers.
struct NeuralMatcherConfig {
  int embed_dim = 20;
  int hidden = 16;
  int epochs = 3;
  float lr = 0.01f;
  int batch_size = 16;
  uint64_t seed = 61;
};

/// Base for matchers trained with sigmoid cross-entropy over pair logits.
class NeuralMatcherBase : public Matcher {
 public:
  /// `embeddings`/`corpus_vocab` may be null: embeddings then start random.
  NeuralMatcherBase(const NeuralMatcherConfig& config,
                    const text::SkipgramModel* embeddings,
                    const text::Vocabulary* corpus_vocab);

  void Train(const MatchingDataset& dataset) final;

  double Score(const std::vector<std::string>& concept_tokens,
               const std::vector<std::string>& item_tokens,
               int64_t item_id) const final;

  /// When set, every Score() call records its latency (microseconds) into
  /// `histogram`; pass nullptr to detach. The histogram must outlive the
  /// matcher (registry-owned histograms always do).
  void set_score_latency_histogram(obs::Histogram* histogram) {
    score_latency_us_ = histogram;
  }

  // ---- quantized inference ----
  // After Train (or LoadQuantizedInference), Score can run through int8 or
  // fp16 weights: weight matrices and embedding tables go through the
  // quantized kernels, biases and other small parameters stay fp32.
  // Accuracy tolerances vs fp32 are documented in DESIGN.md §5 and
  // enforced by tests/matching/quantized_matching_test.cc.

  /// Quantizes the trained fp32 weights in place and routes Score through
  /// them. `mode` kNone reverts to fp32 scoring exactly (the fp32
  /// parameters are never modified).
  void EnableQuantizedInference(nn::quant::QuantMode mode);

  /// Persists the active quantized weights (requires a prior
  /// EnableQuantizedInference with a non-kNone mode).
  [[nodiscard]] Status SaveQuantized(const std::string& path) const;

  /// Loads quantized weights saved by SaveQuantized into this matcher and
  /// enables quantized scoring. The matcher must have been trained (the
  /// vocabulary and layer shapes come from training data); the fp32
  /// passthrough entries in the file overwrite the matching parameters so
  /// biases match the checkpoint.
  [[nodiscard]] Status LoadQuantizedInference(const std::string& path);

  /// Active quantization mode (kNone = fp32 scoring).
  nn::quant::QuantMode quantized_mode() const { return qmode_; }

 protected:
  /// Subclass hook: report every parameter to quantize (weight matrices
  /// and embedding tables, not biases).
  virtual void CollectQuantPlan(nn::quant::QuantPlan* plan) const = 0;
  /// Subclass hook: bind layers to the quantized tensors of `store`.
  virtual void AttachQuantizedWeights(const nn::quant::QuantizedStore& store)
      = 0;
  /// Subclass hook: revert layers to fp32 parameters.
  virtual void DetachQuantizedWeights() = 0;
  /// Builds the model's layers once the vocabulary is known.
  virtual void BuildModel() = 0;

  /// Pair logit (1x1). `train` enables dropout in subclasses.
  virtual nn::Graph::Var Logit(nn::Graph* g,
                               const std::vector<int>& concept_ids,
                               const std::vector<int>& item_ids, bool train,
                               Rng* rng) const = 0;

  /// Hook: subclasses may capture extra per-example context (the knowledge
  /// matcher resolves concept-linked primitives from tokens).
  virtual void ObserveVocabulary() {}

  /// Creates an embedding layer initialized from the pretrained table where
  /// token strings overlap.
  std::unique_ptr<nn::Embedding> MakeEmbedding(const std::string& name);

  std::vector<int> Encode(const std::vector<std::string>& tokens) const;

  NeuralMatcherConfig config_;
  const text::SkipgramModel* pretrained_;
  const text::Vocabulary* corpus_vocab_;
  text::Vocabulary vocab_;
  Rng init_rng_;
  nn::ParameterStore store_;
  bool trained_ = false;
  obs::Histogram* score_latency_us_ = nullptr;
  nn::quant::QuantizedStore qstore_;  ///< layers hold pointers into this
  nn::quant::QuantMode qmode_ = nn::quant::QuantMode::kNone;
};

}  // namespace alicoco::matching

#endif  // ALICOCO_MATCHING_NEURAL_BASE_H_
