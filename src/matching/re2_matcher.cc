#include "matching/re2_matcher.h"

namespace alicoco::matching {

void Re2Matcher::BuildModel() {
  int d = config_.embed_dim;
  emb_ = MakeEmbedding("emb");
  align_proj_ = std::make_unique<nn::Linear>(&store_, "align", d, d,
                                             &init_rng_);
  // Fusion input: [x; aligned; x - aligned; x * aligned] -> hidden.
  fuse_ = std::make_unique<nn::Linear>(&store_, "fuse", 4 * d,
                                       config_.hidden, &init_rng_);
  head_ = std::make_unique<nn::Mlp>(
      &store_, "head", std::vector<int>{2 * config_.hidden, config_.hidden, 1},
      &init_rng_);
}

void Re2Matcher::CollectQuantPlan(nn::quant::QuantPlan* plan) const {
  emb_->AppendQuantPlan(plan);
  align_proj_->AppendQuantPlan(plan);
  fuse_->AppendQuantPlan(plan);
  head_->AppendQuantPlan(plan);
}

void Re2Matcher::AttachQuantizedWeights(
    const nn::quant::QuantizedStore& store) {
  emb_->AttachQuantized(store);
  align_proj_->AttachQuantized(store);
  fuse_->AttachQuantized(store);
  head_->AttachQuantized(store);
}

void Re2Matcher::DetachQuantizedWeights() {
  emb_->DetachQuantized();
  align_proj_->DetachQuantized();
  fuse_->DetachQuantized();
  head_->DetachQuantized();
}

nn::Graph::Var Re2Matcher::FuseSide(nn::Graph* g, nn::Graph::Var self,
                                    nn::Graph::Var other) const {
  // Soft alignment: attention of self rows over other rows.
  nn::Graph::Var q = align_proj_->Apply(g, self);
  nn::Graph::Var k = align_proj_->Apply(g, other);
  nn::Graph::Var weights = g->SoftmaxRows(g->MatMulTransB(q, k));
  nn::Graph::Var aligned = g->MatMul(weights, other);  // rows(self) x d
  nn::Graph::Var fused = g->Relu(fuse_->Apply(
      g, g->ConcatCols({self, aligned, g->Sub(self, aligned),
                        g->Mul(self, aligned)})));
  return g->MaxRows(fused);  // 1 x hidden
}

nn::Graph::Var Re2Matcher::Logit(nn::Graph* g,
                                 const std::vector<int>& concept_ids,
                                 const std::vector<int>& item_ids, bool train,
                                 Rng* rng) const {
  nn::Graph::Var c = emb_->Lookup(g, concept_ids);
  nn::Graph::Var i = emb_->Lookup(g, item_ids);
  c = g->Dropout(c, 0.1f, train, rng);
  i = g->Dropout(i, 0.1f, train, rng);
  nn::Graph::Var vc = FuseSide(g, c, i);
  nn::Graph::Var vi = FuseSide(g, i, c);
  return head_->Apply(g, g->ConcatCols({vc, vi}));
}

}  // namespace alicoco::matching
