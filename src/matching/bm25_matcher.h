// BM25 lexical baseline for Table 6 — no learning, pure term matching, so
// it fails exactly where the paper says it does: semantic drift.

#ifndef ALICOCO_MATCHING_BM25_MATCHER_H_
#define ALICOCO_MATCHING_BM25_MATCHER_H_

#include "matching/dataset.h"
#include "text/bm25.h"

namespace alicoco::matching {

class Bm25Matcher : public Matcher {
 public:
  std::string name() const override { return "BM25"; }

  /// Indexes every distinct item appearing in the dataset.
  void Train(const MatchingDataset& dataset) override;

  double Score(const std::vector<std::string>& concept_tokens,
               const std::vector<std::string>& item_tokens,
               int64_t item_id) const override;

 private:
  text::Bm25Index index_;
};

}  // namespace alicoco::matching

#endif  // ALICOCO_MATCHING_BM25_MATCHER_H_
