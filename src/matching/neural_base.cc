#include "matching/neural_base.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "nn/serialize.h"

namespace alicoco::matching {

NeuralMatcherBase::NeuralMatcherBase(const NeuralMatcherConfig& config,
                                     const text::SkipgramModel* embeddings,
                                     const text::Vocabulary* corpus_vocab)
    : config_(config),
      pretrained_(embeddings),
      corpus_vocab_(corpus_vocab),
      init_rng_(config.seed) {
  if (pretrained_ != nullptr) {
    ALICOCO_CHECK(corpus_vocab_ != nullptr);
    ALICOCO_CHECK(pretrained_->dim() == config_.embed_dim)
        << "pretrained dim mismatch";
  }
}

std::unique_ptr<nn::Embedding> NeuralMatcherBase::MakeEmbedding(
    const std::string& name) {
  auto emb = std::make_unique<nn::Embedding>(
      &store_, name, vocab_.size(), config_.embed_dim, &init_rng_);
  if (pretrained_ != nullptr) {
    nn::Parameter* table = emb->parameter();
    for (int wid = 2; wid < vocab_.size(); ++wid) {
      int cid = corpus_vocab_->Id(vocab_.Token(wid));
      if (cid <= text::Vocabulary::kUnkId ||
          cid >= pretrained_->vocab_size()) {
        continue;
      }
      const float* e = pretrained_->Embedding(cid);
      for (int k = 0; k < config_.embed_dim; ++k) {
        table->value.At(wid, k) = e[k];
      }
    }
  }
  return emb;
}

std::vector<int> NeuralMatcherBase::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<int> ids = vocab_.Encode(tokens);
  if (ids.empty()) ids.push_back(text::Vocabulary::kUnkId);
  return ids;
}

void NeuralMatcherBase::EnableQuantizedInference(nn::quant::QuantMode mode) {
  ALICOCO_CHECK(trained_) << name()
                          << ": EnableQuantizedInference before Train";
  if (mode == nn::quant::QuantMode::kNone) {
    DetachQuantizedWeights();
    qstore_ = nn::quant::QuantizedStore();
    qmode_ = mode;
    return;
  }
  // Detach first: re-enabling with a different mode must not leave layers
  // pointing into the store being replaced.
  DetachQuantizedWeights();
  nn::quant::QuantPlan plan;
  CollectQuantPlan(&plan);
  ALICOCO_CHECK(!plan.empty()) << name() << ": empty quantization plan";
  qstore_ = nn::quant::QuantizeParams(store_, plan, mode);
  AttachQuantizedWeights(qstore_);
  qmode_ = mode;
  ALICOCO_LOG(Info) << name() << ": quantized inference enabled, mode="
                    << nn::quant::QuantModeName(mode) << ", "
                    << qstore_.quantized().size() << " tensors, "
                    << qstore_.TotalBytes() << " bytes";
}

Status NeuralMatcherBase::SaveQuantized(const std::string& path) const {
  if (qmode_ == nn::quant::QuantMode::kNone) {
    return Status::InvalidArgument(
        std::string(name()) + ": no quantized weights to save (call "
                              "EnableQuantizedInference first)");
  }
  return nn::SaveQuantizedStore(qstore_, path);
}

Status NeuralMatcherBase::LoadQuantizedInference(const std::string& path) {
  if (!trained_) {
    return Status::FailedPrecondition(
        std::string(name()) + ": LoadQuantizedInference before Train (layer "
                              "shapes come from training)");
  }
  nn::quant::QuantizedStore loaded;
  Status s = nn::LoadQuantizedStore(&loaded, path);
  if (!s.ok()) return s;
  // Validate before touching any state: every parameter must appear in the
  // file exactly once, in the section the plan puts it in.
  nn::quant::QuantPlan plan;
  CollectQuantPlan(&plan);
  size_t expect_quantized = 0;
  for (const auto& p : store_.params()) {
    bool planned = false;
    for (const auto& entry : plan) {
      if (entry.param == p.get()) {
        planned = true;
        break;
      }
    }
    if (planned) {
      ++expect_quantized;
      if (loaded.FindQuantized(p->name) == nullptr) {
        return Status::InvalidArgument("missing quantized tensor for " +
                                       p->name + " in " + path);
      }
      continue;
    }
    const nn::Tensor* fp = loaded.FindFp32(p->name);
    if (fp == nullptr) {
      return Status::InvalidArgument("missing fp32 tensor for " + p->name +
                                     " in " + path);
    }
    if (fp->rows() != p->value.rows() || fp->cols() != p->value.cols()) {
      return Status::InvalidArgument("shape mismatch for " + p->name +
                                     " in " + path);
    }
  }
  if (loaded.quantized().size() != expect_quantized ||
      loaded.fp32().size() != store_.params().size() - expect_quantized) {
    return Status::InvalidArgument("tensor count mismatch in " + path +
                                   " (wrong checkpoint for this model?)");
  }
  DetachQuantizedWeights();
  // The passthrough entries carry the checkpoint's biases etc.; copy them
  // into the live parameters so fp32-side compute matches the save.
  for (const auto& p : store_.params()) {
    const nn::Tensor* fp = loaded.FindFp32(p->name);
    if (fp != nullptr) p->value = *fp;
  }
  qstore_ = std::move(loaded);
  AttachQuantizedWeights(qstore_);  // CHECKs quantized shapes
  qmode_ = qstore_.mode();
  return Status::OK();
}

void NeuralMatcherBase::Train(const MatchingDataset& dataset) {
  ALICOCO_CHECK(!trained_);
  ALICOCO_CHECK(qmode_ == nn::quant::QuantMode::kNone)
      << name() << ": cannot train while quantized inference is enabled";
  ALICOCO_CHECK(!dataset.train.empty());
  for (const auto& ex : dataset.train) {
    for (const auto& t : ex.concept_tokens) vocab_.Add(t);
    for (const auto& t : ex.item_tokens) vocab_.Add(t);
  }
  ObserveVocabulary();
  BuildModel();

  nn::Adam adam(config_.lr);
  Rng rng(config_.seed ^ 0xBEAD);
  std::vector<size_t> order(dataset.train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    store_.ZeroGrad();
    int in_batch = 0;
    for (size_t idx : order) {
      const auto& ex = dataset.train[idx];
      nn::Graph g;
      nn::Graph::Var logit = Logit(&g, Encode(ex.concept_tokens),
                                   Encode(ex.item_tokens), true, &rng);
      nn::Tensor target(1, 1);
      target.At(0, 0) = static_cast<float>(ex.label);
      g.Backward(g.SigmoidCrossEntropyWithLogits(logit, target));
      if (++in_batch >= config_.batch_size) {
        adam.Step(&store_);
        store_.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      adam.Step(&store_);
      store_.ZeroGrad();
    }
  }
  trained_ = true;
}

double NeuralMatcherBase::Score(const std::vector<std::string>& concept_tokens,
                                const std::vector<std::string>& item_tokens,
                                int64_t item_id) const {
  (void)item_id;
  ALICOCO_CHECK(trained_) << name() << " scored before Train";
  std::chrono::steady_clock::time_point start;
  if (score_latency_us_ != nullptr) start = std::chrono::steady_clock::now();
  nn::Graph g;
  nn::Graph::Var logit =
      Logit(&g, Encode(concept_tokens), Encode(item_tokens), false, nullptr);
  float x = g.Value(logit).At(0, 0);
  double score = 1.0 / (1.0 + std::exp(-static_cast<double>(x)));
  if (score_latency_us_ != nullptr) {
    score_latency_us_->Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  return score;
}

}  // namespace alicoco::matching
