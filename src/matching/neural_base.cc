#include "matching/neural_base.h"

#include <chrono>
#include <cmath>

#include "common/logging.h"

namespace alicoco::matching {

NeuralMatcherBase::NeuralMatcherBase(const NeuralMatcherConfig& config,
                                     const text::SkipgramModel* embeddings,
                                     const text::Vocabulary* corpus_vocab)
    : config_(config),
      pretrained_(embeddings),
      corpus_vocab_(corpus_vocab),
      init_rng_(config.seed) {
  if (pretrained_ != nullptr) {
    ALICOCO_CHECK(corpus_vocab_ != nullptr);
    ALICOCO_CHECK(pretrained_->dim() == config_.embed_dim)
        << "pretrained dim mismatch";
  }
}

std::unique_ptr<nn::Embedding> NeuralMatcherBase::MakeEmbedding(
    const std::string& name) {
  auto emb = std::make_unique<nn::Embedding>(
      &store_, name, vocab_.size(), config_.embed_dim, &init_rng_);
  if (pretrained_ != nullptr) {
    nn::Parameter* table = emb->parameter();
    for (int wid = 2; wid < vocab_.size(); ++wid) {
      int cid = corpus_vocab_->Id(vocab_.Token(wid));
      if (cid <= text::Vocabulary::kUnkId ||
          cid >= pretrained_->vocab_size()) {
        continue;
      }
      const float* e = pretrained_->Embedding(cid);
      for (int k = 0; k < config_.embed_dim; ++k) {
        table->value.At(wid, k) = e[k];
      }
    }
  }
  return emb;
}

std::vector<int> NeuralMatcherBase::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<int> ids = vocab_.Encode(tokens);
  if (ids.empty()) ids.push_back(text::Vocabulary::kUnkId);
  return ids;
}

void NeuralMatcherBase::Train(const MatchingDataset& dataset) {
  ALICOCO_CHECK(!trained_);
  ALICOCO_CHECK(!dataset.train.empty());
  for (const auto& ex : dataset.train) {
    for (const auto& t : ex.concept_tokens) vocab_.Add(t);
    for (const auto& t : ex.item_tokens) vocab_.Add(t);
  }
  ObserveVocabulary();
  BuildModel();

  nn::Adam adam(config_.lr);
  Rng rng(config_.seed ^ 0xBEAD);
  std::vector<size_t> order(dataset.train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    store_.ZeroGrad();
    int in_batch = 0;
    for (size_t idx : order) {
      const auto& ex = dataset.train[idx];
      nn::Graph g;
      nn::Graph::Var logit = Logit(&g, Encode(ex.concept_tokens),
                                   Encode(ex.item_tokens), true, &rng);
      nn::Tensor target(1, 1);
      target.At(0, 0) = static_cast<float>(ex.label);
      g.Backward(g.SigmoidCrossEntropyWithLogits(logit, target));
      if (++in_batch >= config_.batch_size) {
        adam.Step(&store_);
        store_.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      adam.Step(&store_);
      store_.ZeroGrad();
    }
  }
  trained_ = true;
}

double NeuralMatcherBase::Score(const std::vector<std::string>& concept_tokens,
                                const std::vector<std::string>& item_tokens,
                                int64_t item_id) const {
  (void)item_id;
  ALICOCO_CHECK(trained_) << name() << " scored before Train";
  std::chrono::steady_clock::time_point start;
  if (score_latency_us_ != nullptr) start = std::chrono::steady_clock::now();
  nn::Graph g;
  nn::Graph::Var logit =
      Logit(&g, Encode(concept_tokens), Encode(item_tokens), false, nullptr);
  float x = g.Value(logit).At(0, 0);
  double score = 1.0 / (1.0 + std::exp(-static_cast<double>(x)));
  if (score_latency_us_ != nullptr) {
    score_latency_us_->Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  return score;
}

}  // namespace alicoco::matching
