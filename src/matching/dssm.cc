#include "matching/dssm.h"

namespace alicoco::matching {

void DssmMatcher::BuildModel() {
  emb_ = MakeEmbedding("emb");
  concept_tower_ = std::make_unique<nn::Mlp>(
      &store_, "concept_tower",
      std::vector<int>{config_.embed_dim, config_.hidden, config_.hidden},
      &init_rng_);
  item_tower_ = std::make_unique<nn::Mlp>(
      &store_, "item_tower",
      std::vector<int>{config_.embed_dim, config_.hidden, config_.hidden},
      &init_rng_);
  scale_ = store_.Create("scale", 1, 1, nn::ParameterStore::Init::kZero,
                         nullptr);
  scale_->value.At(0, 0) = 4.0f;  // sharpen cosine into a usable logit
}

void DssmMatcher::CollectQuantPlan(nn::quant::QuantPlan* plan) const {
  emb_->AppendQuantPlan(plan);
  concept_tower_->AppendQuantPlan(plan);
  item_tower_->AppendQuantPlan(plan);
  // scale_ (1x1) and the tower biases ride the fp32 passthrough.
}

void DssmMatcher::AttachQuantizedWeights(
    const nn::quant::QuantizedStore& store) {
  emb_->AttachQuantized(store);
  concept_tower_->AttachQuantized(store);
  item_tower_->AttachQuantized(store);
}

void DssmMatcher::DetachQuantizedWeights() {
  emb_->DetachQuantized();
  concept_tower_->DetachQuantized();
  item_tower_->DetachQuantized();
}

nn::Graph::Var DssmMatcher::Logit(nn::Graph* g,
                                  const std::vector<int>& concept_ids,
                                  const std::vector<int>& item_ids, bool train,
                                  Rng* rng) const {
  nn::Graph::Var c = g->MeanRows(emb_->Lookup(g, concept_ids));
  nn::Graph::Var i = g->MeanRows(emb_->Lookup(g, item_ids));
  c = g->Dropout(c, 0.1f, train, rng);
  i = g->Dropout(i, 0.1f, train, rng);
  nn::Graph::Var cv = g->Tanh(concept_tower_->Apply(g, c));
  nn::Graph::Var iv = g->Tanh(item_tower_->Apply(g, i));
  // Cosine similarity via normalized dot product approximation: tanh-bounded
  // towers keep magnitudes stable, so a plain dot with learned scale works.
  nn::Graph::Var dot = g->MatMulTransB(cv, iv);  // 1x1
  return g->Mul(dot, g->Use(scale_));
}

}  // namespace alicoco::matching
