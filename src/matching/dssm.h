// DSSM baseline (Huang et al. 2013, simplified): two bag-of-embeddings MLP
// towers with a scaled-cosine similarity head.

#ifndef ALICOCO_MATCHING_DSSM_H_
#define ALICOCO_MATCHING_DSSM_H_

#include "matching/neural_base.h"

namespace alicoco::matching {

class DssmMatcher : public NeuralMatcherBase {
 public:
  DssmMatcher(const NeuralMatcherConfig& config,
              const text::SkipgramModel* embeddings,
              const text::Vocabulary* corpus_vocab)
      : NeuralMatcherBase(config, embeddings, corpus_vocab) {}

  std::string name() const override { return "DSSM"; }

 protected:
  void BuildModel() override;
  nn::Graph::Var Logit(nn::Graph* g, const std::vector<int>& concept_ids,
                       const std::vector<int>& item_ids, bool train,
                       Rng* rng) const override;
  void CollectQuantPlan(nn::quant::QuantPlan* plan) const override;
  void AttachQuantizedWeights(const nn::quant::QuantizedStore& store)
      override;
  void DetachQuantizedWeights() override;

 private:
  std::unique_ptr<nn::Embedding> emb_;
  std::unique_ptr<nn::Mlp> concept_tower_;
  std::unique_ptr<nn::Mlp> item_tower_;
  nn::Parameter* scale_ = nullptr;  // learned cosine temperature
};

}  // namespace alicoco::matching

#endif  // ALICOCO_MATCHING_DSSM_H_
