// MatchPyramid baseline (Pang et al. 2016, simplified): a word-word
// interaction matrix from trainable embeddings, dynamically max-pooled to a
// fixed grid and scored by an MLP.

#ifndef ALICOCO_MATCHING_MATCH_PYRAMID_H_
#define ALICOCO_MATCHING_MATCH_PYRAMID_H_

#include "matching/neural_base.h"

namespace alicoco::matching {

class MatchPyramidMatcher : public NeuralMatcherBase {
 public:
  MatchPyramidMatcher(const NeuralMatcherConfig& config,
                      const text::SkipgramModel* embeddings,
                      const text::Vocabulary* corpus_vocab)
      : NeuralMatcherBase(config, embeddings, corpus_vocab) {}

  std::string name() const override { return "MatchPyramid"; }

 protected:
  void BuildModel() override;
  nn::Graph::Var Logit(nn::Graph* g, const std::vector<int>& concept_ids,
                       const std::vector<int>& item_ids, bool train,
                       Rng* rng) const override;
  void CollectQuantPlan(nn::quant::QuantPlan* plan) const override;
  void AttachQuantizedWeights(const nn::quant::QuantizedStore& store)
      override;
  void DetachQuantizedWeights() override;

 private:
  static constexpr int kGrid = 3;  ///< pooled grid is kGrid x kGrid

  std::unique_ptr<nn::Embedding> emb_;
  std::unique_ptr<nn::Mlp> head_;
};

/// Max-pools an arbitrary m x l matrix node to a fixed grid x grid vector
/// (1 x grid*grid). Shared with the knowledge matcher's pyramid layers.
nn::Graph::Var DynamicGridPool(nn::Graph* g, nn::Graph::Var matrix, int grid);

}  // namespace alicoco::matching

#endif  // ALICOCO_MATCHING_MATCH_PYRAMID_H_
