#include "matching/bm25_matcher.h"

#include <unordered_set>

namespace alicoco::matching {

void Bm25Matcher::Train(const MatchingDataset& dataset) {
  std::unordered_set<int64_t> indexed;
  auto add = [&](int64_t id, const std::vector<std::string>& tokens) {
    if (id < 0 || !indexed.insert(id).second) return;
    index_.AddDocument(id, tokens);
  };
  for (const auto& ex : dataset.train) add(ex.item_id, ex.item_tokens);
  for (const auto& ex : dataset.test) add(ex.item_id, ex.item_tokens);
  for (const auto& q : dataset.rank_queries) {
    for (size_t i = 0; i < q.item_ids.size(); ++i) {
      add(q.item_ids[i], q.item_tokens[i]);
    }
  }
  index_.Finalize();
}

double Bm25Matcher::Score(const std::vector<std::string>& concept_tokens,
                          const std::vector<std::string>& item_tokens,
                          int64_t item_id) const {
  (void)item_tokens;
  return index_.Score(concept_tokens, item_id);
}

}  // namespace alicoco::matching
