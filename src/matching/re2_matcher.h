// RE2 baseline (Yang et al. 2019, simplified): embedding, soft alignment,
// fusion (concat / difference / product), pooling, symmetric prediction.

#ifndef ALICOCO_MATCHING_RE2_MATCHER_H_
#define ALICOCO_MATCHING_RE2_MATCHER_H_

#include "matching/neural_base.h"

namespace alicoco::matching {

class Re2Matcher : public NeuralMatcherBase {
 public:
  Re2Matcher(const NeuralMatcherConfig& config,
             const text::SkipgramModel* embeddings,
             const text::Vocabulary* corpus_vocab)
      : NeuralMatcherBase(config, embeddings, corpus_vocab) {}

  std::string name() const override { return "RE2"; }

 protected:
  void BuildModel() override;
  nn::Graph::Var Logit(nn::Graph* g, const std::vector<int>& concept_ids,
                       const std::vector<int>& item_ids, bool train,
                       Rng* rng) const override;
  void CollectQuantPlan(nn::quant::QuantPlan* plan) const override;
  void AttachQuantizedWeights(const nn::quant::QuantizedStore& store)
      override;
  void DetachQuantizedWeights() override;

 private:
  /// Aligned fusion of one side against the other: returns pooled vector.
  nn::Graph::Var FuseSide(nn::Graph* g, nn::Graph::Var self,
                          nn::Graph::Var other) const;

  std::unique_ptr<nn::Embedding> emb_;
  std::unique_ptr<nn::Linear> align_proj_;
  std::unique_ptr<nn::Linear> fuse_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace alicoco::matching

#endif  // ALICOCO_MATCHING_RE2_MATCHER_H_
