// Concept-item matching dataset and the common matcher interface
// (Section 6 / Section 7.6, Table 6).
//
// Positives are the world's gold e-commerce-concept -> item associations
// (including the semantic-drift ones); negatives are random non-associated
// items. Test concepts are held out entirely so every model is scored on
// unseen needs. P@10 uses per-concept ranking queries.

#ifndef ALICOCO_MATCHING_DATASET_H_
#define ALICOCO_MATCHING_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/world.h"
#include "eval/metrics.h"

namespace alicoco::matching {

/// One (concept, item) pair.
struct MatchingExample {
  std::vector<std::string> concept_tokens;
  std::vector<std::string> item_tokens;
  int64_t item_id = -1;
  int label = 0;
};

/// One ranking query: a concept with candidate items.
struct RankQuery {
  std::vector<std::string> concept_tokens;
  std::vector<std::vector<std::string>> item_tokens;
  std::vector<int64_t> item_ids;
  std::vector<int> labels;
};

struct MatchingDataset {
  std::vector<MatchingExample> train;
  std::vector<MatchingExample> test;
  std::vector<RankQuery> rank_queries;
};

struct MatchingDatasetConfig {
  int negatives_per_positive = 1;
  double test_concept_fraction = 0.3;  ///< concepts held out for test
  int rank_candidates = 20;            ///< negatives per ranking query
  size_t max_positives_per_concept = 12;
  uint64_t seed = 71;
};

MatchingDataset BuildMatchingDataset(const datagen::World& world,
                                     const MatchingDatasetConfig& config);

/// Common interface of the Table 6 systems.
class Matcher {
 public:
  virtual ~Matcher() = default;
  virtual std::string name() const = 0;
  /// Trains on the dataset's train split (no-op for BM25 beyond indexing).
  virtual void Train(const MatchingDataset& dataset) = 0;
  /// Relevance score of an item to a concept (higher = more relevant).
  virtual double Score(const std::vector<std::string>& concept_tokens,
                       const std::vector<std::string>& item_tokens,
                       int64_t item_id) const = 0;
};

/// AUC / F1 (threshold `threshold`) over the test split and P@10 over the
/// ranking queries.
struct MatcherMetrics {
  double auc = 0;
  double f1 = 0;
  double p_at_10 = 0;
};

MatcherMetrics EvaluateMatcher(const Matcher& matcher,
                               const MatchingDataset& dataset,
                               double threshold = 0.5);

}  // namespace alicoco::matching

#endif  // ALICOCO_MATCHING_DATASET_H_
