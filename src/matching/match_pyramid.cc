#include "matching/match_pyramid.h"

#include <algorithm>

namespace alicoco::matching {

nn::Graph::Var DynamicGridPool(nn::Graph* g, nn::Graph::Var matrix,
                               int grid) {
  int rows = g->Value(matrix).rows();
  int cols = g->Value(matrix).cols();
  int gr = std::min(grid, rows);
  int gc = std::min(grid, cols);
  std::vector<nn::Graph::Var> cells;
  cells.reserve(static_cast<size_t>(grid) * grid);
  for (int r = 0; r < grid; ++r) {
    // Degenerate inputs (fewer rows/cols than grid) reuse the last region.
    int r0 = std::min(r, gr - 1) * rows / gr;
    int r1 = (std::min(r, gr - 1) + 1) * rows / gr;
    nn::Graph::Var row_slice = g->SliceRows(matrix, r0, std::max(1, r1 - r0));
    for (int c = 0; c < grid; ++c) {
      int c0 = std::min(c, gc - 1) * cols / gc;
      int c1 = (std::min(c, gc - 1) + 1) * cols / gc;
      nn::Graph::Var cell =
          g->SliceCols(row_slice, c0, std::max(1, c1 - c0));
      // Max over the region: max over rows then over the resulting row.
      nn::Graph::Var m = g->MaxRows(cell);                 // 1 x w
      cells.push_back(g->MaxRows(g->Transpose(m)));        // 1 x 1
    }
  }
  return g->ConcatCols(cells);
}

void MatchPyramidMatcher::BuildModel() {
  emb_ = MakeEmbedding("emb");
  head_ = std::make_unique<nn::Mlp>(
      &store_, "head", std::vector<int>{kGrid * kGrid, config_.hidden, 1},
      &init_rng_);
}

void MatchPyramidMatcher::CollectQuantPlan(
    nn::quant::QuantPlan* plan) const {
  emb_->AppendQuantPlan(plan);
  head_->AppendQuantPlan(plan);
}

void MatchPyramidMatcher::AttachQuantizedWeights(
    const nn::quant::QuantizedStore& store) {
  emb_->AttachQuantized(store);
  head_->AttachQuantized(store);
}

void MatchPyramidMatcher::DetachQuantizedWeights() {
  emb_->DetachQuantized();
  head_->DetachQuantized();
}

nn::Graph::Var MatchPyramidMatcher::Logit(nn::Graph* g,
                                          const std::vector<int>& concept_ids,
                                          const std::vector<int>& item_ids,
                                          bool train, Rng* rng) const {
  nn::Graph::Var c = emb_->Lookup(g, concept_ids);
  nn::Graph::Var i = emb_->Lookup(g, item_ids);
  c = g->Dropout(c, 0.1f, train, rng);
  // Interaction matrix: dot products of every word pair.
  nn::Graph::Var interaction = g->MatMulTransB(c, i);  // m x l
  return head_->Apply(g, DynamicGridPool(g, interaction, kGrid));
}

}  // namespace alicoco::matching
