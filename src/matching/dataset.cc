#include "matching/dataset.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"

namespace alicoco::matching {

MatchingDataset BuildMatchingDataset(const datagen::World& world,
                                     const MatchingDatasetConfig& config) {
  Rng rng(config.seed);
  const auto& net = world.net();
  MatchingDataset ds;

  // Concepts with at least one associated item.
  std::vector<const datagen::EcGold*> usable;
  usable.reserve(world.ec_gold().size());
  for (const auto& g : world.ec_gold()) {
    if (!g.items.empty()) usable.push_back(&g);
  }
  ALICOCO_CHECK(!usable.empty()) << "world has no associated concepts";
  std::vector<size_t> order(usable.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  size_t n_test = static_cast<size_t>(config.test_concept_fraction *
                                      static_cast<double>(usable.size()));

  const auto& items = world.item_profiles();
  auto add_pairs = [&](const datagen::EcGold& gold,
                       std::vector<MatchingExample>* out) {
    const auto& concept_tokens = net.Get(gold.id).tokens;
    std::unordered_set<uint32_t> positive_ids;
    for (kg::ItemId item : gold.items) positive_ids.insert(item.value);

    std::vector<kg::ItemId> positives = gold.items;
    rng.Shuffle(&positives);
    if (positives.size() > config.max_positives_per_concept) {
      positives.resize(config.max_positives_per_concept);
    }
    for (kg::ItemId item : positives) {
      out->push_back(MatchingExample{concept_tokens, net.Get(item).title,
                                     item.value, 1});
      for (int n = 0; n < config.negatives_per_positive; ++n) {
        for (int attempt = 0; attempt < 32; ++attempt) {
          const auto& neg = items[rng.Uniform(items.size())];
          if (positive_ids.count(neg.id.value)) continue;
          out->push_back(MatchingExample{concept_tokens,
                                         net.Get(neg.id).title,
                                         neg.id.value, 0});
          break;
        }
      }
    }
  };

  // Scratch reused across ranking queries so the loop doesn't rebuild the
  // hash set and positive list per concept.
  std::unordered_set<uint32_t> positive_ids;
  std::vector<kg::ItemId> positives;
  for (size_t i = 0; i < order.size(); ++i) {
    const datagen::EcGold& gold = *usable[order[i]];
    bool is_test = i < n_test;
    add_pairs(gold, is_test ? &ds.test : &ds.train);
    if (is_test) {
      // Ranking query: a few positives among many random negatives.
      RankQuery q;
      q.concept_tokens = net.Get(gold.id).tokens;
      positive_ids.clear();
      for (kg::ItemId item : gold.items) positive_ids.insert(item.value);
      positives = gold.items;
      rng.Shuffle(&positives);
      size_t take = std::min<size_t>(positives.size(), 10);
      for (size_t p = 0; p < take; ++p) {
        q.item_tokens.push_back(net.Get(positives[p]).title);
        q.item_ids.push_back(positives[p].value);
        q.labels.push_back(1);
      }
      for (int n = 0; n < config.rank_candidates; ++n) {
        for (int attempt = 0; attempt < 32; ++attempt) {
          const auto& neg = items[rng.Uniform(items.size())];
          if (positive_ids.count(neg.id.value)) continue;
          q.item_tokens.push_back(net.Get(neg.id).title);
          q.item_ids.push_back(neg.id.value);
          q.labels.push_back(0);
          break;
        }
      }
      ds.rank_queries.push_back(std::move(q));
    }
  }
  return ds;
}

MatcherMetrics EvaluateMatcher(const Matcher& matcher,
                               const MatchingDataset& dataset,
                               double threshold) {
  MatcherMetrics m;
  std::vector<double> scores;
  std::vector<int> labels;
  scores.reserve(dataset.test.size());
  labels.reserve(dataset.test.size());
  for (const auto& ex : dataset.test) {
    scores.push_back(
        matcher.Score(ex.concept_tokens, ex.item_tokens, ex.item_id));
    labels.push_back(ex.label);
  }
  m.auc = eval::Auc(scores, labels);
  m.f1 = eval::ComputeBinaryMetrics(scores, labels, threshold).f1;

  std::vector<eval::RankedQuery> ranked;
  ranked.reserve(dataset.rank_queries.size());
  for (const auto& q : dataset.rank_queries) {
    eval::RankedQuery rq;
    rq.labels = q.labels;
    for (size_t i = 0; i < q.item_tokens.size(); ++i) {
      rq.scores.push_back(
          matcher.Score(q.concept_tokens, q.item_tokens[i], q.item_ids[i]));
    }
    ranked.push_back(std::move(rq));
  }
  m.p_at_10 = eval::MeanPrecisionAtK(ranked, 10);
  return m;
}

}  // namespace alicoco::matching
