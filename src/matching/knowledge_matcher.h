// The paper's knowledge-aware deep semantic matching model
// (Section 6, Figure 8).
//
// Both sides are encoded by 1-D CNNs over word+POS embeddings; a two-way
// additive attention matrix (Eq. 11-14) produces attention-weighted concept
// and item vectors c and i. The knowledge channel extends the concept side
// with gloss vectors of its words (Doc2vec substitute, Eq. 15) and class-id
// embeddings of the primitive concepts linked to the e-commerce concept; a
// K-layer bilinear matching pyramid (Eq. 16-17) between that knowledge
// sequence and the item words yields ci, and the final score is
// MLP([c; i; ci]) (Eq. 18). `use_knowledge=false` drops the gloss/class
// rows — the "Ours" vs "Ours + Knowledge" rows of Table 6.

#ifndef ALICOCO_MATCHING_KNOWLEDGE_MATCHER_H_
#define ALICOCO_MATCHING_KNOWLEDGE_MATCHER_H_

#include <functional>

#include "matching/neural_base.h"
#include "text/gloss_encoder.h"
#include "text/pos_tagger.h"

namespace alicoco::matching {

struct KnowledgeMatcherConfig {
  NeuralMatcherConfig base;
  bool use_knowledge = true;
  /// Ablation knob: drop the attention-weighted c/i channel (Eq. 11-14)
  /// and score from the matching pyramid alone.
  bool use_attention_channel = true;
  int pos_dim = 6;
  int cnn_filters = 24;
  int cnn_window = 3;
  int pyramid_layers = 3;  ///< K of Eq. 16
  int pool_grid = 3;
};

/// External knowledge plumbing; pointers must outlive the matcher.
struct KnowledgeResources {
  const text::PosTagger* pos_tagger = nullptr;  ///< required
  /// Required when use_knowledge: gloss vectors for concept words.
  const text::GlossEncoder* gloss_encoder = nullptr;
  std::function<std::vector<std::string>(const std::string&)> gloss_lookup;
  /// Taxonomy class ids of the primitive concepts linked to a concept
  /// surface (may return {}); required when use_knowledge.
  std::function<std::vector<int>(const std::vector<std::string>&)>
      concept_classes;
  int num_classes = 0;  ///< class-embedding table size
};

class KnowledgeMatcher : public NeuralMatcherBase {
 public:
  KnowledgeMatcher(const KnowledgeMatcherConfig& config,
                   const KnowledgeResources& resources,
                   const text::SkipgramModel* embeddings,
                   const text::Vocabulary* corpus_vocab);

  std::string name() const override {
    return kcfg_.use_knowledge ? "Ours + Knowledge" : "Ours";
  }

 protected:
  void BuildModel() override;
  nn::Graph::Var Logit(nn::Graph* g, const std::vector<int>& concept_ids,
                       const std::vector<int>& item_ids, bool train,
                       Rng* rng) const override;
  void CollectQuantPlan(nn::quant::QuantPlan* plan) const override;
  void AttachQuantizedWeights(const nn::quant::QuantizedStore& store)
      override;
  void DetachQuantizedWeights() override;

 private:
  KnowledgeMatcherConfig kcfg_;
  KnowledgeResources res_;

  std::unique_ptr<nn::Embedding> emb_;
  std::unique_ptr<nn::Embedding> pos_emb_;
  std::unique_ptr<nn::Conv1D> concept_cnn_;
  std::unique_ptr<nn::Conv1D> item_cnn_;
  std::unique_ptr<nn::Linear> att_w1_;
  std::unique_ptr<nn::Linear> att_w2_;
  nn::Parameter* att_v_ = nullptr;
  std::unique_ptr<nn::Linear> gloss_proj_;
  std::unique_ptr<nn::Embedding> class_emb_;
  std::vector<nn::Parameter*> pyramid_;  // K bilinear maps d x d
  /// Quantized pyramid maps (stored transposed), parallel to pyramid_;
  /// empty when scoring fp32.
  std::vector<const nn::quant::QuantizedTensor*> pyramid_q_;
  std::unique_ptr<nn::Mlp> pyramid_mlp_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace alicoco::matching

#endif  // ALICOCO_MATCHING_KNOWLEDGE_MATCHER_H_
