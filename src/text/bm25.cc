#include "text/bm25.h"

#include <algorithm>
#include <cmath>

namespace alicoco::text {

void Bm25Index::AddDocument(int64_t doc_id,
                            const std::vector<std::string>& tokens) {
  finalized_ = false;
  Doc doc;
  doc.id = doc_id;
  doc.length = tokens.size();
  for (const auto& t : tokens) ++doc.tf[t];
  size_t pos = docs_.size();
  for (const auto& [term, tf] : doc.tf) {
    (void)tf;
    ++df_[term];
    postings_[term].push_back(pos);
  }
  id_to_pos_[doc_id] = pos;
  docs_.push_back(std::move(doc));
}

void Bm25Index::Finalize() {
  double total = 0.0;
  for (const auto& d : docs_) total += static_cast<double>(d.length);
  avg_len_ = docs_.empty() ? 0.0 : total / static_cast<double>(docs_.size());
  finalized_ = true;
}

double Bm25Index::Idf(const std::string& term) const {
  auto it = df_.find(term);
  double n = static_cast<double>(docs_.size());
  double df = it == df_.end() ? 0.0 : static_cast<double>(it->second);
  return std::log((n - df + 0.5) / (df + 0.5) + 1.0);
}

double Bm25Index::ScoreDoc(const std::vector<std::string>& query,
                           const Doc& doc) const {
  double score = 0.0;
  double len_norm =
      k1_ * (1.0 - b_ + b_ * static_cast<double>(doc.length) /
                            (avg_len_ > 0 ? avg_len_ : 1.0));
  for (const auto& q : query) {
    auto it = doc.tf.find(q);
    if (it == doc.tf.end()) continue;
    double tf = static_cast<double>(it->second);
    score += Idf(q) * tf * (k1_ + 1.0) / (tf + len_norm);
  }
  return score;
}

double Bm25Index::Score(const std::vector<std::string>& query,
                        int64_t doc_id) const {
  if (!finalized_) return 0.0;
  auto it = id_to_pos_.find(doc_id);
  if (it == id_to_pos_.end()) return 0.0;
  return ScoreDoc(query, docs_[it->second]);
}

std::vector<std::pair<int64_t, double>> Bm25Index::TopK(
    const std::vector<std::string>& query, size_t k) const {
  std::vector<std::pair<int64_t, double>> out;
  if (!finalized_ || k == 0) return out;
  // Gather candidate docs from postings of query terms.
  std::unordered_map<size_t, double> scores;
  for (const auto& q : query) {
    auto it = postings_.find(q);
    if (it == postings_.end()) continue;
    for (size_t pos : it->second) {
      if (!scores.count(pos)) scores[pos] = ScoreDoc(query, docs_[pos]);
    }
  }
  out.reserve(scores.size());
  for (const auto& [pos, s] : scores) out.emplace_back(docs_[pos].id, s);
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace alicoco::text
