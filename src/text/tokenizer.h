// Tokenization utilities.
//
// The synthetic corpus is already word-delimited; the tokenizer lower-cases,
// strips punctuation and exposes the char view of a token (the analogue of
// Chinese characters used by the char-level encoders in Figures 5 and 6).

#ifndef ALICOCO_TEXT_TOKENIZER_H_
#define ALICOCO_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace alicoco::text {

/// Splits raw text into lower-case word tokens. Punctuation separates tokens
/// and is dropped; digits are kept inside tokens.
std::vector<std::string> Tokenize(std::string_view raw);

/// Splits a token into single-character strings ("dress" -> d,r,e,s,s).
std::vector<std::string> Chars(std::string_view token);

/// Joins tokens with single spaces (inverse of Tokenize for clean input).
std::string JoinTokens(const std::vector<std::string>& tokens);

}  // namespace alicoco::text

#endif  // ALICOCO_TEXT_TOKENIZER_H_
