// Interpolated Kneser-Ney n-gram language model.
//
// Stands in for the e-commerce-corpus BERT of Section 5.2.2: its role there
// is a single wide feature — the perplexity of a candidate concept phrase —
// measuring fluency/coherence. An interpolated KN trigram model provides the
// same signal on the synthetic corpus.

#ifndef ALICOCO_TEXT_NGRAM_LM_H_
#define ALICOCO_TEXT_NGRAM_LM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace alicoco::text {

/// Trigram LM with interpolated Kneser-Ney smoothing over token strings.
/// Sentences are implicitly wrapped in <s> ... </s>.
class NgramLm {
 public:
  /// `discount` is the absolute-discount mass (0 < d < 1).
  explicit NgramLm(double discount = 0.75) : discount_(discount) {}

  /// Accumulates counts from one sentence.
  void AddSentence(const std::vector<std::string>& tokens);

  /// Finalizes continuation counts. Must be called once after all
  /// AddSentence calls and before scoring.
  void Finalize();

  /// log P(w | w2 w1) in natural log. Unseen histories back off smoothly;
  /// fully unknown words receive a small floor probability.
  double LogProb(const std::string& w2, const std::string& w1,
                 const std::string& w) const;

  /// Per-token perplexity of a sentence, exp(-mean log prob).
  double Perplexity(const std::vector<std::string>& tokens) const;

  /// Mean log-probability per token (higher = more fluent).
  double ScoreSentence(const std::vector<std::string>& tokens) const;

  int64_t total_unigrams() const { return total_unigrams_; }

 private:
  double UnigramProb(const std::string& w) const;
  double BigramProb(const std::string& w1, const std::string& w) const;

  double discount_;
  bool finalized_ = false;

  std::unordered_map<std::string, int64_t> uni_;
  std::unordered_map<std::string, int64_t> bi_;    // "w1 w"
  std::unordered_map<std::string, int64_t> tri_;   // "w2 w1 w"
  // Context totals and distinct-successor counts for normalization.
  std::unordered_map<std::string, int64_t> bi_ctx_total_;   // "w1"
  std::unordered_map<std::string, int64_t> bi_ctx_types_;   // "w1"
  std::unordered_map<std::string, int64_t> tri_ctx_total_;  // "w2 w1"
  std::unordered_map<std::string, int64_t> tri_ctx_types_;  // "w2 w1"
  // Kneser-Ney continuation counts: #distinct left contexts of w.
  std::unordered_map<std::string, int64_t> continuation_;
  int64_t total_bigram_types_ = 0;
  int64_t total_unigrams_ = 0;
};

}  // namespace alicoco::text

#endif  // ALICOCO_TEXT_NGRAM_LM_H_
