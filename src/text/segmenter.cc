#include "text/segmenter.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace alicoco::text {

void MaxMatchSegmenter::AddPhrase(const std::vector<std::string>& tokens,
                                  const std::string& label) {
  if (tokens.empty()) return;
  std::string key = JoinStrings(tokens, " ");
  auto& labels = dict_[key];
  if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
    labels.push_back(label);
    ++num_entries_;
  }
  max_phrase_len_ = std::max(max_phrase_len_, tokens.size());
}

std::vector<PhraseMatch> MaxMatchSegmenter::AllOccurrences(
    const std::vector<std::string>& tokens) const {
  std::vector<PhraseMatch> out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::string key;
    for (size_t len = 1; len <= max_phrase_len_ && i + len <= tokens.size();
         ++len) {
      if (len > 1) key += ' ';
      key += tokens[i + len - 1];
      auto it = dict_.find(key);
      if (it == dict_.end()) continue;
      for (const auto& label : it->second) {
        out.push_back(PhraseMatch{i, i + len, label, key});
      }
    }
  }
  return out;
}

Segmentation MaxMatchSegmenter::Match(
    const std::vector<std::string>& tokens) const {
  Segmentation seg;
  size_t n = tokens.size();
  seg.iob.assign(n, "O");
  if (n == 0) return seg;

  auto occurrences = AllOccurrences(tokens);

  // matches_at[i]: occurrence indices starting at token i. A phrase with
  // several labels contributes several occurrences; any chosen span whose
  // phrase has >1 label makes the sentence ambiguous.
  std::vector<std::vector<size_t>> matches_at(n);
  for (size_t m = 0; m < occurrences.size(); ++m) {
    ALICOCO_DCHECK_LT(occurrences[m].begin, occurrences[m].end)
        << "empty phrase span for " << occurrences[m].phrase;
    ALICOCO_DCHECK_LE(occurrences[m].end, n)
        << "phrase span past sentence end for " << occurrences[m].phrase;
    matches_at[occurrences[m].begin].push_back(m);
  }

  // DP over positions: best[i] = (max covered tokens, min segment count)
  // achievable for suffix starting at i; count[i] = number of distinct
  // optimal labeled segmentations (capped to avoid overflow).
  constexpr int64_t kCountCap = 1'000'000;
  std::vector<int64_t> covered(n + 1, 0), pieces(n + 1, 0), ways(n + 1, 1);
  std::vector<size_t> choice(n + 1, SIZE_MAX);  // occurrence idx or SIZE_MAX
  for (size_t i = n; i-- > 0;) {
    // Option: leave token i unmatched.
    covered[i] = covered[i + 1];
    pieces[i] = pieces[i + 1];
    ways[i] = ways[i + 1];
    choice[i] = SIZE_MAX;
    for (size_t m : matches_at[i]) {
      const auto& occ = occurrences[m];
      int64_t c = static_cast<int64_t>(occ.end - occ.begin) + covered[occ.end];
      int64_t p = 1 + pieces[occ.end];
      if (c > covered[i] || (c == covered[i] && p < pieces[i])) {
        covered[i] = c;
        pieces[i] = p;
        ways[i] = ways[occ.end];
        choice[i] = m;
      } else if (c == covered[i] && p == pieces[i]) {
        // Another distinct optimal labeling exists.
        ways[i] = std::min(kCountCap, ways[i] + ways[occ.end]);
      }
    }
  }

  seg.covered_tokens = static_cast<size_t>(covered[0]);
  seg.ambiguous = ways[0] > 1;

  // Reconstruct one optimal segmentation.
  size_t i = 0;
  while (i < n) {
    if (choice[i] == SIZE_MAX) {
      ++i;
      continue;
    }
    ALICOCO_DCHECK_LT(choice[i], occurrences.size());
    const auto& occ = occurrences[choice[i]];
    ALICOCO_DCHECK_EQ(occ.begin, i) << "reconstruction desynced";
    seg.matches.push_back(occ);
    seg.iob[occ.begin] = "B-" + occ.label;
    for (size_t j = occ.begin + 1; j < occ.end; ++j) {
      seg.iob[j] = "I-" + occ.label;
    }
    // A chosen phrase carrying multiple labels is inherently ambiguous.
    auto it = dict_.find(occ.phrase);
    if (it != dict_.end() && it->second.size() > 1) seg.ambiguous = true;
    i = occ.end;
  }
  return seg;
}

}  // namespace alicoco::text
