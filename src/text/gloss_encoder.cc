#include "text/gloss_encoder.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace alicoco::text {

GlossEncoder::GlossEncoder(const SkipgramModel* model, const Vocabulary* vocab)
    : model_(model), vocab_(vocab) {
  ALICOCO_CHECK(model != nullptr && vocab != nullptr);
}

void GlossEncoder::ObserveDocument(const std::vector<std::string>& tokens) {
  std::unordered_set<int> seen;
  for (const auto& t : tokens) {
    int id = vocab_->Id(t);
    if (id > Vocabulary::kUnkId) seen.insert(id);
  }
  for (int id : seen) ++df_[id];
  ++num_docs_;
}

void GlossEncoder::FinalizeIdf() { idf_ready_ = num_docs_ > 0; }

std::vector<float> GlossEncoder::Encode(
    const std::vector<std::string>& tokens) const {
  int d = model_->dim();
  std::vector<float> out(static_cast<size_t>(d), 0.0f);
  double total_weight = 0.0;
  for (const auto& t : tokens) {
    int id = vocab_->Id(t);
    if (id <= Vocabulary::kUnkId || id >= model_->vocab_size()) continue;
    double w = 1.0;
    if (idf_ready_) {
      auto it = df_.find(id);
      double df = it == df_.end() ? 0.0 : static_cast<double>(it->second);
      w = std::log((static_cast<double>(num_docs_) + 1.0) / (df + 1.0)) + 1.0;
    }
    const float* e = model_->Embedding(id);
    for (int k = 0; k < d; ++k) out[static_cast<size_t>(k)] += static_cast<float>(w) * e[k];
    total_weight += w;
  }
  if (total_weight > 0) {
    float norm = 0.0f;
    for (float v : out) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 1e-8f) {
      for (float& v : out) v /= norm;
    }
  }
  return out;
}

ContextMatrix::ContextMatrix(const std::vector<std::vector<int>>& corpus,
                             const SkipgramModel& model, int window)
    : dim_(model.dim()),
      rows_(static_cast<size_t>(model.vocab_size()),
            std::vector<float>()),
      zero_(static_cast<size_t>(model.dim()), 0.0f) {
  std::vector<std::vector<double>> acc(
      static_cast<size_t>(model.vocab_size()),
      std::vector<double>());
  std::vector<int64_t> counts(static_cast<size_t>(model.vocab_size()), 0);
  for (const auto& sentence : corpus) {
    for (size_t i = 0; i < sentence.size(); ++i) {
      int w = sentence[i];
      if (w <= Vocabulary::kUnkId || w >= model.vocab_size()) continue;
      for (int off = -window; off <= window; ++off) {
        if (off == 0) continue;
        int64_t j = static_cast<int64_t>(i) + off;
        if (j < 0 || j >= static_cast<int64_t>(sentence.size())) continue;
        int ctx = sentence[static_cast<size_t>(j)];
        if (ctx <= Vocabulary::kUnkId || ctx >= model.vocab_size()) continue;
        auto& a = acc[static_cast<size_t>(w)];
        if (a.empty()) a.assign(static_cast<size_t>(dim_), 0.0);
        const float* e = model.Embedding(ctx);
        for (int k = 0; k < dim_; ++k) a[static_cast<size_t>(k)] += e[k];
        ++counts[static_cast<size_t>(w)];
      }
    }
  }
  for (size_t w = 0; w < acc.size(); ++w) {
    if (counts[w] == 0) continue;
    auto& row = rows_[w];
    row.assign(static_cast<size_t>(dim_), 0.0f);
    double norm_acc = 0.0;
    for (int k = 0; k < dim_; ++k) {
      double v = acc[w][static_cast<size_t>(k)] / static_cast<double>(counts[w]);
      row[static_cast<size_t>(k)] = static_cast<float>(v);
      norm_acc += v * v;
    }
    float norm = static_cast<float>(std::sqrt(norm_acc));
    if (norm > 1e-8f) {
      for (float& v : row) v /= norm;
    }
  }
}

const std::vector<float>& ContextMatrix::Row(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= rows_.size() || rows_[static_cast<size_t>(id)].empty()) {
    return zero_;
  }
  return rows_[static_cast<size_t>(id)];
}

}  // namespace alicoco::text
