#include "text/skipgram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace alicoco::text {
namespace {
constexpr size_t kNegTableSize = 1 << 18;

inline float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}
}  // namespace

SkipgramModel::SkipgramModel(int vocab_size, const SkipgramConfig& config)
    : vocab_size_(vocab_size), config_(config) {
  ALICOCO_CHECK(vocab_size > 0 && config.dim > 0);
  Rng rng(config.seed);
  size_t total = static_cast<size_t>(vocab_size) * config.dim;
  in_.resize(total);
  out_.assign(total, 0.0f);
  float bound = 0.5f / static_cast<float>(config.dim);
  for (auto& v : in_) v = rng.UniformFloat(-bound, bound);
}

void SkipgramModel::BuildNegativeTable(const Vocabulary& vocab) {
  neg_table_.clear();
  neg_table_.reserve(kNegTableSize);
  double total = 0.0;
  std::vector<double> pow_counts(static_cast<size_t>(vocab_size_), 0.0);
  for (int id = 2; id < vocab_size_; ++id) {  // skip <pad>/<unk>
    double c = std::pow(static_cast<double>(std::max<int64_t>(vocab.Count(id), 1)),
                        0.75);
    pow_counts[static_cast<size_t>(id)] = c;
    total += c;
  }
  if (total <= 0) {
    for (size_t i = 0; i < kNegTableSize; ++i) {
      neg_table_.push_back(2 + static_cast<int>(i % std::max(1, vocab_size_ - 2)));
    }
    return;
  }
  int id = 2;
  double acc = pow_counts[2] / total;
  for (size_t i = 0; i < kNegTableSize; ++i) {
    neg_table_.push_back(id);
    double frac = static_cast<double>(i + 1) / kNegTableSize;
    while (frac > acc && id < vocab_size_ - 1) {
      ++id;
      acc += pow_counts[static_cast<size_t>(id)] / total;
    }
  }
}

void SkipgramModel::TrainPair(int center, int context, float lr, Rng* rng) {
  int d = config_.dim;
  float* v_in = &in_[static_cast<size_t>(center) * d];
  std::vector<float> grad_in(static_cast<size_t>(d), 0.0f);
  for (int n = 0; n <= config_.negatives; ++n) {
    int target;
    float label;
    if (n == 0) {
      target = context;
      label = 1.0f;
    } else {
      target = neg_table_[rng->Uniform(neg_table_.size())];
      if (target == context) continue;
      label = 0.0f;
    }
    float* v_out = &out_[static_cast<size_t>(target) * d];
    float dot = 0.0f;
    for (int k = 0; k < d; ++k) dot += v_in[k] * v_out[k];
    float g = (label - FastSigmoid(dot)) * lr;
    for (int k = 0; k < d; ++k) {
      grad_in[static_cast<size_t>(k)] += g * v_out[k];
      v_out[k] += g * v_in[k];
    }
  }
  for (int k = 0; k < d; ++k) v_in[k] += grad_in[static_cast<size_t>(k)];
}

void SkipgramModel::Train(const std::vector<std::vector<int>>& corpus,
                          const Vocabulary& vocab) {
  BuildNegativeTable(vocab);
  Rng rng(config_.seed ^ 0xABCDEF);
  int64_t total_tokens = 0;
  for (const auto& s : corpus) total_tokens += static_cast<int64_t>(s.size());
  int64_t trained = 0;
  int64_t budget = total_tokens * config_.epochs;
  double corpus_total = 0;
  for (int id = 0; id < vocab_size_; ++id) {
    corpus_total += static_cast<double>(vocab.Count(id));
  }

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const auto& sentence : corpus) {
      // Apply frequent-word subsampling to a working copy.
      std::vector<int> kept;
      kept.reserve(sentence.size());
      for (int id : sentence) {
        if (id <= Vocabulary::kUnkId || id >= vocab_size_) {
          ++trained;
          continue;
        }
        if (config_.subsample > 0 && corpus_total > 0) {
          double f = static_cast<double>(vocab.Count(id)) / corpus_total;
          if (f > config_.subsample) {
            double keep = std::sqrt(config_.subsample / f);
            if (rng.NextDouble() > keep) {
              ++trained;
              continue;
            }
          }
        }
        kept.push_back(id);
      }
      for (size_t i = 0; i < kept.size(); ++i) {
        float progress = static_cast<float>(trained) /
                         static_cast<float>(std::max<int64_t>(budget, 1));
        float lr = config_.lr * std::max(0.05f, 1.0f - progress);
        int win = 1 + static_cast<int>(rng.Uniform(
                          static_cast<uint64_t>(config_.window)));
        for (int off = -win; off <= win; ++off) {
          if (off == 0) continue;
          int64_t j = static_cast<int64_t>(i) + off;
          if (j < 0 || j >= static_cast<int64_t>(kept.size())) continue;
          TrainPair(kept[i], kept[static_cast<size_t>(j)], lr, &rng);
        }
        ++trained;
      }
    }
  }
}

const float* SkipgramModel::Embedding(int id) const {
  ALICOCO_CHECK(id >= 0 && id < vocab_size_);
  return &in_[static_cast<size_t>(id) * config_.dim];
}

float SkipgramModel::Cosine(int a, int b) const {
  const float* va = Embedding(a);
  const float* vb = Embedding(b);
  float dot = 0, na = 0, nb = 0;
  for (int k = 0; k < config_.dim; ++k) {
    dot += va[k] * vb[k];
    na += va[k] * va[k];
    nb += vb[k] * vb[k];
  }
  if (na <= 0 || nb <= 0) return 0.0f;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<int> SkipgramModel::Nearest(int id, size_t k) const {
  std::vector<std::pair<float, int>> scored;
  scored.reserve(static_cast<size_t>(vocab_size_));
  for (int other = 2; other < vocab_size_; ++other) {
    if (other == id) continue;
    scored.emplace_back(Cosine(id, other), other);
  }
  std::partial_sort(scored.begin(),
                    scored.begin() + std::min(k, scored.size()), scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int> out;
  for (size_t i = 0; i < std::min(k, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace alicoco::text
