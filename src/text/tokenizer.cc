#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace alicoco::text {

std::vector<std::string> Tokenize(std::string_view raw) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : raw) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      cur.push_back(static_cast<char>(std::tolower(uc)));
    } else if (c == '-' && !cur.empty()) {
      cur.push_back('-');  // keep hyphenated compounds as one token
    } else {
      if (!cur.empty()) {
        while (!cur.empty() && cur.back() == '-') cur.pop_back();
        if (!cur.empty()) out.push_back(cur);
        cur.clear();
      }
    }
  }
  if (!cur.empty()) {
    while (!cur.empty() && cur.back() == '-') cur.pop_back();
    if (!cur.empty()) out.push_back(cur);
  }
  return out;
}

std::vector<std::string> Chars(std::string_view token) {
  std::vector<std::string> out;
  out.reserve(token.size());
  for (char c : token) out.emplace_back(1, c);
  return out;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  return JoinStrings(tokens, " ");
}

}  // namespace alicoco::text
