#include "text/vocabulary.h"

namespace alicoco::text {

Vocabulary::Vocabulary() {
  tokens_ = {"<pad>", "<unk>"};
  counts_ = {0, 0};
  index_["<pad>"] = kPadId;
  index_["<unk>"] = kUnkId;
}

int Vocabulary::Add(const std::string& token) {
  auto it = index_.find(token);
  if (it != index_.end()) {
    ++counts_[it->second];
    return it->second;
  }
  int id = static_cast<int>(tokens_.size());
  index_.emplace(token, id);
  tokens_.push_back(token);
  counts_.push_back(1);
  return id;
}

int Vocabulary::Id(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnkId : it->second;
}

bool Vocabulary::Contains(const std::string& token) const {
  return index_.count(token) > 0;
}

const std::string& Vocabulary::Token(int id) const {
  if (id < 0 || id >= size()) return tokens_[kUnkId];
  return tokens_[static_cast<size_t>(id)];
}

int64_t Vocabulary::Count(int id) const {
  if (id < 0 || id >= size()) return 0;
  return counts_[static_cast<size_t>(id)];
}

std::vector<int> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<int> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(Id(t));
  return out;
}

std::vector<std::string> Vocabulary::Decode(const std::vector<int>& ids) const {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (int id : ids) out.push_back(Token(id));
  return out;
}

void Vocabulary::PruneBelow(int64_t min_count) {
  std::vector<std::string> kept_tokens = {"<pad>", "<unk>"};
  std::vector<int64_t> kept_counts = {counts_[0], counts_[1]};
  for (size_t i = 2; i < tokens_.size(); ++i) {
    if (counts_[i] >= min_count) {
      kept_tokens.push_back(tokens_[i]);
      kept_counts.push_back(counts_[i]);
    }
  }
  tokens_ = std::move(kept_tokens);
  counts_ = std::move(kept_counts);
  index_.clear();
  for (size_t i = 0; i < tokens_.size(); ++i) {
    index_[tokens_[i]] = static_cast<int>(i);
  }
}

}  // namespace alicoco::text
