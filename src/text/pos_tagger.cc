#include "text/pos_tagger.h"

#include <cctype>

#include "common/string_util.h"

namespace alicoco::text {

const char* PosTagName(PosTag tag) {
  switch (tag) {
    case PosTag::kNoun:
      return "NOUN";
    case PosTag::kAdj:
      return "ADJ";
    case PosTag::kVerb:
      return "VERB";
    case PosTag::kPrep:
      return "PREP";
    case PosTag::kNum:
      return "NUM";
    case PosTag::kOther:
      return "OTHER";
  }
  return "?";
}

PosTagger::PosTagger() {
  // Closed-class function words used by the grammar emitters.
  for (const char* w : {"for", "in", "on", "with", "of", "under", "at",
                        "from", "to", "by"}) {
    lexicon_[w] = PosTag::kPrep;
  }
  for (const char* w : {"the", "a", "an", "and", "or", "is", "are", "this",
                        "that", "my", "your"}) {
    lexicon_[w] = PosTag::kOther;
  }
}

void PosTagger::AddLexeme(const std::string& word, PosTag tag) {
  lexicon_[word] = tag;
}

PosTag PosTagger::Tag(const std::string& token) const {
  auto it = lexicon_.find(token);
  if (it != lexicon_.end()) return it->second;
  bool all_digits = !token.empty();
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      all_digits = false;
      break;
    }
  }
  if (all_digits) return PosTag::kNum;
  if (EndsWith(token, "y") || EndsWith(token, "ish") || EndsWith(token, "al")) {
    return PosTag::kAdj;
  }
  if (EndsWith(token, "ing") || EndsWith(token, "ize")) return PosTag::kVerb;
  return PosTag::kNoun;
}

std::vector<PosTag> PosTagger::TagSequence(
    const std::vector<std::string>& tokens) const {
  std::vector<PosTag> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(Tag(t));
  return out;
}

}  // namespace alicoco::text
