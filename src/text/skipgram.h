// Skip-gram with negative sampling (SGNS) word-embedding trainer.
//
// Replaces the pre-trained GloVe / word2vec vectors the paper's models
// consume (Sections 4.2.2, 5.3.1, 6): dense distributional vectors trained
// on the synthetic e-commerce corpus.

#ifndef ALICOCO_TEXT_SKIPGRAM_H_
#define ALICOCO_TEXT_SKIPGRAM_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "text/vocabulary.h"

namespace alicoco::text {

/// Training configuration for SGNS.
struct SkipgramConfig {
  int dim = 24;            ///< embedding dimensionality
  int window = 4;          ///< max context offset
  int negatives = 5;       ///< negative samples per positive
  int epochs = 3;
  float lr = 0.05f;        ///< initial learning rate (linearly decayed)
  double subsample = 1e-3; ///< frequent-word subsampling threshold; <=0 off
  uint64_t seed = 17;
};

/// Trains and serves word embeddings.
class SkipgramModel {
 public:
  SkipgramModel(int vocab_size, const SkipgramConfig& config);

  /// Trains on a corpus of id sentences. Counts come from `vocab` for the
  /// negative-sampling table and subsampling.
  void Train(const std::vector<std::vector<int>>& corpus,
             const Vocabulary& vocab);

  int dim() const { return config_.dim; }
  int vocab_size() const { return vocab_size_; }

  /// Input-embedding row of a word id (the vectors consumers use).
  const float* Embedding(int id) const;

  /// Copy of the full input-embedding table (vocab_size x dim, row-major).
  std::vector<float> EmbeddingTable() const { return in_; }

  /// Cosine similarity between two word ids.
  float Cosine(int a, int b) const;

  /// Ids of the k nearest words to `id` by cosine (excluding `id`).
  std::vector<int> Nearest(int id, size_t k) const;

 private:
  void BuildNegativeTable(const Vocabulary& vocab);
  void TrainPair(int center, int context, float lr, Rng* rng);

  int vocab_size_;
  SkipgramConfig config_;
  std::vector<float> in_;   // vocab x dim
  std::vector<float> out_;  // vocab x dim
  std::vector<int> neg_table_;
};

}  // namespace alicoco::text

#endif  // ALICOCO_TEXT_SKIPGRAM_H_
