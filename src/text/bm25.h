// BM25 inverted index — the classic IR baseline of Table 6 and the lexical
// retrieval substrate for the search-relevance application (Section 8.1.1).

#ifndef ALICOCO_TEXT_BM25_H_
#define ALICOCO_TEXT_BM25_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace alicoco::text {

/// Okapi BM25 over tokenized documents.
class Bm25Index {
 public:
  /// Standard parameters: k1 controls term-frequency saturation, b length
  /// normalization.
  explicit Bm25Index(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}

  /// Adds a document; `doc_id` is the caller's identifier (need not be dense).
  void AddDocument(int64_t doc_id, const std::vector<std::string>& tokens);

  /// Recomputes idf statistics. Call after the last AddDocument; scoring
  /// before Finalize() returns 0.
  void Finalize();

  /// BM25 score of `query` against one indexed document (0 if unknown id).
  double Score(const std::vector<std::string>& query, int64_t doc_id) const;

  /// Top-k documents for `query`, highest score first.
  std::vector<std::pair<int64_t, double>> TopK(
      const std::vector<std::string>& query, size_t k) const;

  size_t num_documents() const { return docs_.size(); }

 private:
  struct Doc {
    int64_t id;
    std::unordered_map<std::string, int> tf;
    size_t length;
  };

  double Idf(const std::string& term) const;
  double ScoreDoc(const std::vector<std::string>& query, const Doc& doc) const;

  double k1_, b_;
  bool finalized_ = false;
  double avg_len_ = 0.0;
  std::vector<Doc> docs_;
  std::unordered_map<int64_t, size_t> id_to_pos_;
  std::unordered_map<std::string, int64_t> df_;
  // term -> postings (positions into docs_)
  std::unordered_map<std::string, std::vector<size_t>> postings_;
};

}  // namespace alicoco::text

#endif  // ALICOCO_TEXT_BM25_H_
