// Dictionary-driven max-matching segmenter (Section 7.2).
//
// The paper bootstraps sequence-labeling training data by distant
// supervision: a dynamic-programming max-matching of known primitive-concept
// phrases against corpus sentences, assigning IOB domain labels, and keeping
// only sentences whose matching is unambiguous. This class implements that
// matcher: phrases (multi-token) map to one or more class labels; Match()
// returns the maximal-coverage segmentation and flags ambiguity.

#ifndef ALICOCO_TEXT_SEGMENTER_H_
#define ALICOCO_TEXT_SEGMENTER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace alicoco::text {

/// One matched phrase occurrence inside a sentence.
struct PhraseMatch {
  size_t begin = 0;      ///< first token index
  size_t end = 0;        ///< one past last token index
  std::string label;     ///< class label of the matched phrase
  std::string phrase;    ///< the canonical phrase (space-joined)
};

/// Result of segmenting one sentence.
struct Segmentation {
  std::vector<PhraseMatch> matches;  ///< chosen non-overlapping matches
  std::vector<std::string> iob;      ///< per-token IOB tags ("B-X"/"I-X"/"O")
  bool ambiguous = false;            ///< true if another distinct labeling
                                     ///< achieves the same coverage, or a
                                     ///< matched phrase has several labels
  size_t covered_tokens = 0;         ///< tokens inside chosen matches
};

/// Forward max-matching dictionary segmenter.
class MaxMatchSegmenter {
 public:
  MaxMatchSegmenter() = default;

  /// Registers a phrase (sequence of tokens) under a class label. The same
  /// phrase may carry multiple labels (sense ambiguity).
  void AddPhrase(const std::vector<std::string>& tokens,
                 const std::string& label);

  /// Number of distinct (phrase, label) entries.
  size_t num_entries() const { return num_entries_; }

  /// Longest registered phrase, in tokens.
  size_t max_phrase_len() const { return max_phrase_len_; }

  /// Segments `tokens` by dynamic programming that maximizes the number of
  /// covered tokens (ties broken toward fewer, hence longer, matches).
  Segmentation Match(const std::vector<std::string>& tokens) const;

  /// All dictionary occurrences in `tokens`, including overlapping ones.
  std::vector<PhraseMatch> AllOccurrences(
      const std::vector<std::string>& tokens) const;

 private:
  // phrase (space-joined tokens) -> labels
  std::unordered_map<std::string, std::vector<std::string>> dict_;
  size_t max_phrase_len_ = 0;
  size_t num_entries_ = 0;
};

}  // namespace alicoco::text

#endif  // ALICOCO_TEXT_SEGMENTER_H_
