#include "text/ngram_lm.h"

#include <cmath>

#include "common/logging.h"

namespace alicoco::text {
namespace {
constexpr const char* kBos = "<s>";
constexpr const char* kEos = "</s>";
constexpr double kFloorProb = 1e-7;
}  // namespace

void NgramLm::AddSentence(const std::vector<std::string>& tokens) {
  ALICOCO_CHECK(!finalized_) << "AddSentence after Finalize";
  std::vector<std::string> s;
  s.reserve(tokens.size() + 3);
  s.push_back(kBos);
  s.push_back(kBos);
  s.insert(s.end(), tokens.begin(), tokens.end());
  s.push_back(kEos);
  for (size_t i = 2; i < s.size(); ++i) {
    ++uni_[s[i]];
    ++total_unigrams_;
    std::string bi = s[i - 1] + " " + s[i];
    if (++bi_[bi] == 1) {
      ++bi_ctx_types_[s[i - 1]];
      ++continuation_[s[i]];
      ++total_bigram_types_;
    }
    ++bi_ctx_total_[s[i - 1]];
    std::string ctx2 = s[i - 2] + " " + s[i - 1];
    std::string tri = ctx2 + " " + s[i];
    if (++tri_[tri] == 1) ++tri_ctx_types_[ctx2];
    ++tri_ctx_total_[ctx2];
  }
}

void NgramLm::Finalize() { finalized_ = true; }

double NgramLm::UnigramProb(const std::string& w) const {
  if (total_bigram_types_ == 0) return kFloorProb;
  auto it = continuation_.find(w);
  double cont = it == continuation_.end() ? 0.0
                                          : static_cast<double>(it->second);
  // Reserve a small mass for unseen words.
  double p = (cont + 0.5) /
             (static_cast<double>(total_bigram_types_) +
              0.5 * static_cast<double>(continuation_.size() + 1));
  return std::max(p, kFloorProb);
}

double NgramLm::BigramProb(const std::string& w1, const std::string& w) const {
  auto total_it = bi_ctx_total_.find(w1);
  double p_uni = UnigramProb(w);
  if (total_it == bi_ctx_total_.end() || total_it->second == 0) return p_uni;
  double total = static_cast<double>(total_it->second);
  auto cnt_it = bi_.find(w1 + " " + w);
  double cnt = cnt_it == bi_.end() ? 0.0 : static_cast<double>(cnt_it->second);
  auto types_it = bi_ctx_types_.find(w1);
  double types = types_it == bi_ctx_types_.end()
                     ? 0.0
                     : static_cast<double>(types_it->second);
  double lambda = discount_ * types / total;
  double p = std::max(cnt - discount_, 0.0) / total + lambda * p_uni;
  return std::max(p, kFloorProb);
}

double NgramLm::LogProb(const std::string& w2, const std::string& w1,
                        const std::string& w) const {
  ALICOCO_CHECK(finalized_) << "LogProb before Finalize";
  std::string ctx2 = w2 + " " + w1;
  auto total_it = tri_ctx_total_.find(ctx2);
  double p_bi = BigramProb(w1, w);
  if (total_it == tri_ctx_total_.end() || total_it->second == 0) {
    return std::log(p_bi);
  }
  double total = static_cast<double>(total_it->second);
  auto cnt_it = tri_.find(ctx2 + " " + w);
  double cnt = cnt_it == tri_.end() ? 0.0 : static_cast<double>(cnt_it->second);
  auto types_it = tri_ctx_types_.find(ctx2);
  double types = types_it == tri_ctx_types_.end()
                     ? 0.0
                     : static_cast<double>(types_it->second);
  double lambda = discount_ * types / total;
  double p = std::max(cnt - discount_, 0.0) / total + lambda * p_bi;
  return std::log(std::max(p, kFloorProb));
}

double NgramLm::ScoreSentence(const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return std::log(kFloorProb);
  std::vector<std::string> s;
  s.reserve(tokens.size() + 3);
  s.push_back(kBos);
  s.push_back(kBos);
  s.insert(s.end(), tokens.begin(), tokens.end());
  s.push_back(kEos);
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = 2; i < s.size(); ++i) {
    sum += LogProb(s[i - 2], s[i - 1], s[i]);
    ++count;
  }
  return sum / static_cast<double>(count);
}

double NgramLm::Perplexity(const std::vector<std::string>& tokens) const {
  return std::exp(-ScoreSentence(tokens));
}

}  // namespace alicoco::text
