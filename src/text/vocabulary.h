// Token <-> integer id mapping with frequency counts.

#ifndef ALICOCO_TEXT_VOCABULARY_H_
#define ALICOCO_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace alicoco::text {

/// Bidirectional token/id map. Id 0 is reserved for <pad>, id 1 for <unk>.
class Vocabulary {
 public:
  static constexpr int kPadId = 0;
  static constexpr int kUnkId = 1;

  Vocabulary();

  /// Interns `token`, bumping its count; returns its id.
  int Add(const std::string& token);

  /// Id of `token`, or kUnkId if absent.
  int Id(const std::string& token) const;

  /// True if the token is interned.
  bool Contains(const std::string& token) const;

  /// Token for `id`; "<unk>" for out-of-range ids.
  const std::string& Token(int id) const;

  /// Observation count of `id` (0 for specials unless added).
  int64_t Count(int id) const;

  /// Number of distinct ids including the two specials.
  int size() const { return static_cast<int>(tokens_.size()); }

  /// Maps a token sequence to ids (unknowns -> kUnkId).
  std::vector<int> Encode(const std::vector<std::string>& tokens) const;

  /// Maps ids back to tokens.
  std::vector<std::string> Decode(const std::vector<int>& ids) const;

  /// Drops tokens observed fewer than `min_count` times; ids are reassigned.
  void PruneBelow(int64_t min_count);

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> counts_;
};

}  // namespace alicoco::text

#endif  // ALICOCO_TEXT_VOCABULARY_H_
