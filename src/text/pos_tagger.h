// Lexicon-backed part-of-speech tagger.
//
// The paper's models consume POS-tag embeddings (Sections 5.2.2, 5.3.1, 6)
// from an off-the-shelf tagger. Our synthetic world knows each word's
// syntactic role, so the tagger is a lexicon with suffix-based fallbacks —
// the same interface, deterministic output.

#ifndef ALICOCO_TEXT_POS_TAGGER_H_
#define ALICOCO_TEXT_POS_TAGGER_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace alicoco::text {

/// Coarse POS tags used by the downstream models.
enum class PosTag : int {
  kNoun = 0,
  kAdj = 1,
  kVerb = 2,
  kPrep = 3,
  kNum = 4,
  kOther = 5,
};

constexpr int kNumPosTags = 6;

/// Returns the tag's display name ("NOUN").
const char* PosTagName(PosTag tag);

/// Lexicon tagger with deterministic fallbacks.
class PosTagger {
 public:
  PosTagger();

  /// Registers a word's tag (world generator calls this for every vocab
  /// word it mints).
  void AddLexeme(const std::string& word, PosTag tag);

  /// Tags one token: lexicon hit, else digit check, else suffix heuristics,
  /// else NOUN.
  PosTag Tag(const std::string& token) const;

  /// Tags a token sequence.
  std::vector<PosTag> TagSequence(const std::vector<std::string>& tokens) const;

  size_t lexicon_size() const { return lexicon_.size(); }

 private:
  std::unordered_map<std::string, PosTag> lexicon_;
};

}  // namespace alicoco::text

#endif  // ALICOCO_TEXT_POS_TAGGER_H_
