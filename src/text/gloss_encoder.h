// Dense document encodings: the Doc2vec substitute.
//
// Two uses in the paper:
//  * gloss vectors — each word is linked to an encyclopedia gloss whose
//    Doc2vec encoding injects external knowledge (Sections 5.2.2 and 6);
//  * the textual matrix TM — each word's surrounding corpus contexts are
//    encoded to augment the concept tagger (Section 5.3.1).
// GlossEncoder encodes token sequences as idf-weighted embedding averages;
// ContextMatrix aggregates each word's corpus context windows.

#ifndef ALICOCO_TEXT_GLOSS_ENCODER_H_
#define ALICOCO_TEXT_GLOSS_ENCODER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "text/skipgram.h"
#include "text/vocabulary.h"

namespace alicoco::text {

/// Encodes short documents (glosses) into fixed vectors using a trained
/// embedding table with idf weighting.
class GlossEncoder {
 public:
  /// `model` and `vocab` must outlive the encoder.
  GlossEncoder(const SkipgramModel* model, const Vocabulary* vocab);

  /// Accumulates document frequencies for idf weighting (optional; uniform
  /// weights if never called).
  void ObserveDocument(const std::vector<std::string>& tokens);

  /// Finishes idf computation over observed documents.
  void FinalizeIdf();

  /// Encodes tokens into a dim()-sized vector (idf-weighted mean of word
  /// embeddings, L2-normalized; zero vector for empty/unknown-only input).
  std::vector<float> Encode(const std::vector<std::string>& tokens) const;

  int dim() const { return model_->dim(); }

 private:
  const SkipgramModel* model_;
  const Vocabulary* vocab_;
  std::unordered_map<int, int64_t> df_;
  int64_t num_docs_ = 0;
  bool idf_ready_ = false;
};

/// Per-word aggregated context embeddings over a corpus (the TM matrix of
/// Figure 6): row w = mean embedding of the words co-occurring with w.
class ContextMatrix {
 public:
  /// Builds the matrix from an id corpus with a symmetric window.
  ContextMatrix(const std::vector<std::vector<int>>& corpus,
                const SkipgramModel& model, int window);

  /// Context vector for word id (zeros for unseen words).
  const std::vector<float>& Row(int id) const;

  int dim() const { return dim_; }

 private:
  int dim_;
  std::vector<std::vector<float>> rows_;
  std::vector<float> zero_;
};

}  // namespace alicoco::text

#endif  // ALICOCO_TEXT_GLOSS_ENCODER_H_
