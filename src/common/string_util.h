// Lightweight string helpers used across the codebase.

#ifndef ALICOCO_COMMON_STRING_UTIL_H_
#define ALICOCO_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace alicoco {

/// Splits `s` on `delim`, omitting empty pieces.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Splits `s` on runs of ASCII whitespace.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace alicoco

#endif  // ALICOCO_COMMON_STRING_UTIL_H_
