// Minimal leveled logging to stderr.
//
// Usage: ALICOCO_LOG(INFO) << "built " << n << " nodes";
// Level filtering via Logger::SetLevel (benches silence INFO by default).

#ifndef ALICOCO_COMMON_LOGGING_H_
#define ALICOCO_COMMON_LOGGING_H_

#include <sstream>
#include <string>

#include "common/check.h"

namespace alicoco {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log-level gate.
class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel level();
  static void Emit(LogLevel level, const char* file, int line,
                   const std::string& message);
};

/// One log statement; streams accumulate and flush on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    if (level_ >= Logger::level()) {
      Logger::Emit(level_, file_, line_, stream_.str());
    }
  }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

#define ALICOCO_LOG(severity)                                      \
  ::alicoco::LogMessage(::alicoco::LogLevel::k##severity, __FILE__, \
                        __LINE__)

// ALICOCO_CHECK and friends live in common/check.h (included above) so the
// invariant layer is usable without pulling in logging.

}  // namespace alicoco

#endif  // ALICOCO_COMMON_LOGGING_H_
