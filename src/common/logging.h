// Minimal leveled logging with pluggable sinks.
//
// Usage: ALICOCO_LOG(Info) << "built " << n << " nodes";
// Level filtering via Logger::SetLevel (benches silence INFO by default).
//
// Each emitted line carries a UTC timestamp and a small sequential thread
// id in addition to file:line:
//
//   [INFO 2026-08-05T12:00:00.123Z t1 builder.cc:42] built 96 nodes
//
// The wall clock is injectable (Logger::SetWallClock) so tests pin the
// timestamp and the determinism gate stays satisfied; the default clock in
// logging.cc is the single sanctioned wall-clock read in the codebase.
// Output is pluggable too: Logger::SetSink redirects records away from
// stderr (obs::FileLogSink routes them into the observability output
// directory next to metrics and traces).

#ifndef ALICOCO_COMMON_LOGGING_H_
#define ALICOCO_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

#include "common/check.h"

namespace alicoco {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// One fully-resolved log statement, as handed to sinks.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";  ///< basename, not the full path
  int line = 0;
  uint64_t wall_ms = 0;    ///< milliseconds since the Unix epoch (UTC)
  uint32_t thread_id = 0;  ///< sequential per-thread id, 1-based
  std::string message;
};

/// Receives every record that passes the level gate. Implementations must
/// be thread-safe: Emit may run concurrently from any thread.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Global log-level gate, sink routing, and clock injection.
class Logger {
 public:
  /// Milliseconds since the Unix epoch.
  using WallClock = uint64_t (*)();

  static void SetLevel(LogLevel level);
  static LogLevel level();

  /// Routes records to `sink` instead of stderr; nullptr restores stderr.
  /// The sink must outlive all logging (set it for a program's lifetime).
  static void SetSink(LogSink* sink);
  static LogSink* sink();

  /// Replaces the wall clock; nullptr restores the real one. Tests inject
  /// a fixed clock to pin timestamps.
  static void SetWallClock(WallClock clock);

  static void Emit(LogLevel level, const char* file, int line,
                   const std::string& message);

  /// The canonical single-line rendering of a record (used by the stderr
  /// default and by obs::FileLogSink, so all outputs look alike).
  static std::string FormatRecord(const LogRecord& record);

  /// `wall_ms` as "YYYY-MM-DDTHH:MM:SS.mmmZ" (proleptic Gregorian, UTC).
  static std::string FormatTimestamp(uint64_t wall_ms);

  /// Sequential 1-based id of the calling thread, assigned on first use.
  static uint32_t CurrentThreadId();
};

/// One log statement; streams accumulate and flush on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    if (level_ >= Logger::level()) {
      Logger::Emit(level_, file_, line_, stream_.str());
    }
  }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

#define ALICOCO_LOG(severity)                                      \
  ::alicoco::LogMessage(::alicoco::LogLevel::k##severity, __FILE__, \
                        __LINE__)

// ALICOCO_CHECK and friends live in common/check.h (included above) so the
// invariant layer is usable without pulling in logging.

}  // namespace alicoco

#endif  // ALICOCO_COMMON_LOGGING_H_
