// Clang thread-safety-analysis annotation macros (no-ops on other
// compilers). Applied to the lock wrappers in common/mutex.h and to any
// class that owns one: members guarded by a mutex carry
// ALICOCO_GUARDED_BY(mu_), functions that must be called with a lock held
// carry ALICOCO_REQUIRES(mu_), and the `-Wthread-safety` build (enabled by
// the werror/clang-tsa presets under clang via ALICOCO_THREAD_SAFETY)
// turns violations into compile errors. The alicoco_lint lock-discipline
// rule enforces that the annotations are present at all.

#ifndef ALICOCO_COMMON_THREAD_ANNOTATIONS_H_
#define ALICOCO_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define ALICOCO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ALICOCO_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define ALICOCO_CAPABILITY(x) ALICOCO_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define ALICOCO_SCOPED_CAPABILITY ALICOCO_THREAD_ANNOTATION(scoped_lockable)

/// Data member is protected by the given capability.
#define ALICOCO_GUARDED_BY(x) ALICOCO_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data (not the pointer itself) is protected by the capability.
#define ALICOCO_PT_GUARDED_BY(x) ALICOCO_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering edges between mutex members (deadlock prevention).
#define ALICOCO_ACQUIRED_BEFORE(...) \
  ALICOCO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ALICOCO_ACQUIRED_AFTER(...) \
  ALICOCO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the capability exclusively (or shared) on entry.
#define ALICOCO_REQUIRES(...) \
  ALICOCO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ALICOCO_REQUIRES_SHARED(...) \
  ALICOCO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires/releases the capability (not held on entry).
#define ALICOCO_ACQUIRE(...) \
  ALICOCO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ALICOCO_ACQUIRE_SHARED(...) \
  ALICOCO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ALICOCO_RELEASE(...) \
  ALICOCO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ALICOCO_RELEASE_SHARED(...) \
  ALICOCO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires iff it returns the given value.
#define ALICOCO_TRY_ACQUIRE(...) \
  ALICOCO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy).
#define ALICOCO_EXCLUDES(...) \
  ALICOCO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held.
#define ALICOCO_ASSERT_CAPABILITY(x) \
  ALICOCO_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define ALICOCO_RETURN_CAPABILITY(x) ALICOCO_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disable analysis inside one function.
#define ALICOCO_NO_THREAD_SAFETY_ANALYSIS \
  ALICOCO_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // ALICOCO_COMMON_THREAD_ANNOTATIONS_H_
