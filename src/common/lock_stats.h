// Lock-contention accounting hook for the instrumented mutex mode.
//
// common/mutex.h's named mutexes report acquisition waits, hold times and
// condition-variable waits through one process-wide LockStatsSink. The
// sink lives here, below obs, so common never depends on the metrics
// registry; obs::prof::LockContentionMetrics is the adapter that turns
// these callbacks into per-named-mutex histograms.
//
// Cost model (see DESIGN.md §6):
//   - compiled out (ALICOCO_LOCK_STATS=0): named mutexes are plain
//     mutexes, zero bytes and zero cycles of instrumentation.
//   - compiled in, no sink installed ("disabled mode"): one non-atomic
//     name check plus one relaxed-ish atomic load per lock(); unnamed
//     mutexes pay only the name check. bench/obs_report measures this
//     delta and gates it under 1% of pipeline wall time.
//   - sink installed: two clock reads per contended acquisition plus the
//     sink's own recording cost.
//
// Re-entrancy rule: a sink implementation MUST synchronize itself with
// unnamed mutexes only — a named mutex inside a sink would recurse into
// the sink from its own callback.

#ifndef ALICOCO_COMMON_LOCK_STATS_H_
#define ALICOCO_COMMON_LOCK_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace alicoco {

/// Receives lock events from named mutexes. Implementations must be
/// thread-safe; callbacks fire concurrently from every locking thread.
/// OnAcquire runs with the mutex held, OnRelease after it was dropped.
class LockStatsSink {
 public:
  virtual ~LockStatsSink() = default;
  /// The mutex was acquired. `wait_us` is how long lock() blocked
  /// (0 when the fast path won); `contended` says whether it blocked.
  virtual void OnAcquire(const char* name, uint64_t wait_us,
                         bool contended) = 0;
  /// The mutex was released after `hold_us` of an instrumented hold.
  virtual void OnRelease(const char* name, uint64_t hold_us) = 0;
  /// A CondVar::Wait on this mutex returned after `wait_us` blocked
  /// (includes the reacquisition).
  virtual void OnCondVarWait(const char* name, uint64_t wait_us) = 0;
};

namespace internal {
extern std::atomic<LockStatsSink*> g_lock_stats_sink;
}  // namespace internal

/// The currently installed sink, or nullptr. Hot path: one acquire load.
inline LockStatsSink* GetLockStatsSink() {
  return internal::g_lock_stats_sink.load(std::memory_order_acquire);
}

/// Installs `sink` process-wide (nullptr detaches). The sink must outlive
/// every lock operation that can observe it; detach before destroying it.
/// Events already in flight when the sink is swapped may still land on the
/// old sink, which is why ScopedLockStatsSink is the recommended shape.
void InstallLockStatsSink(LockStatsSink* sink);

/// RAII install/detach, for harnesses and tests.
class ScopedLockStatsSink {
 public:
  explicit ScopedLockStatsSink(LockStatsSink* sink) {
    InstallLockStatsSink(sink);
  }
  ~ScopedLockStatsSink() { InstallLockStatsSink(nullptr); }

  ScopedLockStatsSink(const ScopedLockStatsSink&) = delete;
  ScopedLockStatsSink& operator=(const ScopedLockStatsSink&) = delete;
};

/// Monotonic microsecond clock shared by the instrumented lock paths.
inline uint64_t LockStatsNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace alicoco

#endif  // ALICOCO_COMMON_LOCK_STATS_H_
