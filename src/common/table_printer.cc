#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace alicoco {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  return StringPrintf("%.*f", precision, v);
}

std::string TablePrinter::ToString() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  if (!header_.empty()) measure(header_);
  for (const auto& r : rows_) measure(r);

  auto render = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < cols; ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      line += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string rule = "+";
  for (size_t i = 0; i < cols; ++i) rule += std::string(width[i] + 2, '-') + "+";
  rule += "\n";

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule;
  if (!header_.empty()) {
    out += render(header_);
    out += rule;
  }
  for (const auto& r : rows_) out += render(r);
  out += rule;
  return out;
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace alicoco
