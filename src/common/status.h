// Status / Result error-handling primitives in the Arrow/RocksDB idiom.
//
// Public AliCoCo APIs never throw: fallible operations return a Status (or a
// Result<T> when they also produce a value). Callers are expected to check
// ok() before using results.

#ifndef ALICOCO_COMMON_STATUS_H_
#define ALICOCO_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace alicoco {

/// Broad machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kIOError,
  kNotImplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation that produces no value.
///
/// The OK status is represented without allocation; error statuses carry a
/// code and a message. Copyable and cheaply movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<Rep> rep_;  // null == OK
};

/// Outcome of a fallible operation that produces a T on success.
///
/// Holds either a value or a non-OK Status. Accessing the value of a failed
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status` must not be OK.
  Result(Status status) : var_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(var_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the held value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(var_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> var_;
};

/// Propagates a non-OK Status to the caller.
#define ALICOCO_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::alicoco::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// Evaluates a Result expression; assigns the value or propagates the error.
#define ALICOCO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie()

#define ALICOCO_ASSIGN_OR_RETURN(lhs, expr) \
  ALICOCO_ASSIGN_OR_RETURN_IMPL(            \
      ALICOCO_CONCAT_NAME(_result_, __COUNTER__), lhs, expr)

#define ALICOCO_CONCAT_NAME_INNER(x, y) x##y
#define ALICOCO_CONCAT_NAME(x, y) ALICOCO_CONCAT_NAME_INNER(x, y)

}  // namespace alicoco

#endif  // ALICOCO_COMMON_STATUS_H_
