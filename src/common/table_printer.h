// Fixed-width ASCII table rendering for the benchmark harnesses.
//
// Every bench binary prints the corresponding paper table/figure series
// through this class so rows are aligned and machine-greppable.

#ifndef ALICOCO_COMMON_TABLE_PRINTER_H_
#define ALICOCO_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace alicoco {

/// Collects rows of string cells and renders a padded table.
class TablePrinter {
 public:
  /// `title` is printed above the table; pass "" for none.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; ragged rows are padded with "".
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 4);

  /// Renders the full table.
  std::string ToString() const;

  /// Renders to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace alicoco

#endif  // ALICOCO_COMMON_TABLE_PRINTER_H_
