#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace alicoco {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(level); }
LogLevel Logger::level() { return g_level.load(); }

void Logger::Emit(LogLevel level, const char* file, int line,
                  const std::string& message) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               message.c_str());
}

}  // namespace alicoco
