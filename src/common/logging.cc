#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/string_util.h"

namespace alicoco {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<LogSink*> g_sink{nullptr};
std::atomic<Logger::WallClock> g_wall_clock{nullptr};

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// The one sanctioned wall-clock read: timestamps are presentation-only
// metadata, never an input to any computation, so determinism holds.
uint64_t RealWallClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now()  // lint:allow(banned-time)
              .time_since_epoch())
          .count());
}

}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(level); }
LogLevel Logger::level() { return g_level.load(); }

void Logger::SetSink(LogSink* sink) { g_sink.store(sink); }
LogSink* Logger::sink() { return g_sink.load(); }

void Logger::SetWallClock(WallClock clock) { g_wall_clock.store(clock); }

uint32_t Logger::CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1);
  return id;
}

std::string Logger::FormatTimestamp(uint64_t wall_ms) {
  uint64_t ms = wall_ms % 1000;
  uint64_t secs = wall_ms / 1000;
  uint64_t sec = secs % 60;
  uint64_t mins = secs / 60;
  uint64_t min = mins % 60;
  uint64_t hours = mins / 60;
  uint64_t hour = hours % 24;
  uint64_t days = hours / 24;  // days since 1970-01-01
  // Civil-from-days (Howard Hinnant's algorithm), era math over the
  // proleptic Gregorian calendar — no locale, no tz database, no gmtime.
  int64_t z = static_cast<int64_t>(days) + 719468;
  int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  uint64_t doe = static_cast<uint64_t>(z - era * 146097);
  uint64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t y = static_cast<int64_t>(yoe) + era * 400;
  uint64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  uint64_t mp = (5 * doy + 2) / 153;
  uint64_t d = doy - (153 * mp + 2) / 5 + 1;
  uint64_t m = mp < 10 ? mp + 3 : mp - 9;
  if (m <= 2) ++y;
  return StringPrintf("%04lld-%02llu-%02lluT%02llu:%02llu:%02llu.%03lluZ",
                      static_cast<long long>(y),
                      static_cast<unsigned long long>(m),
                      static_cast<unsigned long long>(d),
                      static_cast<unsigned long long>(hour),
                      static_cast<unsigned long long>(min),
                      static_cast<unsigned long long>(sec),
                      static_cast<unsigned long long>(ms));
}

std::string Logger::FormatRecord(const LogRecord& record) {
  return StringPrintf("[%s %s t%u %s:%d] %s", LevelName(record.level),
                      FormatTimestamp(record.wall_ms).c_str(),
                      record.thread_id, record.file, record.line,
                      record.message.c_str());
}

void Logger::Emit(LogLevel level, const char* file, int line,
                  const std::string& message) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  LogRecord record;
  record.level = level;
  record.file = base;
  record.line = line;
  WallClock wall_clock = g_wall_clock.load();
  record.wall_ms = wall_clock != nullptr ? wall_clock() : RealWallClockMs();
  record.thread_id = CurrentThreadId();
  record.message = message;

  LogSink* sink = g_sink.load();
  if (sink != nullptr) {
    sink->Write(record);
    return;
  }
  std::fprintf(stderr, "%s\n", FormatRecord(record).c_str());
}

}  // namespace alicoco
