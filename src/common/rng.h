// Deterministic pseudo-random number generation.
//
// Every stochastic component in AliCoCo (world generation, negative sampling,
// parameter init, active-learning tie-breaks) draws from an explicitly seeded
// Rng so that tests and benchmark tables are bit-reproducible.

#ifndef ALICOCO_COMMON_RNG_H_
#define ALICOCO_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace alicoco {

/// Small, fast, seedable PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal (Box–Muller).
  double NextGaussian();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive total weight falls back to uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Zipf-distributed rank in [0, n) with exponent s (popularity skew).
  size_t Zipf(size_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Forks an independent child stream (for parallel determinism).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace alicoco

#endif  // ALICOCO_COMMON_RNG_H_
