// Runtime invariant checking: ALICOCO_CHECK / ALICOCO_DCHECK and the
// value-printing comparison forms (ALICOCO_CHECK_EQ, ...).
//
// Usage:
//   ALICOCO_CHECK(ptr != nullptr) << "stage " << name;
//   ALICOCO_CHECK_LT(i, rows_) << "row index out of range";
//   ALICOCO_DCHECK_GE(span.end, span.begin);
//
// A failed check prints "CHECK failed at file:line: expr (a vs. b) message"
// to stderr and aborts. CHECK fires in every build type; DCHECK compiles to
// nothing in release builds (NDEBUG) unless ALICOCO_FORCE_DCHECKS is
// defined — the sanitizer presets define it so ASan/UBSan/TSan runs also
// exercise the debug invariants.

#ifndef ALICOCO_COMMON_CHECK_H_
#define ALICOCO_COMMON_CHECK_H_

#include <memory>
#include <sstream>
#include <string>

namespace alicoco {

/// Called with the fully rendered failure message just before a failed
/// CHECK aborts. The flight recorder (obs/prof/flight_recorder.h) installs
/// one to dump its ring of recent events next to the crash. The handler
/// runs on the failing thread inside the abort path: it must not CHECK,
/// allocate unboundedly, or assume any lock is free.
using CheckFailureHandler = void (*)(const char* message);

/// Installs `handler` process-wide (nullptr detaches). Thread-safe.
void SetCheckFailureHandler(CheckFailureHandler handler);

}  // namespace alicoco

namespace alicoco::internal {

/// Accumulates the failure message; aborts in the destructor at the end of
/// the full CHECK statement (after trailing streamed context).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr);
  CheckFailure(const char* file, int line, const std::string& message);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows the stream expression inside the ternary CHECK form; operator&
/// binds looser than << so trailing context streams first.
struct CheckVoidify {
  void operator&(std::ostream&) {}
};

template <typename A, typename B>
std::unique_ptr<std::string> MakeCheckOpString(const A& a, const B& b,
                                               const char* expr) {
  std::ostringstream oss;
  oss << expr << " (" << a << " vs. " << b << ")";
  return std::make_unique<std::string>(oss.str());
}

// Each comparison evaluates its operands exactly once and, on failure,
// renders both values into the message.
#define ALICOCO_DEFINE_CHECK_OP_IMPL(name, op)                       \
  template <typename A, typename B>                                  \
  std::unique_ptr<std::string> Check##name##Impl(const A& a,         \
                                                 const B& b,         \
                                                 const char* expr) { \
    if (a op b) return nullptr;                                      \
    return MakeCheckOpString(a, b, expr);                            \
  }
ALICOCO_DEFINE_CHECK_OP_IMPL(EQ, ==)
ALICOCO_DEFINE_CHECK_OP_IMPL(NE, !=)
ALICOCO_DEFINE_CHECK_OP_IMPL(LT, <)
ALICOCO_DEFINE_CHECK_OP_IMPL(LE, <=)
ALICOCO_DEFINE_CHECK_OP_IMPL(GT, >)
ALICOCO_DEFINE_CHECK_OP_IMPL(GE, >=)
#undef ALICOCO_DEFINE_CHECK_OP_IMPL

}  // namespace alicoco::internal

/// Hard invariant; aborts with a message when violated (all build types).
#define ALICOCO_CHECK(cond)                                         \
  (cond) ? (void)0                                                  \
         : ::alicoco::internal::CheckVoidify() &                    \
               ::alicoco::internal::CheckFailure(__FILE__, __LINE__, \
                                                 #cond)              \
                   .stream()

// The while-form gives the comparison macros statement scope for the
// rendered message while still accepting trailing streamed context; the
// CheckFailure destructor aborts before a second iteration could run.
#define ALICOCO_CHECK_OP(name, op, a, b)                              \
  while (std::unique_ptr<std::string> alicoco_check_msg =             \
             ::alicoco::internal::Check##name##Impl(                  \
                 (a), (b), #a " " #op " " #b))                        \
  ::alicoco::internal::CheckFailure(__FILE__, __LINE__,               \
                                    *alicoco_check_msg)               \
      .stream()

#define ALICOCO_CHECK_EQ(a, b) ALICOCO_CHECK_OP(EQ, ==, a, b)
#define ALICOCO_CHECK_NE(a, b) ALICOCO_CHECK_OP(NE, !=, a, b)
#define ALICOCO_CHECK_LT(a, b) ALICOCO_CHECK_OP(LT, <, a, b)
#define ALICOCO_CHECK_LE(a, b) ALICOCO_CHECK_OP(LE, <=, a, b)
#define ALICOCO_CHECK_GT(a, b) ALICOCO_CHECK_OP(GT, >, a, b)
#define ALICOCO_CHECK_GE(a, b) ALICOCO_CHECK_OP(GE, >=, a, b)

#if defined(ALICOCO_FORCE_DCHECKS) || !defined(NDEBUG)
#define ALICOCO_DCHECK_IS_ON 1
#else
#define ALICOCO_DCHECK_IS_ON 0
#endif

#if ALICOCO_DCHECK_IS_ON
#define ALICOCO_DCHECK(cond) ALICOCO_CHECK(cond)
#define ALICOCO_DCHECK_EQ(a, b) ALICOCO_CHECK_EQ(a, b)
#define ALICOCO_DCHECK_NE(a, b) ALICOCO_CHECK_NE(a, b)
#define ALICOCO_DCHECK_LT(a, b) ALICOCO_CHECK_LT(a, b)
#define ALICOCO_DCHECK_LE(a, b) ALICOCO_CHECK_LE(a, b)
#define ALICOCO_DCHECK_GT(a, b) ALICOCO_CHECK_GT(a, b)
#define ALICOCO_DCHECK_GE(a, b) ALICOCO_CHECK_GE(a, b)
#else
// Disabled DCHECKs still compile their arguments (no unused-variable
// warnings) but the dead loop is removed entirely by the optimizer.
#define ALICOCO_DCHECK(cond) \
  while (false) ALICOCO_CHECK(cond)
#define ALICOCO_DCHECK_EQ(a, b) \
  while (false) ALICOCO_CHECK_EQ(a, b)
#define ALICOCO_DCHECK_NE(a, b) \
  while (false) ALICOCO_CHECK_NE(a, b)
#define ALICOCO_DCHECK_LT(a, b) \
  while (false) ALICOCO_CHECK_LT(a, b)
#define ALICOCO_DCHECK_LE(a, b) \
  while (false) ALICOCO_CHECK_LE(a, b)
#define ALICOCO_DCHECK_GT(a, b) \
  while (false) ALICOCO_CHECK_GT(a, b)
#define ALICOCO_DCHECK_GE(a, b) \
  while (false) ALICOCO_CHECK_GE(a, b)
#endif  // ALICOCO_DCHECK_IS_ON

#endif  // ALICOCO_COMMON_CHECK_H_
