// Annotated lock primitives: thin wrappers over <mutex> that carry the
// clang thread-safety capability attributes libstdc++'s std::mutex lacks,
// so a `-Wthread-safety` build can prove lock discipline at compile time.
//
// Repo-wide convention (enforced by the alicoco_lint lock-discipline
// rule): concurrent code holds alicoco::Mutex / alicoco::CondVar members,
// never raw std::mutex / std::condition_variable, and every member a mutex
// protects is annotated ALICOCO_GUARDED_BY(mu_).
//
//   class Counter {
//    public:
//     void Add(int d) { MutexLock lock(mu_); n_ += d; }
//    private:
//     Mutex mu_;
//     int n_ ALICOCO_GUARDED_BY(mu_) = 0;
//   };

#ifndef ALICOCO_COMMON_MUTEX_H_
#define ALICOCO_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace alicoco {

/// Exclusive mutex; satisfies Lockable, so it composes with the standard
/// library, but prefer MutexLock for scoped acquisition.
class ALICOCO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ALICOCO_ACQUIRE() { mu_.lock(); }
  void unlock() ALICOCO_RELEASE() { mu_.unlock(); }
  bool try_lock() ALICOCO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII holder; the scoped-capability attribute lets the analysis track
/// the critical section's extent.
class ALICOCO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ALICOCO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ALICOCO_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Wait releases and reacquires `mu`
/// internally; callers keep the usual while-predicate loop, which the
/// analysis sees as one uninterrupted critical section.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) ALICOCO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace alicoco

#endif  // ALICOCO_COMMON_MUTEX_H_
