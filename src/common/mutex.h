// Annotated lock primitives: thin wrappers over <mutex> that carry the
// clang thread-safety capability attributes libstdc++'s std::mutex lacks,
// so a `-Wthread-safety` build can prove lock discipline at compile time.
//
// Repo-wide convention (enforced by the alicoco_lint lock-discipline
// rule): concurrent code holds alicoco::Mutex / alicoco::CondVar members,
// never raw std::mutex / std::condition_variable, and every member a mutex
// protects is annotated ALICOCO_GUARDED_BY(mu_).
//
//   class Counter {
//    public:
//     void Add(int d) { MutexLock lock(mu_); n_ += d; }
//    private:
//     Mutex mu_;
//     int n_ ALICOCO_GUARDED_BY(mu_) = 0;
//   };
//
// Instrumented mode (the profiling tier, DESIGN.md §6): a mutex
// constructed with a name participates in lock-contention accounting —
// when a LockStatsSink is installed (common/lock_stats.h), every named
// lock() reports its acquisition wait, every unlock() its hold time, and
// CondVar::Wait its blocked time, keyed by the name:
//
//   Mutex mu_{"pipeline.worker_pool.mu"};   // name: a string literal with
//                                           // static storage duration
//                                           // (lint: mutex-name-literal)
//
// The whole mode compiles away when ALICOCO_LOCK_STATS is 0 (CMake option
// ALICOCO_LOCK_STATS, default ON); with it compiled in but no sink
// installed, a named mutex pays one atomic load per lock() and an unnamed
// one a single pointer check — bench/obs_report measures and gates that
// disabled-mode cost at <1% of pipeline wall time.

#ifndef ALICOCO_COMMON_MUTEX_H_
#define ALICOCO_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/lock_stats.h"
#include "common/thread_annotations.h"

// The build system defines ALICOCO_LOCK_STATS globally (0 or 1) so every
// translation unit agrees on the Mutex layout; the fallback here matches
// the CMake default for stray compiles outside the build.
#ifndef ALICOCO_LOCK_STATS
#define ALICOCO_LOCK_STATS 1
#endif

namespace alicoco {

/// Exclusive mutex; satisfies Lockable, so it composes with the standard
/// library, but prefer MutexLock for scoped acquisition.
class ALICOCO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Named (instrumented) mutex. `name` must outlive the mutex — pass a
  /// string literal. Never name a mutex that a LockStatsSink itself can
  /// lock from its callbacks, or recording recurses into the sink.
  explicit Mutex(const char* name) {
#if ALICOCO_LOCK_STATS
    name_ = name;
#else
    (void)name;
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ALICOCO_ACQUIRE() {
#if ALICOCO_LOCK_STATS
    if (name_ != nullptr) {
      if (LockStatsSink* sink = GetLockStatsSink()) {
        if (mu_.try_lock()) {
          sink->OnAcquire(name_, 0, false);
        } else {
          const uint64_t wait_start_us = LockStatsNowUs();
          mu_.lock();
          sink->OnAcquire(name_, LockStatsNowUs() - wait_start_us, true);
        }
        hold_start_us_ = LockStatsNowUs();
        return;
      }
    }
#endif
    mu_.lock();
  }

  void unlock() ALICOCO_RELEASE() {
#if ALICOCO_LOCK_STATS
    if (hold_start_us_ != 0) {
      const char* name = name_;
      const uint64_t hold_us = LockStatsNowUs() - hold_start_us_;
      hold_start_us_ = 0;
      mu_.unlock();
      // Recorded after the release so the sink's own cost never extends
      // the critical section it is measuring.
      if (LockStatsSink* sink = GetLockStatsSink()) {
        sink->OnRelease(name, hold_us);
      }
      return;
    }
#endif
    mu_.unlock();
  }

  bool try_lock() ALICOCO_TRY_ACQUIRE(true) {
#if ALICOCO_LOCK_STATS
    if (name_ != nullptr) {
      if (LockStatsSink* sink = GetLockStatsSink()) {
        if (!mu_.try_lock()) return false;
        sink->OnAcquire(name_, 0, false);
        hold_start_us_ = LockStatsNowUs();
        return true;
      }
    }
#endif
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if ALICOCO_LOCK_STATS
  const char* name_ = nullptr;    ///< nullptr = uninstrumented
  uint64_t hold_start_us_ = 0;    ///< written under mu_; 0 = untracked hold
#endif
};

/// RAII holder; the scoped-capability attribute lets the analysis track
/// the critical section's extent.
class ALICOCO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ALICOCO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ALICOCO_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Wait releases and reacquires `mu`
/// internally; callers keep the usual while-predicate loop, which the
/// analysis sees as one uninterrupted critical section. On a named mutex
/// the blocked time is reported to the LockStatsSink as a cv wait, and
/// the hold clock restarts at reacquisition so waiting never counts as
/// holding.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) ALICOCO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
#if ALICOCO_LOCK_STATS
    if (mu.name_ != nullptr) {
      LockStatsSink* sink = GetLockStatsSink();
      if (sink != nullptr) {
        const uint64_t wait_start_us = LockStatsNowUs();
        if (mu.hold_start_us_ != 0) {
          sink->OnRelease(mu.name_, wait_start_us - mu.hold_start_us_);
        }
        mu.hold_start_us_ = 0;
        cv_.wait(lock);
        const uint64_t reacquired_us = LockStatsNowUs();
        sink->OnCondVarWait(mu.name_, reacquired_us - wait_start_us);
        mu.hold_start_us_ = reacquired_us;
        lock.release();
        return;
      }
      mu.hold_start_us_ = 0;  // hold tracking ends at the wait
    }
#endif
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace alicoco

#endif  // ALICOCO_COMMON_MUTEX_H_
