#include "common/thread_pool.h"

#include <atomic>

namespace alicoco {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t shards = std::min(n, workers_.size());
  std::atomic<size_t> next{0};
  for (size_t s = 0; s < shards; ++s) {
    Submit([&, n] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= n) break;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace alicoco
