#include "common/thread_pool.h"

#include <atomic>

namespace alicoco {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) done_cv_.Wait(mu_);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t shards = std::min(n, workers_.size());
  std::atomic<size_t> next{0};
  for (size_t s = 0; s < shards; ++s) {
    Submit([&, n] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= n) break;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && tasks_.empty()) task_cv_.Wait(mu_);
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
}

}  // namespace alicoco
