#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace alicoco {
namespace {

uint64_t MonotonicNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  ThreadPoolObserver* observer = observer_.load();
  Task entry;
  entry.fn = std::move(task);
  if (observer != nullptr) entry.enqueue_us = MonotonicNowUs();
  size_t depth;
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(entry));
    ++in_flight_;
    depth = tasks_.size();
  }
  task_cv_.NotifyOne();
  if (observer != nullptr) observer->OnQueueDepth(depth);
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) done_cv_.Wait(mu_);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             size_t grain) {
  if (n == 0) return;
  if (grain == 0) {
    grain = std::max<size_t>(1, n / (workers_.size() * 8));
  }
  for (size_t lo = 0; lo < n; lo += grain) {
    const size_t hi = std::min(n, lo + grain);
    Submit([&fn, lo, hi] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    size_t depth;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && tasks_.empty()) task_cv_.Wait(mu_);
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
      depth = tasks_.size();
    }
    ThreadPoolObserver* observer = observer_.load();
    uint64_t start_us = 0;
    if (observer != nullptr) {
      observer->OnQueueDepth(depth);
      start_us = MonotonicNowUs();
    }
    task.fn();
    if (observer != nullptr) {
      uint64_t end_us = MonotonicNowUs();
      double queue_wait_us =
          task.enqueue_us == 0
              ? 0
              : static_cast<double>(start_us - task.enqueue_us);
      observer->OnTaskDone(queue_wait_us,
                           static_cast<double>(end_us - start_us));
    }
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
}

}  // namespace alicoco
