#include "common/lock_stats.h"

namespace alicoco {

namespace internal {
// constinit: named mutexes may lock during static initialization, before
// any dynamic initializer could have run.
constinit std::atomic<LockStatsSink*> g_lock_stats_sink{nullptr};
}  // namespace internal

void InstallLockStatsSink(LockStatsSink* sink) {
  internal::g_lock_stats_sink.store(sink, std::memory_order_release);
}

}  // namespace alicoco
