// Fixed-size worker pool used by trainers for data-parallel scoring.

#ifndef ALICOCO_COMMON_THREAD_POOL_H_
#define ALICOCO_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace alicoco {

/// Simple FIFO thread pool. Submitted tasks must not throw.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task) ALICOCO_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void Wait() ALICOCO_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      ALICOCO_EXCLUDES(mu_);

 private:
  void WorkerLoop() ALICOCO_EXCLUDES(mu_);

  std::vector<std::thread> workers_;  // written only in the constructor
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ ALICOCO_GUARDED_BY(mu_);
  size_t in_flight_ ALICOCO_GUARDED_BY(mu_) = 0;
  bool shutdown_ ALICOCO_GUARDED_BY(mu_) = false;
  CondVar task_cv_;  // waits on mu_; signalled on Submit and shutdown
  CondVar done_cv_;  // waits on mu_; signalled when in_flight_ hits 0
};

}  // namespace alicoco

#endif  // ALICOCO_COMMON_THREAD_POOL_H_
