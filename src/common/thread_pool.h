// Fixed-size worker pool used by trainers for data-parallel scoring.

#ifndef ALICOCO_COMMON_THREAD_POOL_H_
#define ALICOCO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace alicoco {

/// Simple FIFO thread pool. Submitted tasks must not throw.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace alicoco

#endif  // ALICOCO_COMMON_THREAD_POOL_H_
