// Fixed-size worker pool used by trainers for data-parallel scoring.

#ifndef ALICOCO_COMMON_THREAD_POOL_H_
#define ALICOCO_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace alicoco {

/// Instrumentation hook for ThreadPool. Implementations must be
/// thread-safe: callbacks fire concurrently from submitters and workers.
/// obs::ThreadPoolMetrics adapts this onto the metrics registry; the pool
/// itself stays free of any observability dependency.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;
  /// Queue depth right after a task was enqueued or dequeued.
  virtual void OnQueueDepth(size_t depth) = 0;
  /// One task finished: time spent queued and time spent running.
  virtual void OnTaskDone(double queue_wait_us, double run_us) = 0;
};

/// Simple FIFO thread pool. Submitted tasks must not throw.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  /// Drains the queue, signals shutdown under mu_, and joins the workers;
  /// must not be entered with mu_ held or the workers deadlock on it.
  ~ThreadPool() ALICOCO_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task) ALICOCO_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void Wait() ALICOCO_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits. Work is split
  /// into chunks of `grain` consecutive indices, one submitted task per
  /// chunk, so observer accounting (tasks completed, queue depth, run time)
  /// reflects real units of work. grain == 0 picks a default of roughly
  /// eight chunks per worker, which balances stragglers without drowning
  /// the queue in tiny tasks.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t grain = 0) ALICOCO_EXCLUDES(mu_);

  /// Installs an observer (nullptr detaches). The observer must outlive
  /// the pool or be detached first; install it before heavy traffic so
  /// every task is measured.
  void SetObserver(ThreadPoolObserver* observer) {
    observer_.store(observer);
  }

 private:
  struct Task {
    std::function<void()> fn;
    uint64_t enqueue_us = 0;  ///< sampled only while an observer is set
  };

  void WorkerLoop() ALICOCO_EXCLUDES(mu_);

  std::vector<std::thread> workers_;  // written only in the constructor
  std::atomic<ThreadPoolObserver*> observer_{nullptr};
  // Named: the queue lock is the pool's contention point, so the profiling
  // tier accounts its waits/holds when a LockStatsSink is installed.
  Mutex mu_{"thread_pool.mu"};
  std::queue<Task> tasks_ ALICOCO_GUARDED_BY(mu_);
  size_t in_flight_ ALICOCO_GUARDED_BY(mu_) = 0;
  bool shutdown_ ALICOCO_GUARDED_BY(mu_) = false;
  CondVar task_cv_;  // waits on mu_; signalled on Submit and shutdown
  CondVar done_cv_;  // waits on mu_; signalled when in_flight_ hits 0
};

}  // namespace alicoco

#endif  // ALICOCO_COMMON_THREAD_POOL_H_
