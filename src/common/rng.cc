#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace alicoco {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0) return Uniform(weights.size());
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] > 0 ? weights[i] : 0;
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  assert(n > 0);
  // Inverse-CDF over precomputation-free harmonic approximation would be
  // costly per call; use rejection-free cumulative walk for small n and a
  // two-stage approximation otherwise.
  if (n <= 1024) {
    double total = 0.0;
    for (size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(double(i), s);
    double r = NextDouble() * total;
    double acc = 0.0;
    for (size_t i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(double(i), s);
      if (r < acc) return i - 1;
    }
    return n - 1;
  }
  // Devroye's rejection method for large n.
  double b = std::pow(2.0, s - 1.0);
  for (;;) {
    double u = NextDouble();
    double v = NextDouble();
    double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-9)));
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (x <= double(n) && v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<size_t>(x) - 1;
    }
  }
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace alicoco
