#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace alicoco {
namespace {

constinit std::atomic<CheckFailureHandler> g_check_failure_handler{nullptr};

}  // namespace

void SetCheckFailureHandler(CheckFailureHandler handler) {
  g_check_failure_handler.store(handler, std::memory_order_release);
}

}  // namespace alicoco

namespace alicoco::internal {

CheckFailure::CheckFailure(const char* file, int line, const char* expr) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << expr << " ";
}

CheckFailure::CheckFailure(const char* file, int line,
                           const std::string& message) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << message
          << " ";
}

CheckFailure::~CheckFailure() {
  const std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  if (CheckFailureHandler handler =
          g_check_failure_handler.load(std::memory_order_acquire)) {
    handler(message.c_str());
  }
  std::abort();
}

}  // namespace alicoco::internal
