#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace alicoco::internal {

CheckFailure::CheckFailure(const char* file, int line, const char* expr) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << expr << " ";
}

CheckFailure::CheckFailure(const char* file, int line,
                           const std::string& message) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << message
          << " ";
}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace alicoco::internal
